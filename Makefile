.PHONY: all build test fmt check audit bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest --force

# Formatting gate: dune files must be dune-fmt clean (see dune-project;
# OCaml sources are not yet under ocamlformat).
fmt:
	dune build @fmt

check: build fmt test

# Run every app under the online consistency auditor; fails on any
# violation (same matrix as the CI consistency-audit job, plus grid).
audit: build
	@for app in tsp qsort water grid; do \
	  for variant in lock hybrid; do \
	    echo "=== $$app/$$variant n=4 --audit ==="; \
	    dune exec bin/carlos_run.exe -- \
	      $$app --nodes 4 --variant $$variant --audit || exit 1; \
	  done; \
	done

# Regenerate BENCH_PR3.json (legacy vs batched rows for the 4-node
# matrix) and run the audited matrix with batching enabled.  Fails on
# any app-level check or audit violation.
bench-smoke: build
	dune exec bench/main.exe -- json
	$(MAKE) audit

clean:
	dune clean
