.PHONY: all build test fmt check audit bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest --force

# Formatting gate: dune files must be dune-fmt clean (see dune-project;
# OCaml sources are not yet under ocamlformat).
fmt:
	dune build @fmt

check: build fmt test

# Run every app under the online consistency auditor on every backend;
# fails on any violation (same matrix as the CI consistency-audit job).
# Each backend enables its own invariant set in the auditor.
audit: build
	@for backend in lrc central seq; do \
	  for app in tsp qsort water grid; do \
	    for variant in lock hybrid; do \
	      echo "=== $$app/$$variant n=4 --backend $$backend --audit ==="; \
	      dune exec bin/carlos_run.exe -- \
	        $$app --nodes 4 --variant $$variant \
	        --backend $$backend --audit || exit 1; \
	    done; \
	  done; \
	done

# Regenerate BENCH_PR6.json (backend x app x variant rows for the
# 4-node matrix, plus the LRC legacy arm) and run the audited matrix.
# Fails on any app-level check or audit violation.
bench-smoke: build
	dune exec bench/main.exe -- json
	$(MAKE) audit

clean:
	dune clean
