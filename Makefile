.PHONY: all build test fmt check clean

all: build

build:
	dune build

test:
	dune runtest --force

# Formatting gate: dune files must be dune-fmt clean (see dune-project;
# OCaml sources are not yet under ocamlformat).
fmt:
	dune build @fmt

check: build fmt test

clean:
	dune clean
