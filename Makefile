.PHONY: all build test fmt check audit bench-smoke bench-retransmit bench-diff bench-parallel clean

all: build

build:
	dune build

test:
	dune runtest --force

# Formatting gate: dune files must be dune-fmt clean (see dune-project;
# OCaml sources are not yet under ocamlformat).
fmt:
	dune build @fmt

check: build fmt test

# Run every app under the online consistency auditor on every backend;
# fails on any violation (same matrix as the CI consistency-audit job).
# Each backend enables its own invariant set in the auditor.
audit: build
	@for backend in lrc central seq; do \
	  for app in tsp qsort water grid; do \
	    for variant in lock hybrid; do \
	      echo "=== $$app/$$variant n=4 --backend $$backend --audit ==="; \
	      dune exec bin/carlos_run.exe -- \
	        $$app --nodes 4 --variant $$variant \
	        --backend $$backend --audit || exit 1; \
	    done; \
	  done; \
	done

# Regenerate BENCH_PR10.json (backend x app x variant gate rows with
# per-component wire bytes, plus the node-count scaling sweep and
# fitted growth exponents) and run the audited matrix.  Fails on any
# app-level check, conservation miss, retransmit-gate violation or
# audit violation.
bench-smoke: build
	dune exec bench/main.exe -- json scaling
	$(MAKE) audit

# Parallel-determinism gate: the gate matrix fanned across 2 domains
# must produce a snapshot byte-identical (host-time fields aside, which
# are wall-clock and therefore nondeterministic) to a sequential run.
bench-parallel: build
	dune exec bench/main.exe -- json -j 1 -o /tmp/bench_j1.json
	dune exec bench/main.exe -- json -j 2 -o /tmp/bench_j2.json
	sed -E 's/, "host_s": [0-9.]+, "host_ms": [0-9.]+//' /tmp/bench_j1.json > /tmp/bench_j1.stripped
	sed -E 's/, "host_s": [0-9.]+, "host_ms": [0-9.]+//' /tmp/bench_j2.json > /tmp/bench_j2.stripped
	cmp /tmp/bench_j1.stripped /tmp/bench_j2.stripped
	@echo "bench-parallel: -j 2 snapshot identical to -j 1"

# Retransmit gate alone (no snapshot written): on every 4-node LRC
# gate row, batched wire bytes must not exceed legacy wire bytes and
# batched retransmit bytes must stay under 1% of the row's wire bytes.
bench-retransmit: build
	dune exec bench/main.exe -- retransmit

# Standing perf gate: fresh gate rows plus a 16-node scaling smoke,
# compared against the committed BENCH_PR10.json LRC rows within 2% on
# messages, wire bytes and retransmit bytes, one bench_diff invocation
# per config arm.  Exits non-zero on regression or a lost row.
bench-diff: build
	dune exec bench/main.exe -- json scaling -n 16 -o BENCH_GATE.json
	dune exec bin/bench_diff.exe -- BENCH_PR10.json BENCH_GATE.json \
	  --only backend=lrc --only config=legacy \
	  --fields messages,wire_bytes,components.retransmit --tolerance 2
	dune exec bin/bench_diff.exe -- BENCH_PR10.json BENCH_GATE.json \
	  --only backend=lrc --only config=batched \
	  --fields messages,wire_bytes,components.retransmit --tolerance 2

clean:
	dune clean
