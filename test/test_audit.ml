(* Tests for lib/audit: the online consistency auditor (clean runs stay
   clean; injected protocol corruptions are reported with the offending
   trace id) and the causal-trace machinery it rides on (flow chains
   through the forwarding work-queue manager, offline causal analysis). *)

module Vc = Carlos_dsm.Vc
module Lrc = Carlos_dsm.Lrc_backend
module Shm = Carlos_vm.Shm
module Annotation = Carlos.Annotation
module Node = Carlos.Node
module System = Carlos.System
module Msg_lock = Carlos.Msg_lock
module Msg_barrier = Carlos.Msg_barrier
module Work_queue = Carlos.Work_queue
module Obs = Carlos_obs.Obs
module Audit = Carlos_audit.Audit
module Causal = Carlos_audit.Causal

let test_config ?(nodes = 4) () =
  {
    (System.default_config ~nodes) with
    System.page_size = 512;
    coherent_pages = 32;
    private_bytes = 4096;
    noncoherent_bytes = 4096;
  }

let make ?nodes () = System.create ~audit:true (test_config ?nodes ())

let auditor sys =
  match System.auditor sys with
  | Some a -> a
  | None -> Alcotest.fail "system created with ~audit:true has no auditor"

let check_clean sys =
  let a = auditor sys in
  if Audit.violation_count a <> 0 then
    Alcotest.failf "expected clean audit, got:@.%a" (fun ppf () ->
        Audit.pp_report ppf a)
      ()

(* A run mixing every synchronization flavour with real shared-memory
   traffic: lock-protected counter increments (REQUEST + RELEASE chains,
   write notices, diffs), a barrier episode (RELEASE_NT union at the
   manager), and per-node slot writes read back after the barrier. *)
let busy_app sys =
  let counter = System.alloc sys 8 in
  let slots = Array.init 4 (fun _ -> System.alloc sys ~align:512 512) in
  let lock = Msg_lock.create sys ~manager:0 ~name:"l" in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"b" () in
  let total = ref 0 in
  let report =
    System.run sys (fun node ->
        let me = Node.id node in
        for _ = 1 to 3 do
          Msg_lock.with_lock lock node (fun () ->
              let v = Shm.read_i64 (Node.shm node) counter in
              Node.compute node 1e-4;
              Shm.write_i64 (Node.shm node) counter (v + 1))
        done;
        Shm.write_i64 (Node.shm node) slots.(me) (100 + me);
        Msg_barrier.wait barrier node;
        if me = 3 then begin
          Msg_lock.acquire lock node;
          total := Array.fold_left (fun acc a ->
              acc + Shm.read_i64 (Node.shm node) a) 0 slots;
          Msg_lock.release lock node
        end)
  in
  (report, !total)

let test_clean_busy_run () =
  let sys = make () in
  let _report, total = busy_app sys in
  Alcotest.(check int) "slot sum read after barrier" (100 + 101 + 102 + 103)
    total;
  check_clean sys

let test_clean_under_tracing () =
  (* Tracing on: the flow/span instrumentation must not perturb the
     protocol or the auditor. *)
  let sys = make () in
  System.set_tracing sys true;
  let _ = busy_app sys in
  check_clean sys;
  Alcotest.(check bool) "events recorded" true
    (List.length (Obs.events (System.obs sys)) > 0)

let test_wq_forward_flow () =
  (* Forwarding work queue with tracing: items are relayed by the manager
     (never accepted there), and each relayed message leaves a complete
     causal flow chain: Flow_start at the producer, Flow_steps at the
     manager (deliver + forward) and the consumer (deliver), Flow_finish
     at the consumer's accept. *)
  let sys = make ~nodes:3 () in
  System.set_tracing sys true;
  let wq = Work_queue.create sys ~manager:0 ~name:"wq" () in
  let got = ref [] in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 1 ->
          for i = 1 to 4 do
            Work_queue.enqueue wq node ~bytes:16 i
          done;
          Work_queue.close wq node
        | 2 ->
          let rec drain () =
            match Work_queue.dequeue wq node with
            | Some v ->
              got := v :: !got;
              drain ()
            | None -> ()
          in
          drain ()
        | _ -> ())
  in
  Alcotest.(check (list int)) "all items relayed in order" [ 1; 2; 3; 4 ]
    (List.rev !got);
  check_clean sys;
  (* Reconstruct flow chains from the typed events. *)
  let chains = Hashtbl.create 32 in
  List.iter
    (fun (e : Obs.event) ->
      let add id tag =
        Hashtbl.replace chains id
          (tag :: Option.value ~default:[] (Hashtbl.find_opt chains id))
      in
      match e.Obs.phase with
      | Obs.Flow_start id -> add id `S
      | Obs.Flow_step id -> add id `T
      | Obs.Flow_finish id -> add id `F
      | _ -> ())
    (Obs.events (System.obs sys));
  let forwarded =
    Hashtbl.fold
      (fun _ chain acc ->
        match List.rev chain with
        | `S :: rest
          when List.length (List.filter (( = ) `T) rest) >= 3
               && List.exists (( = ) `F) rest ->
          acc + 1
        | _ -> acc)
      chains 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "forwarded flow chains present (got %d)" forwarded)
    true (forwarded >= 4)

let test_causal_analysis () =
  let sys = make () in
  System.set_tracing sys true;
  let _ = busy_app sys in
  let c = Causal.analyse (System.obs sys) in
  (match c.Causal.path with
  | None -> Alcotest.fail "no critical path extracted"
  | Some p ->
    Alcotest.(check bool) "critical path has hops" true
      (List.length p.Causal.cp_hops > 0);
    Alcotest.(check bool) "wire time positive" true (p.Causal.cp_wire > 0.0));
  (match c.Causal.locks with
  | [ l ] ->
    Alcotest.(check string) "lock name" "l" l.Causal.lk_name;
    Alcotest.(check bool) "acquisitions counted" true
      (l.Causal.lk_acquisitions >= 12);
    Alcotest.(check bool) "handoff edges recorded" true
      (l.Causal.lk_handoffs <> [])
  | ls -> Alcotest.failf "expected one lock report, got %d" (List.length ls));
  match c.Causal.barriers with
  | [ b ] ->
    Alcotest.(check string) "barrier name" "b" b.Causal.br_name;
    Alcotest.(check int) "one episode" 1 b.Causal.br_episodes
  | bs ->
    Alcotest.failf "expected one barrier report, got %d" (List.length bs)

(* ------------------------------------------------------------------ *)
(* Negative tests: each injected corruption must be caught, with the
   offending message's trace id attached. *)

let find_violation sys check =
  List.find_opt
    (fun (v : Audit.violation) -> v.Audit.check = check)
    (Audit.violations (auditor sys))

let test_catches_skipped_write_notice () =
  let sys = make ~nodes:2 () in
  let x = System.alloc sys 8 in
  let (_ : System.report) =
    System.run sys (fun node ->
        if Node.id node = 0 then begin
          Shm.write_i64 (Node.shm node) x 41;
          (* Drop the processing of one write notice during node 1's next
             accept: its page keeps serving stale bytes. *)
          Lrc.inject_fault (Node.lrc (System.node sys 1))
            (Some Lrc.Skip_write_notice);
          Node.send node ~dst:1 ~annotation:Annotation.Release
            ~payload_bytes:8
            ~handler:(fun _ d -> Node.accept d)
        end)
  in
  match find_violation sys "write-notice-lost" with
  | None ->
    Alcotest.failf "skipped write notice not reported:@.%a"
      (fun ppf () -> Audit.pp_report ppf (auditor sys))
      ()
  | Some v ->
    Alcotest.(check bool) "violation carries a trace id" true
      (v.Audit.trace_id <> None);
    Alcotest.(check int) "detected at the accepting node" 1 v.Audit.node

let test_catches_corrupt_vc_merge () =
  let sys = make ~nodes:2 () in
  let x = System.alloc sys 8 in
  let (_ : System.report) =
    System.run sys (fun node ->
        if Node.id node = 0 then begin
          Shm.write_i64 (Node.shm node) x 41;
          (* Decrement one merged component after node 1's next join: the
             clock no longer reaches the RELEASE's required timestamp. *)
          Lrc.inject_fault (Node.lrc (System.node sys 1))
            (Some Lrc.Corrupt_vc_merge);
          Node.send node ~dst:1 ~annotation:Annotation.Release
            ~payload_bytes:8
            ~handler:(fun _ d -> Node.accept d)
        end)
  in
  let v =
    match
      ( find_violation sys "acquire-dominance",
        find_violation sys "vc-monotonic" )
    with
    | Some v, _ | None, Some v -> v
    | None, None ->
      Alcotest.failf "corrupted VC merge not reported:@.%a"
        (fun ppf () -> Audit.pp_report ppf (auditor sys))
        ()
  in
  Alcotest.(check bool) "violation carries a trace id" true
    (v.Audit.trace_id <> None)

let test_catches_manager_accept () =
  let sys = make ~nodes:3 () in
  let wq = Work_queue.create sys ~manager:0 ~name:"wq" () in
  Work_queue.chaos_accept_once wq;
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 1 ->
          Work_queue.enqueue wq node ~bytes:16 7;
          Work_queue.close wq node
        | 2 -> (
          match Work_queue.dequeue wq node with
          | Some 7 -> ()
          | _ -> Alcotest.fail "item lost")
        | _ -> ())
  in
  match find_violation sys "relay-consistent" with
  | None ->
    Alcotest.failf "manager accept not reported:@.%a"
      (fun ppf () -> Audit.pp_report ppf (auditor sys))
      ()
  | Some v ->
    Alcotest.(check bool) "violation carries a trace id" true
      (v.Audit.trace_id <> None);
    Alcotest.(check int) "detected at the manager" 0 v.Audit.node

let () =
  Alcotest.run "audit"
    [
      ( "clean",
        [
          Alcotest.test_case "busy run, no violations" `Quick
            test_clean_busy_run;
          Alcotest.test_case "tracing does not perturb" `Quick
            test_clean_under_tracing;
          Alcotest.test_case "work-queue forward flow chains" `Quick
            test_wq_forward_flow;
          Alcotest.test_case "causal analysis" `Quick test_causal_analysis;
        ] );
      ( "negative",
        [
          Alcotest.test_case "skipped write notice" `Quick
            test_catches_skipped_write_notice;
          Alcotest.test_case "corrupt vc merge" `Quick
            test_catches_corrupt_vc_merge;
          Alcotest.test_case "manager becomes consistent" `Quick
            test_catches_manager_accept;
        ] );
    ]
