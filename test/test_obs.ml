(* Unit tests for the typed observability layer: registry semantics
   (idempotent registration, snapshot/diff/merge, reset), histogram merge
   algebra, tracing, and exporter determinism. *)

module Obs = Carlos_obs.Obs

let snap_value snap ~node ~layer name =
  match Obs.find snap ~node ~layer name with
  | Some v -> v
  | None -> Alcotest.failf "instrument %s missing from snapshot" name

let counter_of = function
  | Obs.Counter_v n -> n
  | _ -> Alcotest.fail "expected a counter"

(* ------------------------------------------------------------------ *)
(* Registry basics *)

let test_instruments () =
  let t = Obs.create () in
  let c = Obs.counter t ~node:0 ~layer:Obs.Net "frames" in
  Obs.inc c;
  Obs.add c 4;
  Alcotest.(check int) "counter" 5 (Obs.value c);
  let g = Obs.gauge t ~node:0 ~layer:Obs.Carlos "time.user" in
  Obs.add_gauge g 1.5;
  Obs.add_gauge g 0.25;
  Alcotest.(check (float 1e-12)) "gauge" 1.75 (Obs.gauge_value g);
  Obs.set_gauge g 3.0;
  Alcotest.(check (float 1e-12)) "gauge set" 3.0 (Obs.gauge_value g);
  let a = Obs.byte_acc t ~node:1 ~layer:Obs.Carlos "msgs" in
  Obs.acc_bytes a 100;
  Obs.acc_bytes a 50;
  Alcotest.(check int) "acc count" 2 (Obs.acc_count a);
  Alcotest.(check int) "acc total" 150 (Obs.acc_total a)

let test_registration_idempotent () =
  let t = Obs.create () in
  let c1 = Obs.counter t ~node:2 ~layer:Obs.Dsm "x" in
  let c2 = Obs.counter t ~node:2 ~layer:Obs.Dsm "x" in
  Obs.inc c1;
  Obs.inc c2;
  (* Same key, same instrument: both handles see both increments. *)
  Alcotest.(check int) "shared" 2 (Obs.value c1);
  (* Same name under a different node or layer is a distinct instrument. *)
  let other = Obs.counter t ~node:3 ~layer:Obs.Dsm "x" in
  Alcotest.(check int) "distinct node" 0 (Obs.value other)

let test_kind_mismatch () =
  let t = Obs.create () in
  let (_ : Obs.counter) = Obs.counter t ~node:0 ~layer:Obs.Vm "n" in
  match Obs.gauge t ~node:0 ~layer:Obs.Vm "n" with
  | (_ : Obs.gauge) -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ()

let test_queries () =
  let t = Obs.create () in
  for node = 0 to 3 do
    let c = Obs.counter t ~node ~layer:Obs.Carlos "msgs.sent" in
    Obs.add c (node + 1)
  done;
  Alcotest.(check int) "sum over nodes" 10
    (Obs.sum_counters t ~layer:Obs.Carlos "msgs.sent");
  Alcotest.(check int) "single value" 3
    (Obs.counter_value t ~node:2 ~layer:Obs.Carlos "msgs.sent");
  Alcotest.(check int) "absent is zero" 0
    (Obs.counter_value t ~node:9 ~layer:Obs.Carlos "msgs.sent")

(* ------------------------------------------------------------------ *)
(* Snapshots *)

let test_snapshot_diff () =
  let t = Obs.create () in
  let c = Obs.counter t ~node:0 ~layer:Obs.Net "frames" in
  let g = Obs.gauge t ~node:0 ~layer:Obs.Carlos "time.user" in
  Obs.add c 10;
  Obs.add_gauge g 2.0;
  let before = Obs.snapshot t in
  Obs.add c 7;
  Obs.add_gauge g 0.5;
  (* A phase measured by diff sees only what happened in between... *)
  let phase = Obs.diff ~earlier:before (Obs.snapshot t) in
  Alcotest.(check int) "phase counter" 7
    (counter_of (snap_value phase ~node:0 ~layer:Obs.Net "frames"));
  (match snap_value phase ~node:0 ~layer:Obs.Carlos "time.user" with
  | Obs.Gauge_v v -> Alcotest.(check (float 1e-12)) "phase gauge" 0.5 v
  | _ -> Alcotest.fail "expected gauge");
  (* ...while cumulative state is untouched (no hidden reset). *)
  Alcotest.(check int) "cumulative" 17 (Obs.value c)

let test_snapshot_merge () =
  let a = Obs.create () and b = Obs.create () in
  Obs.add (Obs.counter a ~node:0 ~layer:Obs.Vm "faults") 3;
  Obs.add (Obs.counter b ~node:0 ~layer:Obs.Vm "faults") 4;
  Obs.add (Obs.counter b ~node:1 ~layer:Obs.Vm "faults") 5;
  let merged = Obs.merge_snapshots (Obs.snapshot a) (Obs.snapshot b) in
  Alcotest.(check int) "summed" 7
    (counter_of (snap_value merged ~node:0 ~layer:Obs.Vm "faults"));
  Alcotest.(check int) "passthrough" 5
    (counter_of (snap_value merged ~node:1 ~layer:Obs.Vm "faults"));
  Alcotest.(check int) "key count" 2 (List.length (Obs.bindings merged))

let test_reset () =
  let t = Obs.create () in
  let c = Obs.counter t ~node:0 ~layer:Obs.Sim "n" in
  let h = Obs.histogram t ~node:0 ~layer:Obs.Sim "h" in
  Obs.add c 5;
  Obs.Hist.observe h 1.0;
  Obs.set_tracing t true;
  Obs.event t ~node:0 ~layer:Obs.Sim "e";
  Obs.reset t;
  Alcotest.(check int) "counter zeroed" 0 (Obs.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Obs.Hist.snap h).Obs.Hist.count;
  Alcotest.(check int) "events dropped" 0 (List.length (Obs.events t))

(* ------------------------------------------------------------------ *)
(* Histogram algebra *)

let test_hist_basics () =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.observe h) [ 1.0; 2.0; 4.0; 8.0 ];
  let s = Obs.Hist.snap h in
  Alcotest.(check int) "count" 4 s.Obs.Hist.count;
  Alcotest.(check (float 1e-12)) "sum" 15.0 s.Obs.Hist.sum;
  Alcotest.(check (float 1e-12)) "min" 1.0 s.Obs.Hist.min;
  Alcotest.(check (float 1e-12)) "max" 8.0 s.Obs.Hist.max;
  Alcotest.(check (float 1e-12)) "mean" 3.75 (Obs.Hist.mean s)

let test_hist_percentile () =
  (* 1/2/4/8 each occupy their own power-of-two bucket at its lower edge,
     so the interpolation reaches exact values at every quartile. *)
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.observe h) [ 1.0; 2.0; 4.0; 8.0 ];
  let s = Obs.Hist.snap h in
  let check name exp p =
    Alcotest.(check (float 1e-12)) name exp (Obs.Hist.percentile s p)
  in
  check "p0 = min" 1.0 0.0;
  check "p25" 2.0 25.0;
  check "p50" 4.0 50.0;
  check "p75" 8.0 75.0;
  check "p100 = max" 8.0 100.0;
  (* Bucket bounds clamp to [min, max]: a single-valued histogram answers
     exactly at every percentile. *)
  let h5 = Obs.Hist.create () in
  for _ = 1 to 10 do
    Obs.Hist.observe h5 5.0
  done;
  let s5 = Obs.Hist.snap h5 in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0)) "all-5" 5.0 (Obs.Hist.percentile s5 p))
    [ 0.0; 10.0; 50.0; 90.0; 99.9; 100.0 ];
  Alcotest.(check (float 0.0)) "empty" 0.0
    (Obs.Hist.percentile Obs.Hist.empty 50.0)

(* Degenerate snaps have defined answers: an empty (or negative-count
   diff) snap is 0 at every percentile, and a NaN percentile propagates
   — never an infinity sentinel leaking out of the bucket walk. *)
let test_hist_percentile_degenerate () =
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0)) "empty -> 0" 0.0
        (Obs.Hist.percentile Obs.Hist.empty p))
    [ -5.0; 0.0; 50.0; 100.0; 250.0 ];
  Alcotest.(check bool) "nan p on empty -> nan" true
    (Float.is_nan (Obs.Hist.percentile Obs.Hist.empty Float.nan));
  let h = Obs.Hist.create () in
  Obs.Hist.observe h 3.0;
  Alcotest.(check bool) "nan p on nonempty -> nan" true
    (Float.is_nan (Obs.Hist.percentile (Obs.Hist.snap h) Float.nan))

(* ------------------------------------------------------------------ *)
(* Series: append-only samples, suffix diff, timestamp-sorted merge *)

let series_samples snap ~node name =
  match snap_value snap ~node ~layer:Obs.Dsm name with
  | Obs.Series_v a -> Array.to_list a
  | _ -> Alcotest.fail "expected a series"

let test_series () =
  let t = Obs.create () in
  let s = Obs.series t ~node:1 ~layer:Obs.Dsm "metadata_pressure" in
  Alcotest.(check int) "empty" 0 (Obs.series_length s);
  Obs.series_observe s ~ts:0.0 1.0;
  Obs.series_observe s ~ts:0.5 3.0;
  let early = Obs.snapshot t in
  Obs.series_observe s ~ts:1.0 2.0;
  Alcotest.(check int) "length" 3 (Obs.series_length s);
  let later = Obs.snapshot t in
  let check_samples msg exp got =
    Alcotest.(check (list (pair (float 0.0) (float 0.0)))) msg exp got
  in
  check_samples "insertion order"
    [ (0.0, 1.0); (0.5, 3.0); (1.0, 2.0) ]
    (series_samples later ~node:1 "metadata_pressure");
  check_samples "diff keeps the suffix"
    [ (1.0, 2.0) ]
    (series_samples (Obs.diff ~earlier:early later) ~node:1
       "metadata_pressure");
  let t2 = Obs.create () in
  let s2 = Obs.series t2 ~node:1 ~layer:Obs.Dsm "metadata_pressure" in
  Obs.series_observe s2 ~ts:0.25 9.0;
  check_samples "merge interleaves by timestamp"
    [ (0.0, 1.0); (0.25, 9.0); (0.5, 3.0); (1.0, 2.0) ]
    (series_samples
       (Obs.merge_snapshots later (Obs.snapshot t2))
       ~node:1 "metadata_pressure")

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_series_jsonl () =
  let t = Obs.create () in
  let s = Obs.series t ~node:0 ~layer:Obs.Dsm "metadata_pressure" in
  Obs.series_observe s ~ts:0.25 4.0;
  Obs.series_observe s ~ts:1.0 7.0;
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Obs.pp_metrics_jsonl ppf (Obs.snapshot t);
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "samples array present" true
    (contains ~sub:{|"type":"series","count":2,"samples":[[0.25,4],[1,7]]|}
       (Buffer.contents buf))

(* Generator of histogram snapshots with small integer-valued observations:
   the merge's float sums are then exact, so associativity is exact too. *)
let hist_gen =
  let open QCheck.Gen in
  list_size (int_range 0 20) (int_range 0 1000) >>= fun xs ->
  let h = Obs.Hist.create () in
  List.iter (fun x -> Obs.Hist.observe h (float_of_int x)) xs;
  return (Obs.Hist.snap h)

(* Percentiles are monotone in p and bracketed by [min, max]. *)
let prop_hist_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile monotone and bracketed"
    (QCheck.make
       QCheck.Gen.(
         pair hist_gen (list_size (int_range 2 6) (float_range 0.0 100.0))))
    (fun (s, ps) ->
      s.Obs.Hist.count = 0
      ||
      let vs = List.map (Obs.Hist.percentile s) (List.sort compare ps) in
      List.for_all (fun v -> v >= s.Obs.Hist.min && v <= s.Obs.Hist.max) vs
      && fst
           (List.fold_left
              (fun (ok, prev) v -> (ok && v >= prev, v))
              (true, neg_infinity) vs))

let hist_eq a b =
  a.Obs.Hist.count = b.Obs.Hist.count
  && a.Obs.Hist.sum = b.Obs.Hist.sum
  && a.Obs.Hist.min = b.Obs.Hist.min
  && a.Obs.Hist.max = b.Obs.Hist.max
  && a.Obs.Hist.buckets = b.Obs.Hist.buckets

let prop_hist_merge_commutative =
  QCheck.Test.make ~name:"histogram merge is commutative" ~count:100
    (QCheck.make QCheck.Gen.(pair hist_gen hist_gen))
    (fun (a, b) -> hist_eq (Obs.Hist.merge a b) (Obs.Hist.merge b a))

let prop_hist_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative" ~count:100
    (QCheck.make QCheck.Gen.(triple hist_gen hist_gen hist_gen))
    (fun (a, b, c) ->
      hist_eq
        (Obs.Hist.merge (Obs.Hist.merge a b) c)
        (Obs.Hist.merge a (Obs.Hist.merge b c)))

let prop_hist_merge_identity =
  QCheck.Test.make ~name:"empty histogram is the merge identity" ~count:100
    (QCheck.make hist_gen)
    (fun a ->
      hist_eq (Obs.Hist.merge a Obs.Hist.empty) a
      && hist_eq (Obs.Hist.merge Obs.Hist.empty a) a)

(* ------------------------------------------------------------------ *)
(* Tracing *)

let test_tracing_off_by_default () =
  let t = Obs.create () in
  Obs.event t ~node:0 ~layer:Obs.Net "dropped";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.events t))

let test_events_and_spans () =
  let now = ref 0.0 in
  let t = Obs.create ~clock:(fun () -> !now) () in
  Obs.set_tracing t true;
  now := 1.5;
  Obs.event t ~node:2 ~layer:Obs.Carlos "send"
    ~args:[ ("dst", Obs.Int 3) ];
  let result =
    Obs.span t ~node:2 ~layer:Obs.Dsm "lrc.accept" (fun () ->
        now := 2.5;
        42)
  in
  Alcotest.(check int) "span passes result through" 42 result;
  match Obs.events t with
  | [ e1; e2 ] ->
    Alcotest.(check (float 0.0)) "instant ts" 1.5 e1.Obs.ts;
    Alcotest.(check string) "instant name" "send" e1.Obs.name;
    (match e1.Obs.phase with
    | Obs.Instant -> ()
    | _ -> Alcotest.fail "expected instant");
    Alcotest.(check (float 0.0)) "span start" 1.5 e2.Obs.ts;
    (match e2.Obs.phase with
    | Obs.Complete d -> Alcotest.(check (float 1e-12)) "span duration" 1.0 d
    | _ -> Alcotest.fail "expected complete")
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_flow_events () =
  let now = ref 0.0 in
  let t = Obs.create ~clock:(fun () -> !now) () in
  let id = Obs.next_flow_id t in
  Alcotest.(check int) "flow ids from 1" 1 id;
  Alcotest.(check int) "flow ids monotone" 2 (Obs.next_flow_id t);
  (* Allocation works with tracing off, recording is a no-op. *)
  Obs.flow_start t ~id ~node:0 ~layer:Obs.Carlos "RELEASE";
  Alcotest.(check int) "off: nothing recorded" 0 (List.length (Obs.events t));
  Obs.set_tracing t true;
  now := 1.0;
  Obs.flow_start t ~id ~node:0 ~layer:Obs.Carlos "RELEASE";
  now := 2.0;
  Obs.flow_step t ~id ~node:1 ~layer:Obs.Carlos "RELEASE";
  now := 3.0;
  Obs.flow_finish t ~id ~node:2 ~layer:Obs.Carlos "RELEASE";
  match Obs.events t with
  | [ s; st; f ] ->
    (match (s.Obs.phase, st.Obs.phase, f.Obs.phase) with
    | Obs.Flow_start a, Obs.Flow_step b, Obs.Flow_finish c ->
      Alcotest.(check (list int)) "same id" [ id; id; id ] [ a; b; c ]
    | _ -> Alcotest.fail "expected start/step/finish");
    Alcotest.(check string) "shared name" "RELEASE" f.Obs.name
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let render pp x =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  pp ppf x;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let populated () =
  let t = Obs.create ~clock:(fun () -> 0.125) () in
  Obs.set_tracing t true;
  Obs.add (Obs.counter t ~node:1 ~layer:Obs.Net "frames") 3;
  Obs.add_gauge (Obs.gauge t ~node:0 ~layer:Obs.Carlos "time.user") 0.5;
  Obs.Hist.observe (Obs.histogram t ~node:0 ~layer:Obs.Vm "diff.bytes") 64.0;
  Obs.acc_bytes (Obs.byte_acc t ~node:Obs.global_node ~layer:Obs.Net "d") 9;
  Obs.event t ~node:1 ~layer:Obs.Carlos "send" ~args:[ ("x", Obs.Str "\"q\"") ];
  let id = Obs.next_flow_id t in
  Obs.complete_at t ~ts:0.125 ~duration:0.001 ~node:1 ~layer:Obs.Carlos "send";
  Obs.flow_start t ~id ~node:1 ~layer:Obs.Carlos "RELEASE"
    ~args:[ ("dst", Obs.Int 2) ];
  Obs.flow_step t ~id ~node:2 ~layer:Obs.Carlos "RELEASE";
  Obs.flow_finish t ~id ~node:3 ~layer:Obs.Carlos "RELEASE";
  t

let test_chrome_trace_shape () =
  let t = populated () in
  let out = render Obs.pp_chrome_trace t in
  Alcotest.(check bool) "object with traceEvents" true
    (String.length out > 2
    && String.sub out 0 1 = "{"
    && contains ~affix:"\"traceEvents\":[" out);
  Alcotest.(check bool) "pid/tid present" true
    (contains ~affix:"\"pid\":1" out);
  Alcotest.(check bool) "microsecond timestamps" true
    (contains ~affix:"\"ts\":125000" out);
  Alcotest.(check bool) "quotes escaped" true
    (contains ~affix:{|\"q\"|} out);
  Alcotest.(check bool) "flow start" true
    (contains ~affix:{|"ph":"s","id":1|} out);
  Alcotest.(check bool) "flow step" true
    (contains ~affix:{|"ph":"t","id":1|} out);
  Alcotest.(check bool) "flow finish binds to enclosing slice" true
    (contains ~affix:{|"ph":"f","bp":"e","id":1|} out)

let test_export_determinism () =
  (* Two identically-driven registries (flow events included) must dump
     byte-identical Chrome, JSONL and metrics exports. *)
  let a = populated () and b = populated () in
  Alcotest.(check string) "chrome trace deterministic"
    (render Obs.pp_chrome_trace a)
    (render Obs.pp_chrome_trace b);
  Alcotest.(check string) "trace jsonl deterministic"
    (render Obs.pp_trace_jsonl a)
    (render Obs.pp_trace_jsonl b);
  Alcotest.(check string) "metrics deterministic"
    (render Obs.pp_metrics (Obs.snapshot a))
    (render Obs.pp_metrics (Obs.snapshot b))

let test_metrics_jsonl_shape () =
  let t = populated () in
  let snap = Obs.snapshot t in
  let out = render Obs.pp_metrics_jsonl snap in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  Alcotest.(check int) "one line per instrument"
    (List.length (Obs.bindings snap))
    (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is an object" true
        (String.length l > 1
        && l.[0] = '{'
        && l.[String.length l - 1] = '}'))
    lines

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "instrument kinds" `Quick test_instruments;
          Alcotest.test_case "registration idempotent" `Quick
            test_registration_idempotent;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_kind_mismatch;
          Alcotest.test_case "queries" `Quick test_queries;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "snapshot/diff" `Quick test_snapshot_diff;
          Alcotest.test_case "merge" `Quick test_snapshot_merge;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "histograms",
        Alcotest.test_case "basics" `Quick test_hist_basics
        :: Alcotest.test_case "percentile" `Quick test_hist_percentile
        :: Alcotest.test_case "percentile degenerate" `Quick
             test_hist_percentile_degenerate
        :: qcheck
             [
               prop_hist_merge_commutative;
               prop_hist_merge_associative;
               prop_hist_merge_identity;
               prop_hist_percentile_monotone;
             ] );
      ( "series",
        [
          Alcotest.test_case "observe/diff/merge" `Quick test_series;
          Alcotest.test_case "jsonl shape" `Quick test_series_jsonl;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "off by default" `Quick
            test_tracing_off_by_default;
          Alcotest.test_case "events and spans" `Quick test_events_and_spans;
          Alcotest.test_case "flow events" `Quick test_flow_events;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace shape" `Quick
            test_chrome_trace_shape;
          Alcotest.test_case "metrics jsonl shape" `Quick
            test_metrics_jsonl_shape;
          Alcotest.test_case "export determinism" `Quick
            test_export_determinism;
        ] );
    ]
