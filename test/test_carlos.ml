(* Integration tests for the CarlOS layer: annotated messages over the
   simulated cluster, message-based locks/barriers/semaphores, the
   centralized work queue with forwarding, the Figure-1 causality scenario,
   and the global metadata GC. *)

module Engine = Carlos_sim.Engine
module Vc = Carlos_dsm.Vc
module Lrc = Carlos_dsm.Lrc_backend
module Region = Carlos_vm.Region
module Shm = Carlos_vm.Shm
module Annotation = Carlos.Annotation
module Node = Carlos.Node
module System = Carlos.System
module Msg_lock = Carlos.Msg_lock
module Msg_barrier = Carlos.Msg_barrier
module Msg_semaphore = Carlos.Msg_semaphore
module Work_queue = Carlos.Work_queue
module Obs = Carlos_obs.Obs

let test_config ?(nodes = 4) () =
  {
    (System.default_config ~nodes) with
    System.page_size = 512;
    coherent_pages = 32;
    private_bytes = 4096;
    noncoherent_bytes = 4096;
  }

let make ?nodes () = System.create (test_config ?nodes ())

(* ------------------------------------------------------------------ *)
(* Plain messaging *)

let test_message_roundtrip () =
  let sys = make ~nodes:2 () in
  let got = ref None in
  let report =
    System.run sys (fun node ->
        if Node.id node = 0 then
          Node.send node ~dst:1 ~annotation:Annotation.None_ ~payload_bytes:32
            ~handler:(fun here d ->
              Node.accept d;
              got := Some (Node.id here, Node.delivery_src d)))
  in
  Alcotest.(check (option (pair int int))) "handler ran at receiver"
    (Some (1, 0)) !got;
  Alcotest.(check bool) "one message counted" true (report.System.messages >= 1);
  Alcotest.(check bool) "time advanced" true (report.System.wall > 0.0)

let test_handler_must_dispose () =
  let sys = make ~nodes:2 () in
  match
    System.run sys (fun node ->
        if Node.id node = 0 then
          Node.send node ~dst:1 ~annotation:Annotation.None_ ~payload_bytes:8
            ~handler:(fun _ _ -> ()))
  with
  | exception Node.Handler_error _ -> ()
  | _ -> Alcotest.fail "handler without disposition must be detected"

let test_release_propagates_memory () =
  let sys = make ~nodes:2 () in
  let x = System.alloc sys 8 in
  let seen = ref 0 in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 0 ->
          Shm.write_i64 (Node.shm node) x 99;
          Node.send node ~dst:1 ~annotation:Annotation.Release ~payload_bytes:8
            ~handler:(fun here d ->
              Node.accept d;
              (* Handlers must not touch coherent memory; hand off to a
                 fresh fiber for the read. *)
              Engine.fork (fun () -> seen := Shm.read_i64 (Node.shm here) x))
        | _ -> ())
  in
  Alcotest.(check int) "released value visible" 99 !seen

let test_none_does_not_propagate_memory () =
  let sys = make ~nodes:2 () in
  let x = System.alloc sys 8 in
  let receiver_vc_component = ref (-1) in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 0 ->
          Shm.write_i64 (Node.shm node) x 99;
          Node.send node ~dst:1 ~annotation:Annotation.None_ ~payload_bytes:8
            ~handler:(fun here d ->
              Node.accept d;
              receiver_vc_component := Vc.get (Lrc.vc (Node.lrc here)) 0)
        | _ -> ())
  in
  (* The NONE message does not interact with consistency: node 1 has seen
     no interval from node 0. *)
  Alcotest.(check int) "no consistency induced" 0 !receiver_vc_component

(* ------------------------------------------------------------------ *)
(* Figure 1: the lock protocol must not induce the symmetric ordering. *)

let test_figure1_asymmetry () =
  let sys = make ~nodes:3 () in
  let x = System.alloc sys 8 in
  (* y lands on a different page than x *)
  let y = System.alloc sys ~align:512 512 in
  let lock = Msg_lock.create sys ~manager:1 ~name:"fig1" in
  let p2_read_x = ref 0 in
  let p1_vc_of_p2 = ref (-1) in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"end" () in
  let (_ : System.report) =
    System.run sys (fun node ->
        (match Node.id node with
        | 1 ->
          (* P1 writes x while holding the lock. *)
          Msg_lock.acquire lock node;
          Shm.write_i64 (Node.shm node) x 7;
          Node.compute node 0.01;
          Msg_lock.release lock node
        | 2 ->
          (* P2 writes y (its own page) before requesting the lock; the
             "get lock" REQUEST must not make P1 consistent with P2. *)
          Shm.write_i64 (Node.shm node) y 1;
          Node.compute node 0.02;
          Msg_lock.acquire lock node;
          p2_read_x := Shm.read_i64 (Node.shm node) x;
          Msg_lock.release lock node
        | _ -> ());
        (* Observe P1's knowledge of P2 before the closing barrier makes
           everyone consistent. *)
        if Node.id node = 1 then
          p1_vc_of_p2 := Vc.get (Lrc.vc (Node.lrc node)) 2;
        Msg_barrier.wait barrier node)
  in
  Alcotest.(check int) "x visible at P2 after lock transfer" 7 !p2_read_x;
  Alcotest.(check int)
    "P1 never became consistent with P2 (no symmetric ordering)" 0
    !p1_vc_of_p2

(* ------------------------------------------------------------------ *)
(* Lock *)

let test_lock_mutual_exclusion () =
  let sys = make () in
  let lock = Msg_lock.create sys ~manager:0 ~name:"mutex" in
  let counter = System.alloc sys 8 in
  let in_cs = ref 0 and max_in_cs = ref 0 in
  let iterations = 5 in
  let (_ : System.report) =
    System.run sys (fun node ->
        for _ = 1 to iterations do
          Msg_lock.acquire lock node;
          incr in_cs;
          if !in_cs > !max_in_cs then max_in_cs := !in_cs;
          let v = Shm.read_i64 (Node.shm node) counter in
          Node.compute node 0.002;
          Shm.write_i64 (Node.shm node) counter (v + 1);
          decr in_cs;
          Msg_lock.release lock node
        done)
  in
  Alcotest.(check int) "never two holders" 1 !max_in_cs;
  (* Verify the final count through a fresh system-free read: use node 0's
     view after everything quiesced (it may be stale; acquire once more
     through a new run is overkill — check acquisition count instead). *)
  Alcotest.(check int) "all acquisitions granted" (4 * iterations)
    (Msg_lock.acquisitions lock)

let test_lock_counter_value () =
  let sys = make () in
  let lock = Msg_lock.create sys ~manager:2 ~name:"ctr" in
  let counter = System.alloc sys 8 in
  let final = ref (-1) in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"b" () in
  let iterations = 8 in
  let (_ : System.report) =
    System.run sys (fun node ->
        for _ = 1 to iterations do
          Msg_lock.with_lock lock node (fun () ->
              let v = Shm.read_i64 (Node.shm node) counter in
              Shm.write_i64 (Node.shm node) counter (v + 1))
        done;
        Msg_barrier.wait barrier node;
        if Node.id node = 3 then
          (* After the barrier everyone is consistent. *)
          final := Shm.read_i64 (Node.shm node) counter)
  in
  Alcotest.(check int) "sequentially consistent counter" (4 * iterations)
    !final

exception Body_failed

let test_lock_released_on_exception () =
  (* An exception thrown inside the critical section must release the
     lock (other nodes keep making progress) and re-raise unchanged. *)
  let sys = make () in
  let lock = Msg_lock.create sys ~manager:0 ~name:"exc" in
  let counter = System.alloc sys 8 in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"b" () in
  let reraised = ref false in
  let final = ref (-1) in
  let (_ : System.report) =
    System.run sys (fun node ->
        (if Node.id node = 1 then
           try
             Msg_lock.with_lock lock node (fun () ->
                 let v = Shm.read_i64 (Node.shm node) counter in
                 Shm.write_i64 (Node.shm node) counter (v + 1);
                 raise Body_failed)
           with Body_failed -> reraised := true);
        (* Every node, including the one that failed, must still be able
           to take the lock afterwards. *)
        Msg_lock.with_lock lock node (fun () ->
            let v = Shm.read_i64 (Node.shm node) counter in
            Shm.write_i64 (Node.shm node) counter (v + 1));
        Msg_barrier.wait barrier node;
        if Node.id node = 0 then
          final := Shm.read_i64 (Node.shm node) counter)
  in
  Alcotest.(check bool) "original exception re-raised" true !reraised;
  Alcotest.(check int) "failed section's write plus one per node" 5 !final

(* ------------------------------------------------------------------ *)
(* Barrier *)

let test_barrier_separates_phases () =
  let sys = make () in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"phase" () in
  let order = ref [] in
  let (_ : System.report) =
    System.run sys (fun node ->
        Node.compute node (0.001 *. float_of_int (Node.id node + 1));
        Node.flush_compute node;
        order := (`Before, Node.id node) :: !order;
        Msg_barrier.wait barrier node;
        order := (`After, Node.id node) :: !order)
  in
  let events = List.rev !order in
  let rec check_phase seen_after = function
    | [] -> true
    | (`After, _) :: rest -> check_phase true rest
    | (`Before, _) :: rest -> (not seen_after) && check_phase seen_after rest
  in
  Alcotest.(check bool) "no Before after an After" true
    (check_phase false events);
  Alcotest.(check int) "one episode" 1 (Msg_barrier.episodes barrier)

let test_barrier_makes_all_consistent () =
  let sys = make () in
  let slots = Array.init 4 (fun _ -> System.alloc sys ~align:512 512) in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"all" () in
  let sums = Array.make 4 0 in
  let (_ : System.report) =
    System.run sys (fun node ->
        let me = Node.id node in
        Shm.write_i64 (Node.shm node) slots.(me) (10 + me);
        Msg_barrier.wait barrier node;
        let total = ref 0 in
        Array.iter
          (fun a -> total := !total + Shm.read_i64 (Node.shm node) a)
          slots;
        sums.(me) <- !total)
  in
  Array.iteri
    (fun i sum ->
      Alcotest.(check int) (Printf.sprintf "node %d sum" i) 46 sum)
    sums

let test_barrier_reusable () =
  let sys = make ~nodes:3 () in
  let barrier = Msg_barrier.create sys ~manager:1 ~name:"loop" () in
  let x = System.alloc sys 8 in
  let reads = ref [] in
  let (_ : System.report) =
    System.run sys (fun node ->
        for step = 1 to 4 do
          if Node.id node = step mod 3 then
            Shm.write_i64 (Node.shm node) x step;
          Msg_barrier.wait barrier node;
          if Node.id node = 0 then
            reads := Shm.read_i64 (Node.shm node) x :: !reads;
          Msg_barrier.wait barrier node
        done)
  in
  Alcotest.(check (list int)) "each step visible" [ 4; 3; 2; 1 ] !reads;
  Alcotest.(check int) "episodes" 8 (Msg_barrier.episodes barrier)

let test_transitive_barrier () =
  let sys = make ~nodes:3 () in
  let barrier =
    Msg_barrier.create sys ~manager:0 ~name:"tr" ~transitive:true ()
  in
  let x = System.alloc sys 8 in
  let got = ref 0 in
  let (_ : System.report) =
    System.run sys (fun node ->
        if Node.id node = 2 then Shm.write_i64 (Node.shm node) x 5;
        Msg_barrier.wait barrier node;
        if Node.id node = 1 then got := Shm.read_i64 (Node.shm node) x)
  in
  Alcotest.(check int) "value crossed the barrier" 5 !got

(* ------------------------------------------------------------------ *)
(* Semaphore / condition *)

let test_semaphore_bounds_concurrency () =
  let sys = make () in
  let sem = Msg_semaphore.Semaphore.create sys ~manager:0 ~name:"s" ~initial:2 in
  let inside = ref 0 and peak = ref 0 in
  let (_ : System.report) =
    System.run sys (fun node ->
        for _ = 1 to 3 do
          Msg_semaphore.Semaphore.wait sem node;
          incr inside;
          if !inside > !peak then peak := !inside;
          Node.compute node 0.005;
          Node.flush_compute node;
          decr inside;
          Msg_semaphore.Semaphore.signal sem node
        done)
  in
  Alcotest.(check bool) "at most 2 inside" true (!peak <= 2);
  Alcotest.(check bool) "some concurrency" true (!peak >= 1)

let test_semaphore_as_signal () =
  let sys = make ~nodes:2 () in
  let sem = Msg_semaphore.Semaphore.create sys ~manager:0 ~name:"sig" ~initial:0 in
  let x = System.alloc sys 8 in
  let got = ref 0 in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 0 ->
          Shm.write_i64 (Node.shm node) x 31;
          Msg_semaphore.Semaphore.signal sem node
        | _ ->
          Msg_semaphore.Semaphore.wait sem node;
          (* V was RELEASE via the manager: the waiter sees the write. *)
          got := Shm.read_i64 (Node.shm node) x)
  in
  Alcotest.(check int) "producer's write visible" 31 !got

let test_condition_signal () =
  let sys = make ~nodes:3 () in
  let lock = Msg_lock.create sys ~manager:0 ~name:"m" in
  let cond = Msg_semaphore.Condition.create sys ~manager:0 ~name:"c" in
  let x = System.alloc sys 8 in
  let got = ref (-1) in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 1 ->
          Msg_lock.acquire lock node;
          (* Wait until the producer has published. *)
          while Shm.read_i64 (Node.shm node) x = 0 do
            Msg_semaphore.Condition.wait cond node ~lock
          done;
          got := Shm.read_i64 (Node.shm node) x;
          Msg_lock.release lock node
        | 2 ->
          Node.compute node 0.01;
          Msg_lock.acquire lock node;
          Shm.write_i64 (Node.shm node) x 12;
          Msg_semaphore.Condition.signal cond node;
          Msg_lock.release lock node
        | _ -> ())
  in
  Alcotest.(check int) "condition handoff" 12 !got

(* ------------------------------------------------------------------ *)
(* Work queue *)

let test_work_queue_basic () =
  let sys = make ~nodes:3 () in
  let q = Work_queue.create sys ~manager:0 ~name:"q" () in
  let consumed = ref [] in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 1 ->
          for i = 1 to 6 do
            Work_queue.enqueue q node ~bytes:8 i
          done;
          Work_queue.close q node
        | 2 ->
          let rec loop () =
            match Work_queue.dequeue q node with
            | Some item ->
              consumed := item :: !consumed;
              loop ()
            | None -> ()
          in
          loop ()
        | _ -> ())
  in
  Alcotest.(check (list int)) "all items in order" [ 1; 2; 3; 4; 5; 6 ]
    (List.rev !consumed)

let test_work_queue_forwarding_skips_manager () =
  let sys = make ~nodes:3 () in
  let q = Work_queue.create sys ~manager:0 ~name:"fq" () in
  let data = System.alloc sys 8 in
  let got = ref 0 in
  let manager_vc_of_producer = ref (-1) in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 1 ->
          (* Producer writes shared data, then enqueues a reference. *)
          Shm.write_i64 (Node.shm node) data 1234;
          Work_queue.enqueue q node ~bytes:8 data;
          Work_queue.close q node
        | 2 -> (
          match Work_queue.dequeue q node with
          | Some addr -> got := Shm.read_i64 (Node.shm node) addr
          | None -> Alcotest.fail "no item")
        | _ -> ())
  in
  (* Check after quiescence: the manager never accepted the enqueue
     RELEASE, so it saw no interval from the producer. *)
  manager_vc_of_producer := Vc.get (Lrc.vc (Node.lrc (System.node sys 0))) 1;
  Alcotest.(check int) "consumer is consistent with producer" 1234 !got;
  Alcotest.(check int) "manager stayed out of the causal chain" 0
    !manager_vc_of_producer

let test_work_queue_no_forwarding_involves_manager () =
  let sys = make ~nodes:3 () in
  let q =
    Work_queue.create sys ~manager:0 ~name:"nf" ~mode:Work_queue.No_forwarding ()
  in
  let data = System.alloc sys 8 in
  let got = ref 0 in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 1 ->
          Shm.write_i64 (Node.shm node) data 77;
          Work_queue.enqueue q node ~bytes:8 data;
          Work_queue.close q node
        | 2 -> (
          match Work_queue.dequeue q node with
          | Some addr -> got := Shm.read_i64 (Node.shm node) addr
          | None -> Alcotest.fail "no item")
        | _ -> ())
  in
  Alcotest.(check int) "consumer still consistent" 77 !got;
  (* Here the manager accepted the enqueue: it IS in the causal chain. *)
  Alcotest.(check int) "manager became consistent" 1
    (Vc.get (Lrc.vc (Node.lrc (System.node sys 0))) 1)

let test_work_queue_blocking_dequeue () =
  let sys = make ~nodes:2 () in
  let q = Work_queue.create sys ~manager:0 ~name:"blk" () in
  let got = ref None in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 0 -> got := Work_queue.dequeue q node
        | _ ->
          (* Give the dequeuer time to park. *)
          Node.compute node 0.05;
          Work_queue.enqueue q node ~bytes:8 "late item")
  in
  Alcotest.(check (option string)) "parked dequeue woken" (Some "late item")
    !got

let test_work_queue_manager_dequeues_locally () =
  let sys = make ~nodes:2 () in
  let q = Work_queue.create sys ~manager:0 ~name:"own" () in
  let got = ref None in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 0 ->
          Work_queue.enqueue q node ~bytes:8 "mine";
          got := Work_queue.dequeue q node
        | _ -> ())
  in
  Alcotest.(check (option string)) "self-service" (Some "mine") !got

let test_condition_broadcast () =
  let sys = make ~nodes:4 () in
  let lock = Msg_lock.create sys ~manager:0 ~name:"bm" in
  let cond = Msg_semaphore.Condition.create sys ~manager:0 ~name:"bc" in
  let flag = System.alloc sys 8 in
  let woken = ref 0 in
  let (_ : System.report) =
    System.run sys (fun node ->
        match Node.id node with
        | 0 ->
          (* Give the waiters time to park, then broadcast. *)
          Node.compute node 0.05;
          Msg_lock.acquire lock node;
          Shm.write_i64 (Node.shm node) flag 1;
          Msg_semaphore.Condition.broadcast cond node;
          Msg_lock.release lock node
        | _ ->
          Msg_lock.acquire lock node;
          while Shm.read_i64 (Node.shm node) flag = 0 do
            Msg_semaphore.Condition.wait cond node ~lock
          done;
          incr woken;
          Msg_lock.release lock node)
  in
  Alcotest.(check int) "all waiters woken" 3 !woken

let prop_work_queue_random_pipelines =
  (* Random producer/consumer assignments over the work queue: every
     produced item is consumed exactly once and carries the producer's
     shared-memory payload (the forwarding consistency guarantee). *)
  let gen =
    QCheck.Gen.(
      int_range 2 4 >>= fun nodes ->
      int_range 1 12 >>= fun items_per_producer ->
      int_range 0 2 >>= fun mode ->
      return (nodes, items_per_producer, mode))
  in
  QCheck.Test.make ~name:"work queue: random pipelines conserve items"
    ~count:25 (QCheck.make gen)
    (fun (nodes, items_per_producer, mode) ->
      let sys = make ~nodes () in
      let mode =
        match mode with
        | 0 -> Work_queue.Forwarding
        | 1 -> Work_queue.All_release
        | _ -> Work_queue.No_forwarding
      in
      let q = Work_queue.create sys ~manager:0 ~name:"rq" ~mode () in
      (* Producers: every node but the last; consumer: the last node. *)
      let producers = nodes - 1 in
      let total = producers * items_per_producer in
      let payload = System.alloc sys (8 * max 1 total) in
      let consumed = ref [] in
      let produced_count = ref 0 in
      let (_ : System.report) =
        System.run sys (fun node ->
            let me = Node.id node in
            let shm = Node.shm node in
            if me < producers then begin
              for i = 0 to items_per_producer - 1 do
                let slot = (me * items_per_producer) + i in
                Shm.write_i64 shm (payload + (8 * slot)) (1000 + slot);
                Work_queue.enqueue q node ~bytes:8 slot;
                incr produced_count;
                if !produced_count = total then Work_queue.close q node
              done
            end
            else if me = nodes - 1 then begin
              let rec drain acc =
                match Work_queue.dequeue q node with
                | None -> consumed := acc
                | Some slot ->
                  let v = Shm.read_i64 shm (payload + (8 * slot)) in
                  drain ((slot, v) :: acc)
              in
              drain []
            end)
      in
      let sorted = List.sort compare !consumed in
      let expected = List.init total (fun slot -> (slot, 1000 + slot)) in
      sorted = expected)

(* ------------------------------------------------------------------ *)
(* GC under the full system *)

let test_global_gc_under_load () =
  let cfg = { (test_config ~nodes:3 ()) with System.gc_threshold = Some 2000 } in
  let sys = System.create cfg in
  let lock = Msg_lock.create sys ~manager:0 ~name:"gc" in
  let counter = System.alloc sys 8 in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"gcb" () in
  let final = ref 0 in
  let iterations = 20 in
  let (_ : System.report) =
    System.run sys (fun node ->
        for _ = 1 to iterations do
          Msg_lock.with_lock lock node (fun () ->
              let v = Shm.read_i64 (Node.shm node) counter in
              Shm.write_i64 (Node.shm node) counter (v + 1))
        done;
        Msg_barrier.wait barrier node;
        if Node.id node = 0 then
          final := Shm.read_i64 (Node.shm node) counter)
  in
  Alcotest.(check int) "correct despite GC" (3 * iterations) !final;
  Alcotest.(check bool) "at least one GC ran" true (System.gc_runs sys >= 1)

(* ------------------------------------------------------------------ *)
(* Determinism and reporting *)

let run_report_sys () =
  let sys = make () in
  let lock = Msg_lock.create sys ~manager:0 ~name:"d" in
  let counter = System.alloc sys 8 in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"db" () in
  let report =
    System.run sys (fun node ->
        for _ = 1 to 5 do
          Msg_lock.with_lock lock node (fun () ->
              let v = Shm.read_i64 (Node.shm node) counter in
              Node.compute node 0.001;
              Shm.write_i64 (Node.shm node) counter (v + 1))
        done;
        Msg_barrier.wait barrier node)
  in
  (sys, report)

let run_report () = snd (run_report_sys ())

let test_determinism () =
  let r1 = run_report () and r2 = run_report () in
  Alcotest.(check (float 0.0)) "same wall" r1.System.wall r2.System.wall;
  Alcotest.(check int) "same messages" r1.System.messages r2.System.messages;
  Alcotest.(check int) "same bytes" r1.System.message_bytes
    r2.System.message_bytes

(* Two identical runs must emit byte-identical observability exports: the
   JSONL event trace, the metrics dump and the Chrome trace. *)
let test_determinism_exports () =
  let dump () =
    let sys = make () in
    System.set_tracing sys true;
    let lock = Msg_lock.create sys ~manager:0 ~name:"d" in
    let counter = System.alloc sys 8 in
    let barrier = Msg_barrier.create sys ~manager:0 ~name:"db" () in
    let (_ : System.report) =
      System.run sys (fun node ->
          for _ = 1 to 5 do
            Msg_lock.with_lock lock node (fun () ->
                let v = Shm.read_i64 (Node.shm node) counter in
                Node.compute node 0.001;
                Shm.write_i64 (Node.shm node) counter (v + 1))
          done;
          Msg_barrier.wait barrier node)
    in
    let render pp x =
      let buf = Buffer.create 8192 in
      let ppf = Format.formatter_of_buffer buf in
      pp ppf x;
      Format.pp_print_flush ppf ();
      Buffer.contents buf
    in
    let obs = System.obs sys in
    ( render Obs.pp_trace_jsonl obs,
      render Obs.pp_metrics_jsonl (Obs.snapshot obs),
      render Obs.pp_chrome_trace obs )
  in
  let t1, m1, c1 = dump () and t2, m2, c2 = dump () in
  Alcotest.(check bool) "trace non-empty" true (String.length t1 > 0);
  Alcotest.(check bool) "metrics non-empty" true (String.length m1 > 0);
  Alcotest.(check string) "identical JSONL traces" t1 t2;
  Alcotest.(check string) "identical metrics dumps" m1 m2;
  Alcotest.(check string) "identical Chrome traces" c1 c2

(* The registry and System.report must tell the same story: the report is
   a view over registry data, not a second accounting. *)
let test_report_matches_registry () =
  let sys, r = run_report_sys () in
  let obs = System.obs sys in
  Alcotest.(check int) "messages = sum of msgs.sent"
    (Obs.sum_counters obs ~layer:Obs.Carlos "msgs.sent")
    r.System.messages;
  Alcotest.(check int) "bytes = sum of msgs.bytes"
    (Obs.sum_counters obs ~layer:Obs.Carlos "msgs.bytes")
    r.System.message_bytes;
  Array.iter
    (fun nr ->
      Alcotest.(check (float 1e-12))
        "user gauge"
        (match
           Obs.find (Obs.snapshot obs) ~node:nr.System.node ~layer:Obs.Carlos
             "time.user"
         with
        | Some (Obs.Gauge_v g) -> g
        | _ -> Alcotest.fail "time.user gauge missing")
        nr.System.user)
    r.System.per_node

(* ------------------------------------------------------------------ *)
(* Randomized whole-stack property: arbitrary lock/barrier programs over
   shared counters, under random strategies, cost tables and datagram
   loss, must be sequentially consistent (every counter ends at exactly
   its increment count, and no increment is ever lost). *)

type random_program = {
  rp_nodes : int;
  rp_vars : int;
  rp_rounds : int;
  rp_plan : int array array array; (* node -> round -> list of var indices *)
  rp_strategy : int; (* 0 invalidate, 1 update, 2 hybrid *)
  rp_lossy : bool;
  rp_costs : int; (* 0 default, 1 treadmarks, 2 fast *)
}

let random_program_gen =
  let open QCheck.Gen in
  int_range 2 4 >>= fun rp_nodes ->
  int_range 1 5 >>= fun rp_vars ->
  int_range 1 3 >>= fun rp_rounds ->
  array_size (return rp_nodes)
    (array_size (return rp_rounds)
       (array_size (int_range 0 6) (int_range 0 (rp_vars - 1))))
  >>= fun rp_plan ->
  int_range 0 2 >>= fun rp_strategy ->
  bool >>= fun rp_lossy ->
  int_range 0 2 >>= fun rp_costs ->
  return { rp_nodes; rp_vars; rp_rounds; rp_plan; rp_strategy; rp_lossy; rp_costs }

let run_random_program rp =
  let strategy =
    match rp.rp_strategy with
    | 0 -> Carlos_dsm.Lrc_backend.Invalidate
    | 1 -> Carlos_dsm.Lrc_backend.Update
    | _ -> Carlos_dsm.Lrc_backend.Hybrid_update
  in
  let costs =
    match rp.rp_costs with
    | 0 -> Carlos_dsm.Cost.default
    | 1 -> Carlos_dsm.Cost.treadmarks
    | _ -> Carlos_dsm.Cost.fast_network
  in
  let cfg =
    {
      (test_config ~nodes:rp.rp_nodes ()) with
      System.strategy;
      costs;
      loss = (if rp.rp_lossy then 0.02 else 0.0);
      rto = 0.02;
    }
  in
  let sys = System.create cfg in
  (* All counters deliberately share one page: worst-case false sharing. *)
  let base = System.alloc sys (8 * rp.rp_vars) in
  let locks =
    Array.init rp.rp_vars (fun v ->
        Msg_lock.create sys
          ~manager:(v mod rp.rp_nodes)
          ~name:(Printf.sprintf "v%d" v))
  in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"round" () in
  let finals = Array.make rp.rp_vars (-1) in
  let (_ : System.report) =
    System.run sys (fun node ->
        let me = Node.id node in
        let shm = Node.shm node in
        for round = 0 to rp.rp_rounds - 1 do
          Array.iter
            (fun v ->
              Msg_lock.with_lock locks.(v) node (fun () ->
                  let a = base + (8 * v) in
                  let x = Shm.read_i64 shm a in
                  Node.compute node 1e-4;
                  Shm.write_i64 shm a (x + 1)))
            rp.rp_plan.(me).(round);
          Msg_barrier.wait barrier node
        done;
        if me = 0 then
          for v = 0 to rp.rp_vars - 1 do
            finals.(v) <- Shm.read_i64 shm (base + (8 * v))
          done)
  in
  let expected = Array.make rp.rp_vars 0 in
  Array.iter
    (Array.iter (Array.iter (fun v -> expected.(v) <- expected.(v) + 1)))
    rp.rp_plan;
  (expected, finals)

let prop_random_programs =
  QCheck.Test.make ~name:"random lock/barrier programs are coherent"
    ~count:40
    (QCheck.make random_program_gen)
    (fun rp ->
      let expected, finals = run_random_program rp in
      if expected <> finals then
        QCheck.Test.fail_reportf "expected %s, got %s"
          (String.concat "," (Array.to_list (Array.map string_of_int expected)))
          (String.concat "," (Array.to_list (Array.map string_of_int finals)))
      else true)

let test_tracing () =
  let sys = make ~nodes:2 () in
  System.set_tracing sys true;
  let (_ : System.report) =
    System.run sys (fun node ->
        if Node.id node = 0 then
          Node.send node ~dst:1 ~annotation:Annotation.Release ~payload_bytes:8
            ~handler:(fun _ d -> Node.accept d))
  in
  let events = Carlos_sim.Trace.events (System.trace sys) in
  Alcotest.(check bool) "a send was traced" true
    (List.exists (fun e -> e.Carlos_sim.Trace.tag = "send") events);
  Alcotest.(check bool) "a delivery was traced" true
    (List.exists (fun e -> e.Carlos_sim.Trace.tag = "deliver") events)

let test_report_consistency () =
  let r = run_report () in
  Alcotest.(check bool) "wall positive" true (r.System.wall > 0.0);
  Alcotest.(check bool) "utilization sane" true
    (r.System.net_utilization >= 0.0 && r.System.net_utilization < 1.0);
  Array.iter
    (fun nr ->
      let total =
        nr.System.user +. nr.System.unix +. nr.System.carlos +. nr.System.idle
      in
      if total > r.System.wall +. 1e-6 then
        Alcotest.failf "node %d breakdown exceeds wall" nr.System.node)
    r.System.per_node

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "carlos"
    [
      ( "messaging",
        [
          Alcotest.test_case "roundtrip" `Quick test_message_roundtrip;
          Alcotest.test_case "handler must dispose" `Quick
            test_handler_must_dispose;
          Alcotest.test_case "RELEASE propagates" `Quick
            test_release_propagates_memory;
          Alcotest.test_case "NONE does not" `Quick
            test_none_does_not_propagate_memory;
          Alcotest.test_case "figure 1 asymmetry" `Quick
            test_figure1_asymmetry;
        ] );
      ( "lock",
        [
          Alcotest.test_case "mutual exclusion" `Quick
            test_lock_mutual_exclusion;
          Alcotest.test_case "counter value" `Quick test_lock_counter_value;
          Alcotest.test_case "released on exception" `Quick
            test_lock_released_on_exception;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "separates phases" `Quick
            test_barrier_separates_phases;
          Alcotest.test_case "makes all consistent" `Quick
            test_barrier_makes_all_consistent;
          Alcotest.test_case "reusable" `Quick test_barrier_reusable;
          Alcotest.test_case "transitive variant" `Quick
            test_transitive_barrier;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "bounds concurrency" `Quick
            test_semaphore_bounds_concurrency;
          Alcotest.test_case "signal with memory" `Quick
            test_semaphore_as_signal;
          Alcotest.test_case "condition" `Quick test_condition_signal;
          Alcotest.test_case "condition broadcast" `Quick
            test_condition_broadcast;
        ] );
      ( "work-queue",
        [
          Alcotest.test_case "basic" `Quick test_work_queue_basic;
          Alcotest.test_case "forwarding skips manager" `Quick
            test_work_queue_forwarding_skips_manager;
          Alcotest.test_case "no-forwarding involves manager" `Quick
            test_work_queue_no_forwarding_involves_manager;
          Alcotest.test_case "blocking dequeue" `Quick
            test_work_queue_blocking_dequeue;
          Alcotest.test_case "manager self-service" `Quick
            test_work_queue_manager_dequeues_locally;
          QCheck_alcotest.to_alcotest prop_work_queue_random_pipelines;
        ] );
      ( "system",
        [
          Alcotest.test_case "gc under load" `Quick test_global_gc_under_load;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "deterministic exports" `Quick
            test_determinism_exports;
          Alcotest.test_case "report matches registry" `Quick
            test_report_matches_registry;
          Alcotest.test_case "report consistency" `Quick
            test_report_consistency;
          Alcotest.test_case "tracing" `Quick test_tracing;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_random_programs ] );
    ]
