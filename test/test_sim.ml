(* Tests for the simulation kernel: event heap, RNG, engine and fibers,
   virtual-time resources. *)

module Heap = Carlos_sim.Heap
module Rng = Carlos_sim.Rng
module Engine = Carlos_sim.Engine
module Resource = Carlos_sim.Resource

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_order () =
  let h = Heap.create ~dummy:"" () in
  Heap.add h ~time:3.0 ~seq:0 "c";
  Heap.add h ~time:1.0 ~seq:1 "a";
  Heap.add h ~time:2.0 ~seq:2 "b";
  let popped = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (_, _, v) ->
      popped := v :: !popped;
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !popped)

let test_heap_tie_break () =
  let h = Heap.create ~dummy:"" () in
  Heap.add h ~time:1.0 ~seq:5 "later";
  Heap.add h ~time:1.0 ~seq:2 "earlier";
  (match Heap.pop_min h with
  | Some (_, seq, v) ->
    Alcotest.(check int) "lower seq first" 2 seq;
    Alcotest.(check string) "value" "earlier" v
  | None -> Alcotest.fail "heap empty");
  Alcotest.(check int) "one left" 1 (Heap.size h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_nat))
    (fun pairs ->
      let h = Heap.create ~dummy:(-1) () in
      List.iteri (fun i (time, _) -> Heap.add h ~time ~seq:i i) pairs;
      let rec drain last =
        match Heap.pop_min h with
        | None -> true
        | Some (time, _, _) -> time >= last && drain time
      in
      drain neg_infinity)

let prop_heap_lexicographic =
  (* Force time ties (times drawn from a 4-value set) so the [seq]
     tie-break of the flat 4-ary layout is exercised, via the
     allocation-free [min_time]/[pop] path. *)
  QCheck.Test.make ~name:"heap pops (time, seq) lexicographically" ~count:200
    QCheck.(list (int_bound 3))
    (fun times ->
      let h = Heap.create ~dummy:(-1) () in
      List.iteri
        (fun i t -> Heap.add h ~time:(float_of_int t) ~seq:i i)
        times;
      let rec drain last_t last_s =
        if Heap.is_empty h then true
        else begin
          let t = Heap.min_time h in
          let s = Heap.pop h in
          (t > last_t || (t = last_t && s > last_s)) && drain t s
        end
      in
      drain neg_infinity (-1))

let test_heap_releases_popped_values () =
  (* A popped entry must be collectable immediately: the event heap holds
     thunk closures (with captured continuations), and a vacated slot that
     still references the moved last entry would pin them for the life of
     the engine. *)
  let h = Heap.create ~dummy:(ref (-1)) () in
  let collected = ref 0 in
  let n = 8 in
  for i = 0 to n - 1 do
    let v = ref i in
    Gc.finalise (fun _ -> incr collected) v;
    Heap.add h ~time:(float_of_int i) ~seq:i v
  done;
  for _ = 1 to n do
    ignore (Heap.pop_min h)
  done;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check int) "all popped values collected" n !collected;
  Alcotest.(check int) "heap empty" 0 (Heap.size h)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:42 in
  let child = Rng.split a in
  let x = Rng.bits child and y = Rng.bits a in
  Alcotest.(check bool) "split diverges" true (x <> y)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds"
  done

let test_rng_float_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "out of bounds"
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:3 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_delay_advances_clock () =
  let eng = Engine.create () in
  let seen = ref [] in
  Engine.spawn eng (fun () ->
      Engine.delay 1.5;
      seen := (Engine.time (), "a") :: !seen;
      Engine.delay 0.5;
      seen := (Engine.time (), "b") :: !seen);
  Engine.run eng;
  (match List.rev !seen with
  | [ (t1, "a"); (t2, "b") ] ->
    check_float "first" 1.5 t1;
    check_float "second" 2.0 t2
  | _ -> Alcotest.fail "wrong events");
  check_float "final clock" 2.0 (Engine.now eng)

let test_engine_interleaving_deterministic () =
  let run_once () =
    let eng = Engine.create () in
    let order = Buffer.create 16 in
    let worker name dt reps =
      Engine.spawn eng (fun () ->
          for _ = 1 to reps do
            Engine.delay dt;
            Buffer.add_string order name
          done)
    in
    worker "a" 1.0 4;
    worker "b" 0.7 5;
    Engine.run eng;
    Buffer.contents order
  in
  Alcotest.(check string) "same schedule" (run_once ()) (run_once ())

let test_engine_simultaneous_fifo () =
  let eng = Engine.create () in
  let order = ref [] in
  for i = 0 to 4 do
    Engine.spawn eng (fun () ->
        Engine.delay 1.0;
        order := i :: !order)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "spawn order preserved at ties" [ 0; 1; 2; 3; 4 ]
    (List.rev !order)

let test_engine_fork () =
  let eng = Engine.create () in
  let result = ref 0 in
  Engine.spawn eng (fun () ->
      Engine.fork (fun () ->
          Engine.delay 2.0;
          result := !result + 10);
      Engine.delay 1.0;
      result := !result + 1);
  Engine.run eng;
  Alcotest.(check int) "both ran" 11 !result;
  check_float "clock at last event" 2.0 (Engine.now eng)

let test_engine_fiber_exception_propagates () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      Engine.delay 1.0;
      failwith "boom");
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      Engine.run eng)

let test_engine_multiple_failures_all_surface () =
  (* Two fibers failing at the same virtual instant must both surface:
     the engine drains the instant before raising, so the second failure
     is recorded instead of dying with the queue. *)
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      Engine.delay 1.0;
      failwith "first");
  Engine.spawn eng (fun () ->
      Engine.delay 1.0;
      failwith "second");
  (match Engine.run eng with
  | () -> Alcotest.fail "expected failures"
  | exception Engine.Multiple_failures [ Failure a; Failure b ] ->
    Alcotest.(check string) "primary first" "first" a;
    Alcotest.(check string) "secondary kept" "second" b
  | exception e -> raise e);
  Alcotest.(check int) "failures listed" 2 (List.length (Engine.failures eng))

let test_engine_suspend_resume () =
  let eng = Engine.create () in
  let resume_cell = ref None in
  let got = ref (-1.0) in
  Engine.spawn eng (fun () ->
      Engine.suspend (fun resume -> resume_cell := Some resume);
      got := Engine.time ());
  Engine.spawn eng (fun () ->
      Engine.delay 3.0;
      match !resume_cell with
      | Some resume -> resume ()
      | None -> Alcotest.fail "not parked");
  Engine.run eng;
  check_float "woken at waker's time" 3.0 !got

let test_engine_at_callback () =
  let eng = Engine.create () in
  let fired = ref (-1.0) in
  Engine.at eng ~time:4.2 (fun () -> fired := Engine.now eng);
  Engine.run eng;
  check_float "callback time" 4.2 !fired

(* ------------------------------------------------------------------ *)
(* Resources *)

let in_engine f =
  let eng = Engine.create () in
  Engine.spawn eng f;
  Engine.run eng;
  eng

let test_ivar_blocks_until_filled () =
  let iv = Resource.Ivar.create () in
  let got = ref None in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      let v = Resource.Ivar.read iv in
      got := Some (v, Engine.time ()));
  Engine.spawn eng (fun () ->
      Engine.delay 2.0;
      Resource.Ivar.fill iv 99);
  Engine.run eng;
  match !got with
  | Some (99, t) -> check_float "read at fill time" 2.0 t
  | _ -> Alcotest.fail "read failed"

let test_ivar_read_after_fill_immediate () =
  let iv = Resource.Ivar.create () in
  Resource.Ivar.fill iv "x";
  let _ = in_engine (fun () ->
      Alcotest.(check string) "immediate" "x" (Resource.Ivar.read iv)) in
  ()

let test_ivar_double_fill_rejected () =
  let iv = Resource.Ivar.create () in
  Resource.Ivar.fill iv 1;
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Resource.Ivar.fill iv 2)

let test_mailbox_fifo () =
  let mb = Resource.Mailbox.create () in
  let got = ref [] in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Resource.Mailbox.recv mb :: !got
      done);
  Engine.spawn eng (fun () ->
      Engine.delay 1.0;
      Resource.Mailbox.send mb "first";
      Resource.Mailbox.send mb "second";
      Engine.delay 1.0;
      Resource.Mailbox.send mb "third");
  Engine.run eng;
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ]
    (List.rev !got)

let test_fifo_resource_serializes () =
  let eng = Engine.create () in
  let fifo = Resource.Fifo.create () in
  let spans = ref [] in
  for i = 0 to 2 do
    Engine.spawn eng (fun () ->
        let _ = Resource.Fifo.use fifo 1.0 in
        spans := (i, Engine.time ()) :: !spans)
  done;
  Engine.run eng;
  (* Three users of a 1s resource finish at 1, 2, 3 in spawn order. *)
  Alcotest.(check (list (pair int (float 1e-9))))
    "serialized in fifo order"
    [ (0, 1.0); (1, 2.0); (2, 3.0) ]
    (List.rev !spans);
  check_float "busy time" 3.0 (Resource.Fifo.busy_time fifo)

let test_fifo_use_reports_wait () =
  let eng = Engine.create () in
  let fifo = Resource.Fifo.create () in
  let waits = ref [] in
  for _ = 0 to 2 do
    Engine.spawn eng (fun () ->
        let w = Resource.Fifo.use fifo 2.0 in
        waits := w :: !waits)
  done;
  Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "waits" [ 0.0; 2.0; 4.0 ]
    (List.sort compare !waits)

let test_semaphore_counting () =
  let eng = Engine.create () in
  let sem = Resource.Semaphore.create 2 in
  let finish_times = ref [] in
  for _ = 0 to 3 do
    Engine.spawn eng (fun () ->
        Resource.Semaphore.wait sem;
        Engine.delay 1.0;
        Resource.Semaphore.signal sem;
        finish_times := Engine.time () :: !finish_times)
  done;
  Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "two at a time" [ 1.0; 1.0; 2.0; 2.0 ]
    (List.sort compare !finish_times)

let test_gate_broadcast () =
  let eng = Engine.create () in
  let gate = Resource.Gate.create () in
  let woken = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn eng (fun () ->
        Resource.Gate.await gate;
        incr woken)
  done;
  Engine.spawn eng (fun () ->
      Engine.delay 1.0;
      Resource.Gate.open_gate gate);
  Engine.run eng;
  Alcotest.(check int) "all woken" 5 !woken;
  (* Await after open does not block. *)
  let eng2 = Engine.create () in
  Engine.spawn eng2 (fun () -> Resource.Gate.await gate);
  Engine.run eng2

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Profiler *)

module Profile = Carlos_obs.Profile

let test_profile_disabled_records_nothing () =
  (* Regression for the hot-path guards: with the profiler off, a full
     engine run (spawns, delays, suspend/resume via ivars) must record
     zero samples in every category. *)
  Profile.reset ();
  Profile.set_enabled false;
  let eng = Engine.create () in
  let iv = Resource.Ivar.create () in
  Engine.spawn eng (fun () ->
      Engine.delay 1.0;
      Resource.Ivar.fill iv 42);
  Engine.spawn eng (fun () ->
      ignore (Resource.Ivar.read iv);
      Engine.delay 0.5);
  Engine.run eng;
  List.iter
    (fun s ->
      Alcotest.(check int)
        (s.Profile.category ^ " count") 0 s.Profile.count;
      check_float (s.Profile.category ^ " seconds") 0.0 s.Profile.seconds)
    (Profile.snapshot ())

let test_profile_enabled_records_run () =
  Profile.reset ();
  Profile.set_enabled true;
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> Engine.delay 1.0);
  Engine.run eng;
  Profile.set_enabled false;
  let count cat =
    let s =
      List.find
        (fun s -> s.Profile.category = Profile.name cat)
        (Profile.snapshot ())
    in
    s.Profile.count
  in
  Alcotest.(check int) "one run" 1 (count Profile.Run);
  Alcotest.(check bool) "events recorded" true (count Profile.Event > 0);
  Alcotest.(check bool) "resumes recorded" true
    (count Profile.Fiber_resume > 0);
  Profile.reset ()

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "pop order" `Quick test_heap_order;
          Alcotest.test_case "tie break by seq" `Quick test_heap_tie_break;
          Alcotest.test_case "popped values released to gc" `Quick
            test_heap_releases_popped_values;
        ]
        @ qcheck [ prop_heap_sorted; prop_heap_lexicographic ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "shuffle permutes" `Quick
            test_rng_shuffle_permutation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delay advances clock" `Quick
            test_engine_delay_advances_clock;
          Alcotest.test_case "deterministic interleaving" `Quick
            test_engine_interleaving_deterministic;
          Alcotest.test_case "ties are fifo" `Quick
            test_engine_simultaneous_fifo;
          Alcotest.test_case "fork" `Quick test_engine_fork;
          Alcotest.test_case "fiber exception propagates" `Quick
            test_engine_fiber_exception_propagates;
          Alcotest.test_case "multiple failures all surface" `Quick
            test_engine_multiple_failures_all_surface;
          Alcotest.test_case "suspend/resume" `Quick
            test_engine_suspend_resume;
          Alcotest.test_case "at callback" `Quick test_engine_at_callback;
        ] );
      ( "profile",
        [
          Alcotest.test_case "disabled run records zero samples" `Quick
            test_profile_disabled_records_nothing;
          Alcotest.test_case "enabled run records samples" `Quick
            test_profile_enabled_records_run;
        ] );
      ( "resource",
        [
          Alcotest.test_case "ivar blocks until filled" `Quick
            test_ivar_blocks_until_filled;
          Alcotest.test_case "ivar immediate read" `Quick
            test_ivar_read_after_fill_immediate;
          Alcotest.test_case "ivar double fill" `Quick
            test_ivar_double_fill_rejected;
          Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "fifo serializes" `Quick
            test_fifo_resource_serializes;
          Alcotest.test_case "fifo reports wait" `Quick
            test_fifo_use_reports_wait;
          Alcotest.test_case "semaphore counting" `Quick
            test_semaphore_counting;
          Alcotest.test_case "gate broadcast" `Quick test_gate_broadcast;
        ] );
    ]
