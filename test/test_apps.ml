(* End-to-end application tests at reduced scale: every variant of every
   paper application must produce the correct answer at several cluster
   sizes and under every cost table (the cost tables reschedule everything,
   which historically exposed protocol races). *)

module System = Carlos.System
module Node = Carlos.Node
module Threads = Carlos.Threads
module Cost = Carlos_dsm.Cost
module Tsp = Carlos_apps.Tsp
module Qsort = Carlos_apps.Qsort
module Water = Carlos_apps.Water
module Grid = Carlos_apps.Grid

let tsp_params =
  { Tsp.default_params with Tsp.cities = 11; prefix_depth = 2; expand_frac = 0.3 }

let qs_params =
  { Qsort.default_params with Qsort.elements = 32 * 1024; threshold = 512 }

let water_params = { Water.default_params with Water.molecules = 64; steps = 2 }

let grid_params = { Grid.default_params with Grid.size = 32; iterations = 6 }

(* ------------------------------------------------------------------ *)

let test_tsp variant nodes () =
  let sys = System.create (System.default_config ~nodes) in
  let r = Tsp.run sys variant tsp_params in
  Alcotest.(check int) "optimal tour" (Tsp.solve_reference tsp_params) r.Tsp.best

let test_qsort ?(costs = Cost.default) variant nodes () =
  let cfg = { (Qsort.config ~nodes qs_params) with System.costs } in
  let sys = System.create cfg in
  let r = Qsort.run sys variant qs_params in
  Alcotest.(check bool) "sorted" true r.Qsort.sorted

let test_water variant nodes () =
  let sys = System.create (System.default_config ~nodes) in
  let r = Water.run sys variant water_params in
  if not r.Water.energy_ok then
    Alcotest.failf "energy %.9f vs reference %.9f" r.Water.energy
      (Water.reference_energy water_params)

let test_qsort_full_scale_all_costs () =
  (* The full 256K-element instance under each cost table; different
     schedules exercised different protocol paths during bring-up. *)
  List.iter
    (fun costs ->
      let p = Qsort.default_params in
      let cfg = { (Qsort.config ~nodes:4 p) with System.costs } in
      let r = Qsort.run (System.create cfg) Qsort.Lock p in
      Alcotest.(check bool) "sorted" true r.Qsort.sorted)
    [ Cost.default; Cost.treadmarks; Cost.fast_network ]

let test_tsp_determinism () =
  let run () =
    let sys = System.create (System.default_config ~nodes:3) in
    let r = Tsp.run sys Tsp.Hybrid tsp_params in
    (r.Tsp.best, r.Tsp.visited, r.Tsp.report.System.wall,
     r.Tsp.report.System.messages)
  in
  Alcotest.(check bool) "bit-identical reruns" true (run () = run ())

let test_water_message_counts () =
  (* The hybrid must send far fewer messages than the lock version (the
     paper's headline observation). *)
  let sys1 = System.create (System.default_config ~nodes:4) in
  let lock = Water.run sys1 Water.Lock water_params in
  let sys2 = System.create (System.default_config ~nodes:4) in
  let hybrid = Water.run sys2 Water.Hybrid water_params in
  Alcotest.(check bool) "hybrid sends fewer messages" true
    (hybrid.Water.report.System.messages
    < lock.Water.report.System.messages);
  Alcotest.(check bool) "hybrid is faster" true
    (hybrid.Water.report.System.wall < lock.Water.report.System.wall)

let test_water_under_datagram_loss () =
  (* The sliding-window protocol must make the whole stack correct even
     when the UDP stand-in drops datagrams. *)
  let cfg =
    { (System.default_config ~nodes:3) with System.loss = 0.05; rto = 0.02 }
  in
  let r = Water.run (System.create cfg) Water.Hybrid water_params in
  Alcotest.(check bool) "energy correct despite 5% loss" true r.Water.energy_ok

let test_qsort_under_datagram_loss () =
  let p = qs_params in
  let cfg =
    { (Qsort.config ~nodes:3 p) with System.loss = 0.03; rto = 0.02 }
  in
  let r = Qsort.run (System.create cfg) Qsort.Hybrid1 p in
  Alcotest.(check bool) "sorted despite 3% loss" true r.Qsort.sorted

let test_water_update_strategy () =
  (* The update/hybrid coherence strategies must preserve application
     results end-to-end. *)
  List.iter
    (fun strategy ->
      let cfg = { (System.default_config ~nodes:4) with System.strategy } in
      List.iter
        (fun variant ->
          let r = Water.run (System.create cfg) variant water_params in
          Alcotest.(check bool) "energy" true r.Water.energy_ok)
        [ Water.Lock; Water.Hybrid ])
    [ Carlos_dsm.Lrc_backend.Update; Carlos_dsm.Lrc_backend.Hybrid_update ]

let test_tsp_update_strategy () =
  List.iter
    (fun strategy ->
      let cfg = { (System.default_config ~nodes:3) with System.strategy } in
      let r = Tsp.run (System.create cfg) Tsp.Lock tsp_params in
      Alcotest.(check int) "optimal" (Tsp.solve_reference tsp_params) r.Tsp.best)
    [ Carlos_dsm.Lrc_backend.Update; Carlos_dsm.Lrc_backend.Hybrid_update ]

let test_qsort_update_strategy () =
  List.iter
    (fun strategy ->
      let cfg = { (Qsort.config ~nodes:4 qs_params) with System.strategy } in
      let r = Qsort.run (System.create cfg) Qsort.Hybrid1 qs_params in
      Alcotest.(check bool) "sorted" true r.Qsort.sorted)
    [ Carlos_dsm.Lrc_backend.Update; Carlos_dsm.Lrc_backend.Hybrid_update ]

let test_grid variant nodes () =
  let sys = System.create (Grid.config ~nodes grid_params) in
  let r = Grid.run sys variant grid_params in
  if not r.Grid.exact then
    Alcotest.failf "checksum %.12f vs reference %.12f" r.Grid.checksum
      (Grid.reference grid_params)

let test_grid_update_strategy () =
  List.iter
    (fun strategy ->
      let sys = System.create (Grid.config ~nodes:4 ~strategy grid_params) in
      let r = Grid.run sys Grid.Hybrid grid_params in
      Alcotest.(check bool) "exact" true r.Grid.exact)
    [ Carlos_dsm.Lrc_backend.Update; Carlos_dsm.Lrc_backend.Hybrid_update ]

let test_grid_domain_parallel_identical () =
  (* Domain-safety of the engine and obs layers: the same grid/lock
     simulation run concurrently in 4 domains must produce metric
     snapshots and trace exports byte-identical to a sequential run —
     the engine binding, profiler and twin pools are domain-local and
     each simulation owns its registry, so no cross-domain state leaks
     into the results. *)
  let run () =
    let sys = System.create (Grid.config ~nodes:4 grid_params) in
    let obs = Carlos.System.obs sys in
    Carlos_obs.Obs.set_tracing obs true;
    let r = Grid.run sys Grid.Barrier grid_params in
    let metrics =
      Format.asprintf "%a" Carlos_obs.Obs.pp_metrics
        (Carlos_obs.Obs.snapshot obs)
    in
    let trace = Format.asprintf "%a" Carlos_obs.Obs.pp_trace_jsonl obs in
    (r.Grid.checksum, metrics, trace)
  in
  let reference = run () in
  let domains = Array.init 4 (fun _ -> Domain.spawn run) in
  Array.iteri
    (fun i d ->
      let checksum, metrics, trace = Domain.join d in
      let ref_checksum, ref_metrics, ref_trace = reference in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "domain %d checksum" i)
        ref_checksum checksum;
      Alcotest.(check string)
        (Printf.sprintf "domain %d metrics" i)
        ref_metrics metrics;
      Alcotest.(check string)
        (Printf.sprintf "domain %d trace" i)
        ref_trace trace)
    domains

let test_grid_neighbour_sync_beats_barrier () =
  (* The hybrid's neighbour-only synchronization must not be slower than
     the global barrier. *)
  let sys1 = System.create (Grid.config ~nodes:4 grid_params) in
  let b = Grid.run sys1 Grid.Barrier grid_params in
  let sys2 = System.create (Grid.config ~nodes:4 grid_params) in
  let h = Grid.run sys2 Grid.Hybrid grid_params in
  Alcotest.(check bool) "both exact" true (b.Grid.exact && h.Grid.exact);
  Alcotest.(check bool) "hybrid not slower" true
    (h.Grid.report.System.wall <= b.Grid.report.System.wall *. 1.05)

(* ------------------------------------------------------------------ *)
(* Threads *)

let test_threads_join () =
  let sys = System.create (System.default_config ~nodes:1) in
  let counter = ref 0 in
  let (_ : System.report) =
    System.run sys (fun node ->
        let pool = Threads.create node in
        for _ = 1 to 5 do
          Threads.spawn pool (fun () ->
              Node.compute node 0.001;
              Node.flush_compute node;
              incr counter)
        done;
        Threads.join_all pool;
        Alcotest.(check int) "all threads ran before join returned" 5 !counter)
  in
  Alcotest.(check int) "count" 5 !counter

let test_threads_hide_latency () =
  (* Two threads each blocking on a remote fetch must finish faster than
     the same fetches done serially. *)
  let run ~threaded =
    let sys = System.create (System.default_config ~nodes:2) in
    let a = System.alloc sys ~align:4096 8 in
    let b = System.alloc sys ~align:4096 8 in
    let barrier = Carlos.Msg_barrier.create sys ~manager:0 ~name:"b" () in
    let report =
      System.run sys (fun node ->
          let shm = Node.shm node in
          if Node.id node = 0 then begin
            Carlos_vm.Shm.write_i64 shm a 1;
            Carlos_vm.Shm.write_i64 shm b 2
          end;
          Carlos.Msg_barrier.wait barrier node;
          if Node.id node = 1 then
            if threaded then begin
              let pool = Threads.create node in
              Threads.spawn pool (fun () ->
                  ignore (Carlos_vm.Shm.read_i64 shm a));
              Threads.spawn pool (fun () ->
                  ignore (Carlos_vm.Shm.read_i64 shm b));
              Threads.join_all pool
            end
            else begin
              ignore (Carlos_vm.Shm.read_i64 shm a);
              ignore (Carlos_vm.Shm.read_i64 shm b)
            end;
          Carlos.Msg_barrier.wait barrier node)
    in
    report.System.wall
  in
  let serial = run ~threaded:false and overlapped = run ~threaded:true in
  Alcotest.(check bool)
    (Printf.sprintf "overlapped %.4f < serial %.4f" overlapped serial)
    true (overlapped < serial)

let test_threads_yield () =
  let sys = System.create (System.default_config ~nodes:1) in
  let order = ref [] in
  let (_ : System.report) =
    System.run sys (fun node ->
        let pool = Threads.create node in
        Threads.spawn pool (fun () ->
            order := `A1 :: !order;
            Threads.yield pool;
            order := `A2 :: !order);
        Threads.spawn pool (fun () -> order := `B :: !order);
        Threads.join_all pool)
  in
  Alcotest.(check bool) "yield interleaves" true
    (List.rev !order = [ `A1; `B; `A2 ])

(* ------------------------------------------------------------------ *)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "apps"
    [
      ( "tsp",
        [
          quick "lock N=1" (test_tsp Tsp.Lock 1);
          quick "lock N=3" (test_tsp Tsp.Lock 3);
          quick "lock N=4" (test_tsp Tsp.Lock 4);
          quick "hybrid N=1" (test_tsp Tsp.Hybrid 1);
          quick "hybrid N=3" (test_tsp Tsp.Hybrid 3);
          quick "hybrid N=4" (test_tsp Tsp.Hybrid 4);
          quick "all-release N=4" (test_tsp Tsp.Hybrid_all_release 4);
          quick "determinism" test_tsp_determinism;
        ] );
      ( "qsort",
        [
          quick "lock N=1" (test_qsort Qsort.Lock 1);
          quick "lock N=3" (test_qsort Qsort.Lock 3);
          quick "lock N=4" (test_qsort Qsort.Lock 4);
          quick "hybrid-1 N=3" (test_qsort Qsort.Hybrid1 3);
          quick "hybrid-1 N=4" (test_qsort Qsort.Hybrid1 4);
          quick "hybrid-2 N=4" (test_qsort Qsort.Hybrid2 4);
          quick "no-forwarding N=4" (test_qsort Qsort.Hybrid_nf 4);
          quick "lock N=4 treadmarks costs"
            (test_qsort ~costs:Cost.treadmarks Qsort.Lock 4);
          quick "hybrid N=4 fast network"
            (test_qsort ~costs:Cost.fast_network Qsort.Hybrid1 4);
          Alcotest.test_case "full scale, all cost tables" `Slow
            test_qsort_full_scale_all_costs;
        ] );
      ( "water",
        [
          quick "lock N=1" (test_water Water.Lock 1);
          quick "lock N=3" (test_water Water.Lock 3);
          quick "lock N=4" (test_water Water.Lock 4);
          quick "hybrid N=1" (test_water Water.Hybrid 1);
          quick "hybrid N=3" (test_water Water.Hybrid 3);
          quick "hybrid N=4" (test_water Water.Hybrid 4);
          quick "all-release N=4" (test_water Water.Hybrid_all_release 4);
          quick "message counts" test_water_message_counts;
          quick "under datagram loss" test_water_under_datagram_loss;
          quick "update strategies" test_water_update_strategy;
        ] );
      ( "grid",
        [
          quick "barrier N=1" (test_grid Grid.Barrier 1);
          quick "barrier N=4" (test_grid Grid.Barrier 4);
          quick "hybrid N=2" (test_grid Grid.Hybrid 2);
          quick "hybrid N=4" (test_grid Grid.Hybrid 4);
          quick "hybrid under update strategies" test_grid_update_strategy;
          quick "neighbour sync vs barrier" test_grid_neighbour_sync_beats_barrier;
          quick "4 concurrent domains byte-identical"
            test_grid_domain_parallel_identical;
        ] );
      ( "robustness",
        [
          quick "qsort under loss" test_qsort_under_datagram_loss;
          quick "tsp update strategies" test_tsp_update_strategy;
          quick "qsort update strategies" test_qsort_update_strategy;
        ] );
      ( "threads",
        [
          quick "join_all" test_threads_join;
          quick "latency hiding" test_threads_hide_latency;
          quick "yield" test_threads_yield;
        ] );
    ]
