(* Tests for the simulated network stack: shared medium, datagram service,
   sliding-window reliable delivery. *)

module Engine = Carlos_sim.Engine
module Rng = Carlos_sim.Rng
module Medium = Carlos_net.Medium
module Datagram = Carlos_net.Datagram
module Sliding_window = Carlos_net.Sliding_window
module Obs = Carlos_obs.Obs

let check_float = Alcotest.(check (float 1e-9))

(* 10 Mbit/s in bytes per second, as in the paper's Ethernet. *)
let ethernet_bw = 1_250_000.0

let make_medium ?(nodes = 4) ?(latency = 1e-4) ?(bandwidth = ethernet_bw) eng =
  Medium.create eng ~nodes ~latency ~bandwidth

(* ------------------------------------------------------------------ *)
(* Medium *)

let test_medium_point_to_point_latency () =
  let eng = Engine.create () in
  let medium = make_medium eng in
  let arrival = ref (-1.0) in
  Medium.set_handler medium ~node:1 (fun ~src ~size:_ _payload ->
      Alcotest.(check int) "src" 0 src;
      arrival := Engine.now eng);
  Engine.spawn eng (fun () ->
      Medium.send medium ~src:0 ~dst:1 ~size:1250 "hello");
  Engine.run eng;
  (* 1250 bytes at 1.25 MB/s = 1 ms transmission + 0.1 ms latency. *)
  check_float "arrival time" 0.0011 !arrival

let test_medium_contention_serializes () =
  let eng = Engine.create () in
  let medium = make_medium eng in
  let arrivals = ref [] in
  Medium.set_handler medium ~node:3 (fun ~src ~size:_ _payload ->
      arrivals := (src, Engine.now eng) :: !arrivals);
  Engine.spawn eng (fun () ->
      Medium.send medium ~src:0 ~dst:3 ~size:1250 ();
      Medium.send medium ~src:1 ~dst:3 ~size:1250 ());
  Engine.run eng;
  (match List.rev !arrivals with
  | [ (0, t0); (1, t1) ] ->
    check_float "first frame" 0.0011 t0;
    (* Second frame waits for the wire: 2 ms transmission + latency. *)
    check_float "second frame" 0.0021 t1
  | _ -> Alcotest.fail "expected two arrivals");
  check_float "wire busy" 0.002 (Medium.wire_busy_time medium)

let test_medium_stats () =
  let eng = Engine.create () in
  let medium = make_medium eng in
  Medium.set_handler medium ~node:1 (fun ~src:_ ~size:_ _ -> ());
  Engine.spawn eng (fun () ->
      Medium.send medium ~src:0 ~dst:1 ~size:100 ();
      Medium.send medium ~src:0 ~dst:1 ~size:200 ());
  Engine.run eng;
  Alcotest.(check int) "frames" 2 (Medium.frames_sent medium);
  Alcotest.(check int) "bytes" 300 (Medium.bytes_sent medium);
  let util = Medium.utilization medium ~elapsed:1.0 in
  check_float "utilization" (300.0 /. ethernet_bw) util;
  (* Phase measurement is snapshot/diff of the registry, not a hidden
     reset: the cumulative counters are untouched. *)
  let before = Obs.snapshot (Medium.obs medium) in
  Engine.spawn eng (fun () -> Medium.send medium ~src:0 ~dst:1 ~size:50 ());
  Engine.run eng;
  let phase = Obs.diff ~earlier:before (Obs.snapshot (Medium.obs medium)) in
  (match
     Obs.find phase ~node:Obs.global_node ~layer:Obs.Net "medium.frames"
   with
  | Some (Obs.Counter_v n) -> Alcotest.(check int) "phase frames" 1 n
  | _ -> Alcotest.fail "medium.frames missing from diff");
  (match
     Obs.find phase ~node:Obs.global_node ~layer:Obs.Net "medium.bytes"
   with
  | Some (Obs.Counter_v n) -> Alcotest.(check int) "phase bytes" 50 n
  | _ -> Alcotest.fail "medium.bytes missing from diff");
  Alcotest.(check int) "cumulative frames" 3 (Medium.frames_sent medium)

let test_medium_pair_fifo () =
  (* Frames between one (src, dst) pair never reorder. *)
  let eng = Engine.create () in
  let medium = make_medium eng in
  let got = ref [] in
  Medium.set_handler medium ~node:2 (fun ~src:_ ~size:_ i ->
      got := i :: !got);
  Engine.spawn eng (fun () ->
      for i = 1 to 20 do
        Medium.send medium ~src:0 ~dst:2 ~size:(100 + i) i
      done);
  Engine.run eng;
  Alcotest.(check (list int)) "in order" (List.init 20 (fun i -> i + 1))
    (List.rev !got)

(* ------------------------------------------------------------------ *)
(* Datagram *)

let test_datagram_adds_headers () =
  let eng = Engine.create () in
  let medium = make_medium eng in
  let dg = Datagram.create medium () in
  let seen_size = ref 0 in
  Datagram.set_handler dg ~node:1 (fun ~src:_ ~size _ -> seen_size := size);
  Engine.spawn eng (fun () ->
      Datagram.send dg ~src:0 ~dst:1 ~payload_bytes:100 ());
  Engine.run eng;
  Alcotest.(check int) "handler sees payload size" 100 !seen_size;
  Alcotest.(check int) "wire sees headers"
    (100 + Datagram.header_bytes)
    (Medium.bytes_sent medium)

let test_datagram_loss () =
  let eng = Engine.create () in
  let medium = make_medium eng in
  let rng = Rng.create ~seed:11 in
  let dg = Datagram.create medium ~loss:0.5 ~rng () in
  let received = ref 0 in
  Datagram.set_handler dg ~node:1 (fun ~src:_ ~size:_ _ -> incr received);
  let total = 1000 in
  Engine.spawn eng (fun () ->
      for _ = 1 to total do
        Datagram.send dg ~src:0 ~dst:1 ~payload_bytes:10 ()
      done);
  Engine.run eng;
  Alcotest.(check int) "sent counted" total (Datagram.datagrams_sent dg);
  Alcotest.(check int) "received + dropped = sent" total
    (!received + Datagram.datagrams_dropped dg);
  if Datagram.datagrams_dropped dg < 300 || Datagram.datagrams_dropped dg > 700
  then Alcotest.fail "loss far from 50%"

let test_datagram_loss_requires_rng () =
  let eng = Engine.create () in
  let medium = make_medium eng in
  Alcotest.check_raises "rng required"
    (Invalid_argument "Datagram.create: loss requires an rng") (fun () ->
      ignore (Datagram.create medium ~loss:0.1 ()))

(* ------------------------------------------------------------------ *)
(* Sliding window *)

let make_sw_dg ?(loss = 0.0) ?(seed = 1) ?(window = 8) ?(rto = 0.05)
    ?(ack_every = 1) ?(ack_delay = 0.0) ?(legacy_rto = false) ?rto_margin eng =
  let medium = make_medium eng in
  let rng = Rng.create ~seed in
  let dg =
    if loss > 0.0 then Datagram.create medium ~loss ~rng ()
    else Datagram.create medium ()
  in
  let sw =
    Sliding_window.create ~ack_every ~ack_delay ~legacy_rto ?rto_margin eng dg
      ~window ~rto
  in
  (sw, dg)

let make_sw ?loss ?seed ?window ?rto ?ack_every ?ack_delay ?legacy_rto
    ?rto_margin eng =
  fst
    (make_sw_dg ?loss ?seed ?window ?rto ?ack_every ?ack_delay ?legacy_rto
       ?rto_margin eng)

let test_sw_basic_delivery () =
  let eng = Engine.create () in
  let sw = make_sw eng in
  let got = ref [] in
  Sliding_window.set_handler sw ~node:1 (fun ~src ~size v ->
      got := (src, size, v) :: !got);
  Engine.spawn eng (fun () ->
      Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:64 "a";
      Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:128 "b");
  Engine.run eng;
  Alcotest.(check (list (triple int int string)))
    "both delivered in order"
    [ (0, 64, "a"); (0, 128, "b") ]
    (List.rev !got);
  Alcotest.(check int) "no retransmissions" 0
    (Sliding_window.retransmissions sw)

let test_sw_window_limits_inflight () =
  let eng = Engine.create () in
  (* Window of 2: the 10 sends must still all arrive, in order. *)
  let sw = make_sw ~window:2 eng in
  let got = ref [] in
  Sliding_window.set_handler sw ~node:1 (fun ~src:_ ~size:_ v ->
      got := v :: !got);
  Engine.spawn eng (fun () ->
      for i = 1 to 10 do
        Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:32 i
      done);
  Engine.run eng;
  Alcotest.(check (list int)) "all delivered in order"
    (List.init 10 (fun i -> i + 1))
    (List.rev !got)

let run_loss_scenario ?(legacy_rto = false) ~loss ~seed ~count () =
  let eng = Engine.create () in
  let sw = make_sw ~loss ~seed ~window:4 ~rto:0.02 ~legacy_rto eng in
  let got = ref [] in
  Sliding_window.set_handler sw ~node:2 (fun ~src:_ ~size:_ v ->
      got := v :: !got);
  Engine.spawn eng (fun () ->
      for i = 1 to count do
        Sliding_window.send sw ~src:0 ~dst:2 ~payload_bytes:100 i
      done);
  Engine.run eng;
  List.rev !got

let test_sw_recovers_from_loss () =
  let delivered = run_loss_scenario ~loss:0.2 ~seed:5 ~count:50 () in
  Alcotest.(check (list int)) "exactly once, in order"
    (List.init 50 (fun i -> i + 1))
    delivered

let prop_sw_exactly_once_in_order =
  QCheck.Test.make
    ~name:"sliding window: exactly-once in-order under loss (adaptive rto)"
    ~count:30
    QCheck.(pair (int_range 1 1000) (int_range 1 60))
    (fun (seed, count) ->
      let delivered = run_loss_scenario ~loss:0.3 ~seed ~count () in
      delivered = List.init count (fun i -> i + 1))

let prop_sw_legacy_exactly_once_in_order =
  QCheck.Test.make
    ~name:"sliding window: exactly-once in-order under loss (legacy rto)"
    ~count:30
    QCheck.(pair (int_range 1 1000) (int_range 1 60))
    (fun (seed, count) ->
      let delivered =
        run_loss_scenario ~legacy_rto:true ~loss:0.3 ~seed ~count ()
      in
      delivered = List.init count (fun i -> i + 1))

let test_sw_bidirectional () =
  let eng = Engine.create () in
  let sw = make_sw ~loss:0.15 ~seed:9 eng in
  let got0 = ref [] and got1 = ref [] in
  Sliding_window.set_handler sw ~node:0 (fun ~src:_ ~size:_ v ->
      got0 := v :: !got0);
  Sliding_window.set_handler sw ~node:1 (fun ~src:_ ~size:_ v ->
      got1 := v :: !got1);
  Engine.spawn eng (fun () ->
      for i = 1 to 20 do
        Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:40 i;
        Sliding_window.send sw ~src:1 ~dst:0 ~payload_bytes:40 (-i)
      done);
  Engine.run eng;
  Alcotest.(check (list int)) "0 -> 1" (List.init 20 (fun i -> i + 1))
    (List.rev !got1);
  Alcotest.(check (list int)) "1 -> 0" (List.init 20 (fun i -> -(i + 1)))
    (List.rev !got0)

let test_sw_independent_pairs () =
  (* Loss on one connection must not delay another pair's messages
     indefinitely; each pair has its own sequence space. *)
  let eng = Engine.create () in
  let sw = make_sw ~loss:0.0 eng in
  let got = ref [] in
  Sliding_window.set_handler sw ~node:3 (fun ~src ~size:_ v ->
      got := (src, v) :: !got);
  Engine.spawn eng (fun () ->
      Sliding_window.send sw ~src:0 ~dst:3 ~payload_bytes:10 "a0";
      Sliding_window.send sw ~src:1 ~dst:3 ~payload_bytes:10 "b0";
      Sliding_window.send sw ~src:0 ~dst:3 ~payload_bytes:10 "a1");
  Engine.run eng;
  let from src =
    List.filter_map (fun (s, v) -> if s = src then Some v else None)
      (List.rev !got)
  in
  Alcotest.(check (list string)) "from 0" [ "a0"; "a1" ] (from 0);
  Alcotest.(check (list string)) "from 1" [ "b0" ] (from 1)

let test_sw_stats () =
  let eng = Engine.create () in
  let sw = make_sw eng in
  Sliding_window.set_handler sw ~node:1 (fun ~src:_ ~size:_ () -> ());
  Engine.spawn eng (fun () ->
      Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:10 ();
      Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:10 ());
  Engine.run eng;
  Alcotest.(check int) "sent" 2 (Sliding_window.messages_sent sw);
  Alcotest.(check int) "delivered" 2 (Sliding_window.messages_delivered sw);
  Alcotest.(check bool) "acks flowed" true (Sliding_window.acks_sent sw > 0);
  let before = Obs.snapshot (Sliding_window.obs sw) in
  Engine.spawn eng (fun () ->
      Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:10 ());
  Engine.run eng;
  let phase =
    Obs.diff ~earlier:before (Obs.snapshot (Sliding_window.obs sw))
  in
  (match Obs.find phase ~node:Obs.global_node ~layer:Obs.Net "sw.sent" with
  | Some (Obs.Counter_v n) -> Alcotest.(check int) "phase sent" 1 n
  | _ -> Alcotest.fail "sw.sent missing from diff");
  Alcotest.(check int) "cumulative sent" 3 (Sliding_window.messages_sent sw)

(* ------------------------------------------------------------------ *)
(* Delayed cumulative acks *)

let test_sw_delayed_acks_coalesce () =
  let eng = Engine.create () in
  let sw = make_sw ~ack_every:4 ~ack_delay:0.005 eng in
  let got = ref [] in
  Sliding_window.set_handler sw ~node:1 (fun ~src:_ ~size:_ v ->
      got := v :: !got);
  Engine.spawn eng (fun () ->
      for i = 1 to 12 do
        Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:32 i
      done);
  Engine.run eng;
  Alcotest.(check (list int)) "all delivered in order"
    (List.init 12 (fun i -> i + 1))
    (List.rev !got);
  Alcotest.(check bool) "fewer acks than frames" true
    (Sliding_window.acks_sent sw < 12);
  Alcotest.(check int) "every skipped ack is counted as coalesced" 12
    (Sliding_window.acks_sent sw + Sliding_window.acks_coalesced sw);
  Alcotest.(check int) "no retransmissions" 0
    (Sliding_window.retransmissions sw)

let test_sw_ack_delay_flushes_partial_batch () =
  (* A lone frame never reaches the ack_every threshold; the ack-delay
     timer must flush the owed ack before the sender's RTO fires. *)
  let eng = Engine.create () in
  let sw = make_sw ~ack_every:4 ~ack_delay:0.005 ~rto:0.05 eng in
  let got = ref 0 in
  Sliding_window.set_handler sw ~node:1 (fun ~src:_ ~size:_ () -> incr got);
  Engine.spawn eng (fun () ->
      Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:32 ());
  Engine.run eng;
  Alcotest.(check int) "delivered" 1 !got;
  Alcotest.(check int) "exactly one ack" 1 (Sliding_window.acks_sent sw);
  Alcotest.(check int) "timer never fired a retransmission" 0
    (Sliding_window.retransmissions sw)

let test_sw_ack_delay_validation () =
  let eng = Engine.create () in
  Alcotest.check_raises "threshold needs a timer"
    (Invalid_argument "Sliding_window.create: ack_every > 1 needs ack_delay > 0")
    (fun () -> ignore (make_sw ~ack_every:4 eng));
  Alcotest.check_raises "delay must undercut rto"
    (Invalid_argument "Sliding_window.create: ack_delay must stay below rto")
    (fun () -> ignore (make_sw ~ack_every:4 ~ack_delay:0.1 ~rto:0.05 eng))

let run_delayed_ack_loss_scenario ~loss ~seed ~count =
  let eng = Engine.create () in
  let sw =
    make_sw ~loss ~seed ~window:4 ~rto:0.02 ~ack_every:4 ~ack_delay:0.004 eng
  in
  let got = ref [] in
  Sliding_window.set_handler sw ~node:2 (fun ~src:_ ~size:_ v ->
      got := v :: !got);
  Engine.spawn eng (fun () ->
      for i = 1 to count do
        Sliding_window.send sw ~src:0 ~dst:2 ~payload_bytes:100 i
      done);
  Engine.run eng;
  List.rev !got

let prop_sw_delayed_acks_exactly_once_in_order =
  QCheck.Test.make
    ~name:"sliding window: delayed acks keep exactly-once in-order under loss"
    ~count:30
    QCheck.(pair (int_range 1 1000) (int_range 1 60))
    (fun (seed, count) ->
      (* Engine.run returning (the scenario quiescing) with every message
         delivered exactly once, in order, is the whole contract: no ack
         left owed forever, no duplicate delivery from a retransmission. *)
      let delivered = run_delayed_ack_loss_scenario ~loss:0.3 ~seed ~count in
      delivered = List.init count (fun i -> i + 1))

(* ------------------------------------------------------------------ *)
(* Adaptive ARQ *)

let test_sw_big_frame_not_retransmitted () =
  (* A 500 KB frame needs 0.4 s of wire time at 1.25 MB/s — far beyond
     the 0.05 s base rto.  The adaptive serialization floor must wait for
     it; the legacy fixed timeout spuriously retransmits the whole frame
     several times (and each wasted copy further delays the ack). *)
  let run ~legacy_rto =
    let eng = Engine.create () in
    let sw = make_sw ~rto:0.05 ~legacy_rto eng in
    Sliding_window.set_handler sw ~node:1 (fun ~src:_ ~size:_ () -> ());
    Engine.spawn eng (fun () ->
        Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:500_000 ());
    Engine.run eng;
    sw
  in
  let adaptive = run ~legacy_rto:false in
  Alcotest.(check int) "delivered" 1
    (Sliding_window.messages_delivered adaptive);
  Alcotest.(check int) "adaptive: serialization time is not a timeout" 0
    (Sliding_window.retransmissions adaptive);
  let legacy = run ~legacy_rto:true in
  Alcotest.(check bool) "legacy: fixed rto fires spuriously" true
    (Sliding_window.retransmissions legacy > 0);
  Alcotest.(check bool) "legacy: receiver saw wasted duplicate copies" true
    (Sliding_window.spurious_retransmits legacy > 0);
  Alcotest.(check int) "adaptive: no duplicates reached the receiver" 0
    (Sliding_window.spurious_retransmits adaptive)

let test_sw_carrier_sense_defers_for_cross_traffic () =
  (* The serialization floor only covers this connection's own in-flight
     bytes; a 250 KB burst from another node pair holds the shared wire
     for 0.2 s, far beyond the 5 ms rto of the small 0->1 frame queued
     behind it.  Carrier sense must defer the expired timer past the
     backlog instead of retransmitting into the queue; the legacy sender
     re-sends blindly into it. *)
  let run ~legacy_rto =
    let eng = Engine.create () in
    let sw = make_sw ~rto:0.005 ~legacy_rto eng in
    Sliding_window.set_handler sw ~node:1 (fun ~src:_ ~size:_ () -> ());
    Sliding_window.set_handler sw ~node:3 (fun ~src:_ ~size:_ () -> ());
    Engine.spawn eng (fun () ->
        Sliding_window.send sw ~src:2 ~dst:3 ~payload_bytes:250_000 ();
        Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:100 ());
    Engine.run eng;
    sw
  in
  let adaptive = run ~legacy_rto:false in
  Alcotest.(check int) "both delivered" 2
    (Sliding_window.messages_delivered adaptive);
  Alcotest.(check int) "adaptive: no retransmission into the backlog" 0
    (Sliding_window.retransmissions adaptive);
  Alcotest.(check bool) "adaptive: the expired timer was deferred" true
    (Sliding_window.rto_deferrals adaptive > 0);
  let legacy = run ~legacy_rto:true in
  Alcotest.(check bool) "legacy: retransmits into the busy wire" true
    (Sliding_window.retransmissions legacy > 0)

let test_sw_fast_retransmit () =
  (* Drop exactly the second data frame; the four frames behind it each
     trigger an immediate duplicate ack, and the third duplicate must
     resend the gap well before the (deliberately huge) 5 s rto. *)
  let eng = Engine.create () in
  let sw, dg = make_sw_dg ~rto:5.0 ~window:8 eng in
  let got = ref [] in
  Sliding_window.set_handler sw ~node:1 (fun ~src:_ ~size:_ v ->
      got := v :: !got);
  Engine.spawn eng (fun () ->
      (* The six sends all hit the datagram service synchronously, so
         relative send index 1 is exactly the seq-1 data frame. *)
      Datagram.inject_drops dg [ 1 ];
      for i = 1 to 6 do
        Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:100 i
      done);
  Engine.run eng;
  Alcotest.(check (list int)) "all delivered in order"
    (List.init 6 (fun i -> i + 1))
    (List.rev !got);
  Alcotest.(check int) "one fast retransmit" 1
    (Sliding_window.fast_retransmits sw);
  Alcotest.(check int) "the rto timer never fired" 0
    (Sliding_window.rto_timeouts sw);
  Alcotest.(check int) "no other retransmissions" 1
    (Sliding_window.retransmissions sw)

let test_sw_backoff_persists_across_retransmitted_acks () =
  (* Reproduces the pre-PR8 reset bug.  Phase 1 loses the ack of frame 1
     twice, so the only ack that ever arrives acknowledges a frame that
     was retransmitted — under Karn's rule that says nothing about the
     wire having recovered, and backoff must survive it (it reached 4x).
     Phase 2 then sends a 25 KB frame whose ack legitimately takes
     ~0.02 s, above the 0.01 s base rto but below the persisted 0.04 s.
     The adaptive sender waits and retransmits nothing; the legacy
     sender — backoff reset to 1x by the phase-1 ack — times out
     spuriously (twice: the wasted copy delays the real ack past the
     next backed-off timeout too).  [rto_margin = 0] disables the
     serialization floor so only backoff persistence is under test. *)
  let run ~legacy_rto =
    let eng = Engine.create () in
    let sw, dg = make_sw_dg ~rto:0.01 ~rto_margin:0.0 ~legacy_rto eng in
    Sliding_window.set_handler sw ~node:1 (fun ~src:_ ~size:_ () -> ());
    Engine.spawn eng (fun () ->
        (* Relative datagram indices: 0 = frame 1, 1 = its ack (drop),
           2 = first retransmitted copy, 3 = its re-ack (drop),
           4 = second copy, 5 = its re-ack (delivered). *)
        Datagram.inject_drops dg [ 1; 3 ];
        Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:100 ());
    Engine.at eng ~time:1.0 (fun () ->
        Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:25_000 ());
    Engine.run eng;
    sw
  in
  let adaptive = run ~legacy_rto:false in
  let legacy = run ~legacy_rto:true in
  Alcotest.(check int) "both delivered (adaptive)" 2
    (Sliding_window.messages_delivered adaptive);
  Alcotest.(check int) "both delivered (legacy)" 2
    (Sliding_window.messages_delivered legacy);
  Alcotest.(check int) "adaptive: phase-1 recovery only" 2
    (Sliding_window.retransmissions adaptive);
  Alcotest.(check bool) "legacy: reset backoff re-probes too early" true
    (Sliding_window.retransmissions legacy > 2);
  Alcotest.(check int)
    "karn: no rtt sample was ever taken from a retransmitted frame" 1
    (Sliding_window.rtt_samples adaptive)

let test_sw_rtt_estimator_converges () =
  (* A steady request stream on a quiet wire: the estimator must collect
     samples and never fire a retransmission (acks return in ~0.3 ms,
     three orders below the 0.1 s base rto). *)
  let eng = Engine.create () in
  let sw = make_sw ~rto:0.1 eng in
  Sliding_window.set_handler sw ~node:1 (fun ~src:_ ~size:_ () -> ());
  for i = 0 to 19 do
    Engine.at eng
      ~time:(0.01 *. float_of_int i)
      (fun () -> Sliding_window.send sw ~src:0 ~dst:1 ~payload_bytes:200 ())
  done;
  Engine.run eng;
  Alcotest.(check int) "all delivered" 20
    (Sliding_window.messages_delivered sw);
  Alcotest.(check int) "a sample per fresh ack" 20
    (Sliding_window.rtt_samples sw);
  Alcotest.(check int) "no retransmissions" 0
    (Sliding_window.retransmissions sw)

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "net"
    [
      ( "medium",
        [
          Alcotest.test_case "latency + transmission" `Quick
            test_medium_point_to_point_latency;
          Alcotest.test_case "contention serializes" `Quick
            test_medium_contention_serializes;
          Alcotest.test_case "stats" `Quick test_medium_stats;
          Alcotest.test_case "per-pair fifo" `Quick test_medium_pair_fifo;
        ] );
      ( "datagram",
        [
          Alcotest.test_case "headers" `Quick test_datagram_adds_headers;
          Alcotest.test_case "loss" `Quick test_datagram_loss;
          Alcotest.test_case "loss requires rng" `Quick
            test_datagram_loss_requires_rng;
        ] );
      ( "sliding-window",
        [
          Alcotest.test_case "basic delivery" `Quick test_sw_basic_delivery;
          Alcotest.test_case "window limit" `Quick
            test_sw_window_limits_inflight;
          Alcotest.test_case "recovers from loss" `Quick
            test_sw_recovers_from_loss;
          Alcotest.test_case "bidirectional under loss" `Quick
            test_sw_bidirectional;
          Alcotest.test_case "independent pairs" `Quick
            test_sw_independent_pairs;
          Alcotest.test_case "stats" `Quick test_sw_stats;
          Alcotest.test_case "delayed acks coalesce" `Quick
            test_sw_delayed_acks_coalesce;
          Alcotest.test_case "ack delay flushes partial batch" `Quick
            test_sw_ack_delay_flushes_partial_batch;
          Alcotest.test_case "ack delay validation" `Quick
            test_sw_ack_delay_validation;
        ]
        @ qcheck
            [
              prop_sw_exactly_once_in_order;
              prop_sw_legacy_exactly_once_in_order;
              prop_sw_delayed_acks_exactly_once_in_order;
            ] );
      ( "adaptive-arq",
        [
          Alcotest.test_case "serialization floor beats fixed rto" `Quick
            test_sw_big_frame_not_retransmitted;
          Alcotest.test_case "carrier sense defers for cross traffic" `Quick
            test_sw_carrier_sense_defers_for_cross_traffic;
          Alcotest.test_case "dup-ack fast retransmit" `Quick
            test_sw_fast_retransmit;
          Alcotest.test_case "backoff persists across retransmitted acks"
            `Quick test_sw_backoff_persists_across_retransmitted_acks;
          Alcotest.test_case "rtt estimator converges" `Quick
            test_sw_rtt_estimator_converges;
        ] );
    ]
