(* Wire-byte taxonomy tests: every byte the network carried (or dropped)
   must be attributed to exactly one protocol component, on every
   backend, under every annotation mix, and under datagram loss with
   retransmissions.  The conservation identity is

     sum(cost.* components) = medium.bytes + datagram.dropped_bytes

   checked three ways: directly ([Cost.conserved]), through the online
   auditor (which records a cost-conservation violation at end of run),
   and as a QCheck property over random lossy configurations. *)

module System = Carlos.System
module Audit = Carlos_audit.Audit
module Obs = Carlos_obs.Obs
module Cost = Carlos_obs.Cost
module Backend = Carlos_dsm.Backend
module Tsp = Carlos_apps.Tsp
module Qsort = Carlos_apps.Qsort
module Water = Carlos_apps.Water
module Grid = Carlos_apps.Grid

let tsp_params =
  { Tsp.default_params with Tsp.cities = 11; prefix_depth = 2; expand_frac = 0.3 }

let qs_params =
  { Qsort.default_params with Qsort.elements = 32 * 1024; threshold = 512 }

let water_params = { Water.default_params with Water.molecules = 64; steps = 2 }

let grid_params = { Grid.default_params with Grid.size = 32; iterations = 6 }

(* The gate matrix: app x variant, each runnable on a given backend. *)
let apps =
  [
    ( "grid/lock",
      (fun nodes -> Grid.config ~nodes grid_params),
      fun sys ->
        let r = Grid.run sys Grid.Barrier grid_params in
        r.Grid.exact );
    ( "grid/hybrid",
      (fun nodes -> Grid.config ~nodes grid_params),
      fun sys ->
        let r = Grid.run sys Grid.Hybrid grid_params in
        r.Grid.exact );
    ( "tsp/lock",
      (fun nodes -> System.default_config ~nodes),
      fun sys ->
        let r = Tsp.run sys Tsp.Lock tsp_params in
        r.Tsp.best = Tsp.solve_reference tsp_params );
    ( "tsp/hybrid",
      (fun nodes -> System.default_config ~nodes),
      fun sys ->
        let r = Tsp.run sys Tsp.Hybrid tsp_params in
        r.Tsp.best = Tsp.solve_reference tsp_params );
    ( "qsort/hybrid",
      (fun nodes -> Qsort.config ~nodes qs_params),
      fun sys ->
        let r = Qsort.run sys Qsort.Hybrid1 qs_params in
        r.Qsort.sorted );
    ( "water/lock",
      (fun nodes -> System.default_config ~nodes),
      fun sys ->
        let r = Water.run sys Water.Lock water_params in
        r.Water.energy_ok );
  ]

let check_conserved ~name obs =
  let total = Cost.total obs and wire = Cost.wire_total obs in
  if total <> wire then
    Alcotest.failf "%s: components sum %d <> wire total %d (delta %d)" name
      total wire (total - wire);
  Alcotest.(check bool) (name ^ ": some bytes attributed") true (total > 0);
  (* The breakdown lists every component once, in index order, and sums
     to the same total. *)
  let b = Cost.breakdown obs in
  Alcotest.(check int)
    (name ^ ": breakdown complete")
    Cost.count (List.length b);
  Alcotest.(check int)
    (name ^ ": breakdown sums to total")
    total
    (List.fold_left (fun acc (_, v) -> acc + v) 0 b)

let test_conservation_matrix () =
  List.iter
    (fun backend ->
      List.iter
        (fun (name, config, run) ->
          let name = name ^ "@" ^ Backend.kind_to_string backend in
          let cfg = { (config 4) with System.backend } in
          let sys = System.create ~audit:true cfg in
          Alcotest.(check bool) (name ^ ": app ok") true (run sys);
          check_conserved ~name (System.obs sys);
          match System.auditor sys with
          | None -> Alcotest.fail "auditor requested but absent"
          | Some a ->
            Alcotest.(check int)
              (name ^ ": audit clean (incl. cost-conservation)")
              0 (Audit.violation_count a))
        apps)
    Backend.all_kinds

let test_attribution_classes () =
  (* A barrier app on LRC touches diffs, clocks, write notices, barrier
     protocol and headers — and nothing in the lock or app classes. *)
  let sys = System.create (Grid.config ~nodes:4 grid_params) in
  let r = Grid.run sys Grid.Barrier grid_params in
  Alcotest.(check bool) "exact" true r.Grid.exact;
  let obs = System.obs sys in
  let v c = Cost.read obs c in
  List.iter
    (fun (cname, c) ->
      Alcotest.(check bool) (cname ^ " attributed") true (v c > 0))
    [
      ("vc_entries", Cost.Vc_entries);
      ("write_notices", Cost.Write_notices);
      ("diff_payload", Cost.Diff_payload);
      ("barrier_proto", Cost.Barrier_proto);
      ("ack", Cost.Ack);
      ("am_header", Cost.Am_header);
      ("frame_header", Cost.Frame_header);
    ];
  Alcotest.(check int) "no lock traffic" 0 (v Cost.Lock_proto);
  (* Every active message carries exactly 16 header bytes, every frame
     exactly 42. *)
  Alcotest.(check int) "am_header multiple of 16" 0 (v Cost.Am_header mod 16);
  Alcotest.(check int)
    "frame_header = 42 * frames"
    (42 * Obs.counter_value obs ~node:Obs.global_node ~layer:Obs.Net
            "medium.frames")
    (v Cost.Frame_header);
  (* No loss configured: nothing dropped, nothing retransmitted. *)
  Alcotest.(check int) "no retransmits" 0 (v Cost.Retransmit)

(* Conservation must survive datagram loss: dropped frames are billed to
   their components (plus dropped_bytes on the wire side) and
   head-of-line retransmissions are attributed as [Retransmit]. *)
let prop_conservation_under_loss =
  QCheck.Test.make ~count:8 ~name:"conservation under datagram loss"
    QCheck.(
      make
        Gen.(
          triple (int_range 2 4) (float_range 0.02 0.08) (int_range 0 1000)))
    (fun (nodes, loss, seed) ->
      let cfg =
        {
          (System.default_config ~nodes) with
          System.loss;
          rto = 0.02;
          seed;
        }
      in
      let sys = System.create cfg in
      let r = Water.run sys Water.Hybrid water_params in
      let obs = System.obs sys in
      if not r.Water.energy_ok then
        QCheck.Test.fail_report "application failed under loss";
      if Cost.total obs <> Cost.wire_total obs then
        QCheck.Test.fail_reportf "components %d <> wire %d" (Cost.total obs)
          (Cost.wire_total obs);
      (* At these loss rates the run must actually have exercised the
         drop path, or the property is vacuous. *)
      let dropped =
        Obs.counter_value obs ~node:Obs.global_node ~layer:Obs.Net
          "datagram.dropped_bytes"
      in
      if dropped = 0 then QCheck.Test.fail_report "no datagrams dropped";
      if Cost.read obs Cost.Retransmit = 0 then
        QCheck.Test.fail_report "no retransmissions observed";
      true)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "cost"
    [
      ( "conservation",
        Alcotest.test_case "backend x app matrix (audited)" `Quick
          test_conservation_matrix
        :: qcheck [ prop_conservation_under_loss ] );
      ( "attribution",
        [ Alcotest.test_case "component classes" `Quick
            test_attribution_classes ] );
    ]
