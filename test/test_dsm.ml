(* Tests for the lazy-release-consistency engine, exercised through a
   loopback transport that wires several Lrc instances together with direct
   function calls (no simulated network, no engine).  This isolates the
   protocol logic: write trapping, interval bookkeeping, piggyback
   construction, acceptance, diff fetching, the multiple-writer protocol,
   the non-transitive path, and metadata garbage collection. *)

module Region = Carlos_vm.Region
module Page = Carlos_vm.Page
module Page_table = Carlos_vm.Page_table
module Shm = Carlos_vm.Shm
module Vc = Carlos_dsm.Vc
module Interval = Carlos_dsm.Interval
module Cost = Carlos_dsm.Cost
module Lrc = Carlos_dsm.Lrc_backend

type cluster = {
  region : Region.t;
  shms : Shm.t array;
  lrcs : Lrc.t array;
  charged : float ref;
}

let make_cluster ?strategy ?batch_fetch ?diff_cache n =
  let region =
    Region.create ~page_size:256 ~private_bytes:256 ~noncoherent_bytes:256
      ~coherent_pages:8 ()
  in
  let noncoherent = Bytes.make 256 '\000' in
  let shms = Array.init n (fun _ -> Shm.create ~region ~noncoherent ()) in
  let charged = ref 0.0 in
  let charge dt = charged := !charged +. dt in
  let lrcs =
    Array.init n (fun me ->
        Lrc.create ~nodes:n ~me
          ~page_table:(Shm.page_table shms.(me))
          ~costs:Cost.default ~charge ?strategy ?batch_fetch ?diff_cache ())
  in
  let transport =
    {
      Lrc.fetch_diffs = (fun ~dst req -> Lrc.serve_diffs lrcs.(dst) req);
      fetch_intervals =
        (fun ~dst ~have -> Lrc.serve_intervals lrcs.(dst) ~have);
      fetch_page = (fun ~dst ~page -> Lrc.serve_page lrcs.(dst) ~page);
    }
  in
  Array.iter (fun l -> Lrc.set_transport l transport) lrcs;
  { region; shms; lrcs; charged }

(* Address of slot [i] (8 bytes each) on coherent page [page]. *)
let slot c ~page i = Region.coherent_addr c.region ~page ~offset:(8 * i)

(* Model a synchronizing message from [src] to [dst]. *)
let release c ~src ~dst =
  let pb = Lrc.make_piggyback c.lrcs.(src) ~receiver:dst ~nontransitive:false in
  Lrc.accept c.lrcs.(dst) [ pb ];
  pb

let _release_nt c ~src ~dst =
  let pb = Lrc.make_piggyback c.lrcs.(src) ~receiver:dst ~nontransitive:true in
  Lrc.accept c.lrcs.(dst) [ pb ];
  pb

let page_state c ~node ~page =
  Page.state (Page_table.page (Shm.page_table c.shms.(node)) page)

(* ------------------------------------------------------------------ *)

let test_basic_propagation () =
  let c = make_cluster 2 in
  let a = slot c ~page:0 0 in
  Shm.write_i64 c.shms.(0) a 42;
  let _ = release c ~src:0 ~dst:1 in
  Alcotest.(check int) "value visible after release/accept" 42
    (Shm.read_i64 c.shms.(1) a);
  Alcotest.(check bool) "consistency work was charged" true (!(c.charged) > 0.0)

let test_write_notice_invalidates () =
  let c = make_cluster 2 in
  let a = slot c ~page:2 0 in
  Shm.write_i64 c.shms.(0) a 7;
  let _ = release c ~src:0 ~dst:1 in
  Alcotest.(check bool) "page 2 invalid at receiver before access" true
    (page_state c ~node:1 ~page:2 = Page.Invalid);
  Alcotest.(check bool) "other pages untouched" true
    (page_state c ~node:1 ~page:3 = Page.Read_only)

let test_vc_advances () =
  let c = make_cluster 3 in
  let a = slot c ~page:0 0 in
  Shm.write_i64 c.shms.(0) a 1;
  let pb = release c ~src:0 ~dst:1 in
  Alcotest.(check bool) "receiver dominates required" true
    (Vc.dominates (Lrc.vc c.lrcs.(1)) pb.Lrc.required_vc);
  Alcotest.(check int) "one interval from node 0" 1
    (Vc.get (Lrc.vc c.lrcs.(1)) 0)

let test_no_fault_for_own_data () =
  let c = make_cluster 2 in
  let a = slot c ~page:1 0 in
  Shm.write_i64 c.shms.(0) a 5;
  Alcotest.(check int) "own read" 5 (Shm.read_i64 c.shms.(0) a);
  let pt = Shm.page_table c.shms.(0) in
  Alcotest.(check int) "no read faults" 0 (Page_table.read_faults pt);
  Alcotest.(check int) "one write fault" 1 (Page_table.write_faults pt)

let test_transitivity () =
  let c = make_cluster 3 in
  let a = slot c ~page:0 0 and b = slot c ~page:1 0 in
  Shm.write_i64 c.shms.(0) a 10;
  let _ = release c ~src:0 ~dst:1 in
  Shm.write_i64 c.shms.(1) b 20;
  let _ = release c ~src:1 ~dst:2 in
  (* Happened-before is transitive: node 2 must see node 0's write. *)
  Alcotest.(check int) "transitive value" 10 (Shm.read_i64 c.shms.(2) a);
  Alcotest.(check int) "direct value" 20 (Shm.read_i64 c.shms.(2) b)

let test_tailored_piggyback () =
  let c = make_cluster 2 in
  let a = slot c ~page:0 0 in
  Shm.write_i64 c.shms.(0) a 1;
  let pb1 = release c ~src:0 ~dst:1 in
  Alcotest.(check int) "first release carries the interval" 1
    (List.length pb1.Lrc.intervals);
  (* Tell node 0 what node 1 now has (a REQUEST piggyback would do this). *)
  Lrc.note_peer_vc c.lrcs.(0) ~peer:1 (Lrc.vc c.lrcs.(1));
  Shm.write_i64 c.shms.(0) a 2;
  let pb2 = release c ~src:0 ~dst:1 in
  Alcotest.(check int) "second release carries only the new interval" 1
    (List.length pb2.Lrc.intervals);
  Alcotest.(check int) "value" 2 (Shm.read_i64 c.shms.(1) a);
  (* Without note_peer_vc the second release would have carried both. *)
  ()

let test_untold_peer_gets_full_history () =
  let c = make_cluster 3 in
  let a = slot c ~page:0 0 in
  Shm.write_i64 c.shms.(0) a 1;
  let _ = release c ~src:0 ~dst:1 in
  Shm.write_i64 c.shms.(0) a 2;
  (* Node 2 was never heard from: the piggyback includes both intervals. *)
  let pb = Lrc.make_piggyback c.lrcs.(0) ~receiver:2 ~nontransitive:false in
  Alcotest.(check int) "both intervals" 2 (List.length pb.Lrc.intervals);
  Lrc.accept c.lrcs.(2) [ pb ];
  Alcotest.(check int) "latest value" 2 (Shm.read_i64 c.shms.(2) a)

let test_multiple_writers_false_sharing () =
  let c = make_cluster 3 in
  (* Nodes 0 and 1 write disjoint slots of the same page concurrently. *)
  let a = slot c ~page:0 0 and b = slot c ~page:0 1 in
  Shm.write_i64 c.shms.(0) a 111;
  Shm.write_i64 c.shms.(1) b 222;
  let pb0 = Lrc.make_piggyback c.lrcs.(0) ~receiver:2 ~nontransitive:false in
  let pb1 = Lrc.make_piggyback c.lrcs.(1) ~receiver:2 ~nontransitive:false in
  Lrc.accept c.lrcs.(2) [ pb0; pb1 ];
  Alcotest.(check int) "writer 0 slot" 111 (Shm.read_i64 c.shms.(2) a);
  Alcotest.(check int) "writer 1 slot" 222 (Shm.read_i64 c.shms.(2) b)

let test_concurrent_writer_preserves_local_mods () =
  let c = make_cluster 2 in
  let a = slot c ~page:0 0 and b = slot c ~page:0 1 in
  (* Node 1 writes its own slot, then accepts node 0's concurrent write to
     the same page: the local modification must survive invalidation. *)
  Shm.write_i64 c.shms.(1) b 9;
  Shm.write_i64 c.shms.(0) a 8;
  let _ = release c ~src:0 ~dst:1 in
  Alcotest.(check int) "remote write" 8 (Shm.read_i64 c.shms.(1) a);
  Alcotest.(check int) "local write preserved" 9 (Shm.read_i64 c.shms.(1) b)

let test_nontransitive_triggers_interval_fetch () =
  let c = make_cluster 3 in
  let a = slot c ~page:0 0 and b = slot c ~page:1 0 in
  Shm.write_i64 c.shms.(0) a 10;
  let _ = release c ~src:0 ~dst:1 in
  Shm.write_i64 c.shms.(1) b 20;
  (* Non-transitive release from 1 to 2: carries only node 1's intervals,
     but the required vc names node 0's interval, so node 2 must fetch the
     missing description from node 1. *)
  let pb = Lrc.make_piggyback c.lrcs.(1) ~receiver:2 ~nontransitive:true in
  Alcotest.(check bool) "only own intervals in NT piggyback" true
    (List.for_all
       (fun (i : Interval.t) -> i.Interval.id.Interval.creator = 1)
       pb.Lrc.intervals);
  Lrc.accept c.lrcs.(2) [ pb ];
  Alcotest.(check int) "interval fetch happened" 1
    (Lrc.stats c.lrcs.(2)).Lrc.interval_fetches;
  Alcotest.(check int) "transitive value still correct" 10
    (Shm.read_i64 c.shms.(2) a);
  Alcotest.(check int) "direct value" 20 (Shm.read_i64 c.shms.(2) b)

let test_barrier_union_has_no_gaps () =
  let c = make_cluster 4 in
  (* Every client writes its own page, then sends a non-transitive arrival
     to the manager (node 0), which accepts them all at once.  The union of
     own-interval contributions is complete, so no interval fetch should be
     needed (this is why RELEASE_NT exists, paper §2). *)
  let addrs = Array.init 4 (fun i -> slot c ~page:i 0) in
  for node = 1 to 3 do
    Shm.write_i64 c.shms.(node) addrs.(node) (100 + node)
  done;
  let arrivals =
    List.map
      (fun node ->
        Lrc.make_piggyback c.lrcs.(node) ~receiver:0 ~nontransitive:true)
      [ 1; 2; 3 ]
  in
  Lrc.accept c.lrcs.(0) arrivals;
  Alcotest.(check int) "no interval fetches at manager" 0
    (Lrc.stats c.lrcs.(0)).Lrc.interval_fetches;
  for node = 1 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "manager sees node %d write" node)
      (100 + node)
      (Shm.read_i64 c.shms.(0) addrs.(node))
  done

let test_orphan_diff_path () =
  let c = make_cluster 3 in
  let a = slot c ~page:0 0 in
  (* Node 0 writes and releases to node 1 (interval closed, diff pending
     behind the twin). *)
  Shm.write_i64 c.shms.(0) a 1;
  let _ = release c ~src:0 ~dst:1 in
  (* Node 0 keeps writing the same page in its open (unreleased)
     interval; node 1 synchronized only with the first release, so it
     reads exactly the released value — eager per-interval diffs keep the
     unreleased write invisible. *)
  Shm.write_i64 c.shms.(0) a 2;
  Alcotest.(check int) "node 1 reads only the released value" 1
    (Shm.read_i64 c.shms.(1) a);
  let _ = release c ~src:0 ~dst:2 in
  Alcotest.(check int) "node 2 sees final value" 2 (Shm.read_i64 c.shms.(2) a)

let test_empty_diff_release () =
  let c = make_cluster 2 in
  let a = slot c ~page:0 0 in
  (* Write the value that is already there: a twin and an interval exist,
     but the eventual diff is empty.  Everything must still work. *)
  Shm.write_i64 c.shms.(0) a 0;
  let _ = release c ~src:0 ~dst:1 in
  Alcotest.(check int) "read" 0 (Shm.read_i64 c.shms.(1) a)

let test_release_without_writes_carries_no_interval () =
  let c = make_cluster 2 in
  let pb = Lrc.make_piggyback c.lrcs.(0) ~receiver:1 ~nontransitive:false in
  Alcotest.(check int) "no intervals" 0 (List.length pb.Lrc.intervals);
  Lrc.accept c.lrcs.(1) [ pb ];
  Alcotest.(check int) "vc unchanged" 0 (Vc.get (Lrc.vc c.lrcs.(1)) 0)

let test_whole_page_fetch_for_long_histories () =
  let c = make_cluster 2 in
  let a = slot c ~page:0 0 in
  (* Ten separate intervals all touching page 0; the reader should prefer a
     single whole-page fetch over ten diff fetches. *)
  for i = 1 to 10 do
    Shm.write_i64 c.shms.(0) a i;
    let pb = Lrc.make_piggyback c.lrcs.(0) ~receiver:1 ~nontransitive:false in
    ignore pb;
    (* Deliver only the consistency information, without reading, so the
       missing list grows. *)
    Lrc.accept c.lrcs.(1) [ pb ]
  done;
  Alcotest.(check int) "value" 10 (Shm.read_i64 c.shms.(1) a);
  Alcotest.(check int) "whole-page fetch used" 1
    (Lrc.stats c.lrcs.(1)).Lrc.page_fetches

let test_metadata_gc () =
  let c = make_cluster 2 in
  let a = slot c ~page:0 0 in
  for i = 1 to 5 do
    Shm.write_i64 c.shms.(0) a i;
    let _ = release c ~src:0 ~dst:1 in
    ignore (Shm.read_i64 c.shms.(1) a)
  done;
  let before = Lrc.metadata_pressure c.lrcs.(0) in
  Alcotest.(check bool) "pressure accumulated" true (before > 0);
  (* Both nodes are now mutually consistent; discard history. *)
  Lrc.validate_all c.lrcs.(0);
  Lrc.validate_all c.lrcs.(1);
  let snapshot = Vc.join (Lrc.vc c.lrcs.(0)) (Lrc.vc c.lrcs.(1)) in
  Lrc.discard_before c.lrcs.(0) snapshot;
  Lrc.discard_before c.lrcs.(1) snapshot;
  Alcotest.(check bool) "pressure dropped" true
    (Lrc.metadata_pressure c.lrcs.(0) < before);
  (* The system keeps working after the GC. *)
  Shm.write_i64 c.shms.(0) a 99;
  let _ = release c ~src:0 ~dst:1 in
  Alcotest.(check int) "post-gc value" 99 (Shm.read_i64 c.shms.(1) a)

let test_lock_handoff_chain () =
  let c = make_cluster 4 in
  let a = slot c ~page:0 0 in
  (* A counter incremented under a lock that migrates around the ring:
     release-accept edges must carry the full history. *)
  let holder = ref 0 in
  Shm.write_i64 c.shms.(0) a 1;
  for next = 1 to 3 do
    let _ = release c ~src:!holder ~dst:next in
    let v = Shm.read_i64 c.shms.(next) a in
    Shm.write_i64 c.shms.(next) a (v + 1);
    holder := next
  done;
  let _ = release c ~src:3 ~dst:0 in
  Alcotest.(check int) "counter value" 4 (Shm.read_i64 c.shms.(0) a)

let test_determinism () =
  let run () =
    let c = make_cluster 3 in
    let a = slot c ~page:0 0 and b = slot c ~page:1 1 in
    Shm.write_i64 c.shms.(0) a 1;
    let _ = release c ~src:0 ~dst:1 in
    Shm.write_i64 c.shms.(1) b 2;
    let _ = release c ~src:1 ~dst:2 in
    ignore (Shm.read_i64 c.shms.(2) a);
    ignore (Shm.read_i64 c.shms.(2) b);
    let s = Lrc.stats c.lrcs.(2) in
    (s.Lrc.diffs_applied, s.Lrc.write_notices_applied, !(c.charged))
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "identical stats across runs" true (r1 = r2)

let prop_lock_chain_counter =
  (* Random release chains: a counter passed along any sequence of
     release/accept edges always reads its true value. *)
  QCheck.Test.make ~name:"lrc: counter correct along random release chains"
    ~count:60
    QCheck.(list_of_size Gen.(int_range 1 25) (int_range 0 3))
    (fun hops ->
      let c = make_cluster 4 in
      let a = slot c ~page:0 0 in
      let holder = ref 0 and count = ref 0 in
      Shm.write_i64 c.shms.(0) a 0;
      List.iter
        (fun next ->
          if next <> !holder then begin
            let _ = release c ~src:!holder ~dst:next in
            ()
          end;
          let v = Shm.read_i64 c.shms.(next) a in
          if v <> !count then QCheck.Test.fail_reportf "read %d at %d" v !count;
          Shm.write_i64 c.shms.(next) a (v + 1);
          incr count;
          holder := next)
        hops;
      true)

let prop_false_sharing_slots =
  (* Each node owns one slot of a single page and increments it under
     random release edges to a central reader; final values must match. *)
  QCheck.Test.make ~name:"lrc: per-node slots survive false sharing"
    ~count:60
    QCheck.(list_of_size Gen.(int_range 1 20) (int_range 1 3))
    (fun writers ->
      let c = make_cluster 4 in
      let counts = Array.make 4 0 in
      List.iter
        (fun node ->
          let a = slot c ~page:0 node in
          let v = Shm.read_i64 c.shms.(node) a in
          Shm.write_i64 c.shms.(node) a (v + 1);
          counts.(node) <- counts.(node) + 1;
          let _ = release c ~src:node ~dst:0 in
          ())
        writers;
      Array.for_all2 ( = )
        (Array.init 4 (fun node ->
             if node = 0 then 0 else Shm.read_i64 c.shms.(0) (slot c ~page:0 node)))
        (Array.mapi (fun i v -> if i = 0 then 0 else v) counts))

(* Regression tests for subtle protocol bugs found during bring-up. *)

let test_serve_page_excludes_open_writes () =
  let c = make_cluster 2 in
  let a = slot c ~page:0 0 in
  (* Released value 1; unreleased open-interval value 2. *)
  Shm.write_i64 c.shms.(0) a 1;
  let _ = release c ~src:0 ~dst:1 in
  Shm.write_i64 c.shms.(0) a 2;
  (match Lrc.serve_page c.lrcs.(0) ~page:0 with
  | None -> Alcotest.fail "page should be servable"
  | Some reply ->
    (* The served copy is the clean snapshot: byte-granular diffs assume
       the receiver's base matches the writer's twin, so unreleased
       mid-interval writes must not leak. *)
    Alcotest.(check int) "served copy excludes the unreleased write" 1
      (Int64.to_int (Bytes.get_int64_le reply.Lrc.data 0)));
  (* The open write is still published correctly at the next release. *)
  let _ = release c ~src:0 ~dst:1 in
  Alcotest.(check int) "next release publishes it" 2
    (Shm.read_i64 c.shms.(1) a)

let test_concurrent_release_during_cpu_yield () =
  (* Two same-node fibers releasing interleaved must not double-publish
     one dirty list (the close_interval snapshot race).  The loopback
     cluster has no engine, so we emulate by two back-to-back
     make_piggyback calls: the second must carry no new interval. *)
  let c = make_cluster 2 in
  let a = slot c ~page:0 0 in
  Shm.write_i64 c.shms.(0) a 5;
  let pb1 = Lrc.make_piggyback c.lrcs.(0) ~receiver:1 ~nontransitive:false in
  let pb2 = Lrc.make_piggyback c.lrcs.(0) ~receiver:1 ~nontransitive:false in
  Alcotest.(check int) "first close publishes" 1 (List.length pb1.Lrc.intervals);
  Alcotest.(check int) "second close publishes nothing new" 1
    (List.length pb2.Lrc.intervals);
  (* pb2 still carries the interval description because node 1's knowledge
     was not updated; but no *new* interval may exist. *)
  Alcotest.(check int) "only one interval was created" 1
    (Lrc.stats c.lrcs.(0)).Lrc.intervals_created

let test_many_interval_page_history_correct () =
  (* Long per-page histories exercise the whole-page fetch path; the final
     value must always win regardless of transfer mechanism. *)
  let c = make_cluster 3 in
  let a = slot c ~page:0 0 and b = slot c ~page:0 1 in
  for i = 1 to 12 do
    Shm.write_i64 c.shms.(0) a i;
    let pb = Lrc.make_piggyback c.lrcs.(0) ~receiver:1 ~nontransitive:false in
    Lrc.accept c.lrcs.(1) [ pb ]
  done;
  (* Node 1 interleaves a write of its own slot on the same page. *)
  Shm.write_i64 c.shms.(1) b 777;
  let _ = release c ~src:1 ~dst:2 in
  ignore (Shm.read_i64 c.shms.(1) a);
  Alcotest.(check int) "final value at reader" 12 (Shm.read_i64 c.shms.(1) a);
  Alcotest.(check int) "own slot preserved" 777 (Shm.read_i64 c.shms.(1) b);
  let _ = release c ~src:0 ~dst:2 in
  Alcotest.(check int) "third party sees final value" 12
    (Shm.read_i64 c.shms.(2) a);
  Alcotest.(check int) "third party sees node1 slot" 777
    (Shm.read_i64 c.shms.(2) b)

(* ------------------------------------------------------------------ *)
(* Update / hybrid coherence strategies (paper §4.3) *)

let test_update_strategy_keeps_pages_valid () =
  let c = make_cluster ~strategy:Lrc.Update 2 in
  let a = slot c ~page:0 0 in
  Shm.write_i64 c.shms.(0) a 42;
  let pb = Lrc.make_piggyback c.lrcs.(0) ~receiver:1 ~nontransitive:false in
  Alcotest.(check bool) "diffs travel with the release" true
    (pb.Lrc.attached_diffs <> []);
  Lrc.accept c.lrcs.(1) [ pb ];
  (* The data arrived eagerly: the page stays valid and the read faults
     neither for the page nor for diffs. *)
  Alcotest.(check bool) "page stays valid" true
    (page_state c ~node:1 ~page:0 <> Page.Invalid);
  Alcotest.(check int) "value" 42 (Shm.read_i64 c.shms.(1) a);
  Alcotest.(check int) "no read fault" 0
    (Page_table.read_faults (Shm.page_table c.shms.(1)));
  Alcotest.(check int) "no diff request" 0
    (Lrc.stats c.lrcs.(1)).Lrc.diff_requests

let test_invalidate_strategy_attaches_nothing () =
  let c = make_cluster 2 in
  let a = slot c ~page:0 0 in
  Shm.write_i64 c.shms.(0) a 1;
  let pb = Lrc.make_piggyback c.lrcs.(0) ~receiver:1 ~nontransitive:false in
  Alcotest.(check bool) "no eager data under invalidation" true
    (pb.Lrc.attached_diffs = [])

let test_hybrid_update_attaches_own_only () =
  let c = make_cluster ~strategy:Lrc.Hybrid_update 3 in
  let a = slot c ~page:0 0 and b = slot c ~page:1 0 in
  Shm.write_i64 c.shms.(0) a 10;
  let _ = release c ~src:0 ~dst:1 in
  Shm.write_i64 c.shms.(1) b 20;
  let pb = Lrc.make_piggyback c.lrcs.(1) ~receiver:2 ~nontransitive:false in
  (* The piggyback describes both nodes' intervals but ships data only for
     the sender's own. *)
  Alcotest.(check bool) "attachments only from the sender" true
    (List.for_all
       (fun (_, (id : Interval.id), _) -> id.Interval.creator = 1)
       pb.Lrc.attached_diffs);
  Lrc.accept c.lrcs.(2) [ pb ];
  Alcotest.(check bool) "sender's page valid" true
    (page_state c ~node:2 ~page:1 <> Page.Invalid);
  Alcotest.(check bool) "third-party page invalidated" true
    (page_state c ~node:2 ~page:0 = Page.Invalid);
  Alcotest.(check int) "third-party value on demand" 10
    (Shm.read_i64 c.shms.(2) a);
  Alcotest.(check int) "sender value eagerly" 20 (Shm.read_i64 c.shms.(2) b)

let test_update_onto_stale_base_caches () =
  let c = make_cluster ~strategy:Lrc.Update 3 in
  let a = slot c ~page:0 0 and a' = slot c ~page:0 1 in
  (* Node 0 writes page 0 and releases only to node 1. *)
  Shm.write_i64 c.shms.(0) a 5;
  let _ = release c ~src:0 ~dst:1 in
  (* Node 1 writes the same page and sends node 2 a non-transitive
     release: node 2 learns about node 0's interval only as a gap, so its
     copy is stale for it; node 1's eager diff cannot be applied in place
     and must be cached for the later validation. *)
  Shm.write_i64 c.shms.(1) a' 6;
  let pb = Lrc.make_piggyback c.lrcs.(1) ~receiver:2 ~nontransitive:true in
  Lrc.accept c.lrcs.(2) [ pb ];
  Alcotest.(check bool) "page invalid (gap)" true
    (page_state c ~node:2 ~page:0 = Page.Invalid);
  Alcotest.(check int) "both writes visible after validation" 5
    (Shm.read_i64 c.shms.(2) a);
  Alcotest.(check int) "second slot" 6 (Shm.read_i64 c.shms.(2) a');
  (* Only node 0's diff needed a remote fetch; node 1's came with the
     message. *)
  Alcotest.(check int) "one remote diff request" 1
    (Lrc.stats c.lrcs.(2)).Lrc.diff_requests

let test_update_strategy_lock_chain () =
  (* The counter chain from the invalidation tests must hold verbatim
     under the update strategy. *)
  let c = make_cluster ~strategy:Lrc.Update 4 in
  let a = slot c ~page:0 0 in
  Shm.write_i64 c.shms.(0) a 1;
  for next = 1 to 3 do
    let _ = release c ~src:(next - 1) ~dst:next in
    let v = Shm.read_i64 c.shms.(next) a in
    Shm.write_i64 c.shms.(next) a (v + 1)
  done;
  let _ = release c ~src:3 ~dst:0 in
  Alcotest.(check int) "counter" 4 (Shm.read_i64 c.shms.(0) a)

(* ------------------------------------------------------------------ *)
(* Batched fetching and the creator-side merged-diff cache *)

let test_vc_wire_size () =
  (* Interval indices and clock components are 32-bit on the wire; the
     old 2-bytes-per-entry accounting undercounted every message that
     carries a clock. *)
  Alcotest.(check int) "entry bytes" 4 Vc.entry_bytes;
  Alcotest.(check int) "4-node clock" 16 (Vc.size_bytes (Vc.zero ~nodes:4));
  Alcotest.(check int) "1-node clock" 4 (Vc.size_bytes (Vc.zero ~nodes:1))

(* Two released intervals of one creator touching the same page: the
   fault must fetch both in a single coalesced diff request. *)
let coalescing_scenario ?batch_fetch ?diff_cache () =
  let c = make_cluster ?batch_fetch ?diff_cache 3 in
  let a = slot c ~page:0 0 and b = slot c ~page:0 1 in
  Shm.write_i64 c.shms.(0) a 1;
  let _ = release c ~src:0 ~dst:1 in
  Shm.write_i64 c.shms.(0) b 2;
  let _ = release c ~src:0 ~dst:1 in
  let _ = release c ~src:0 ~dst:2 in
  (c, a, b)

let test_per_creator_coalescing () =
  let c, a, b = coalescing_scenario () in
  Alcotest.(check int) "no requests before the fault" 0
    (Lrc.stats c.lrcs.(1)).Lrc.diff_requests;
  Alcotest.(check int) "first interval's write" 1 (Shm.read_i64 c.shms.(1) a);
  Alcotest.(check int) "second interval's write" 2 (Shm.read_i64 c.shms.(1) b);
  Alcotest.(check int) "both intervals in one request" 1
    (Lrc.stats c.lrcs.(1)).Lrc.diff_requests

let test_diff_cache_hit_on_repeat_fetch () =
  let c, a, b = coalescing_scenario () in
  ignore (Shm.read_i64 c.shms.(1) a);
  let s0 = Lrc.stats c.lrcs.(0) in
  Alcotest.(check bool) "first fetch merges afresh" true
    (s0.Lrc.diff_cache_misses > 0);
  Alcotest.(check int) "nothing cached yet" 0 s0.Lrc.diff_cache_hits;
  (* Node 2 missing the same (page, creator, range) must be served from
     the memoized merge. *)
  Alcotest.(check int) "repeat fetcher reads a" 1 (Shm.read_i64 c.shms.(2) a);
  Alcotest.(check int) "repeat fetcher reads b" 2 (Shm.read_i64 c.shms.(2) b);
  let s0' = Lrc.stats c.lrcs.(0) in
  Alcotest.(check bool) "repeat fetch hits the cache" true
    (s0'.Lrc.diff_cache_hits > 0);
  Alcotest.(check int) "no extra merge" s0.Lrc.diff_cache_misses
    s0'.Lrc.diff_cache_misses

let test_diff_cache_disabled () =
  let c, a, b = coalescing_scenario ~diff_cache:false () in
  Alcotest.(check int) "node 1 reads a" 1 (Shm.read_i64 c.shms.(1) a);
  Alcotest.(check int) "node 1 reads b" 2 (Shm.read_i64 c.shms.(1) b);
  Alcotest.(check int) "node 2 reads a" 1 (Shm.read_i64 c.shms.(2) a);
  Alcotest.(check int) "node 2 reads b" 2 (Shm.read_i64 c.shms.(2) b);
  let s0 = Lrc.stats c.lrcs.(0) in
  Alcotest.(check int) "no hits" 0 s0.Lrc.diff_cache_hits;
  Alcotest.(check int) "no misses" 0 s0.Lrc.diff_cache_misses

let test_batch_fetch_disabled_still_correct () =
  let c, a, b = coalescing_scenario ~batch_fetch:false ~diff_cache:false () in
  Alcotest.(check int) "node 1 reads a" 1 (Shm.read_i64 c.shms.(1) a);
  Alcotest.(check int) "node 1 reads b" 2 (Shm.read_i64 c.shms.(1) b);
  Alcotest.(check bool) "requests were issued" true
    ((Lrc.stats c.lrcs.(1)).Lrc.diff_requests > 0)

(* ------------------------------------------------------------------ *)
(* Cross-backend conformance: the same application, same seed, at 4
   nodes must produce identical application-level results on all three
   consistency models, with each model's auditor invariants clean. *)

module System = Carlos.System
module Backend = Carlos_dsm.Backend
module Audit = Carlos_audit.Audit
module Seq = Carlos_dsm.Seq_backend
module Grid = Carlos_apps.Grid
module Tsp = Carlos_apps.Tsp

let audited_run backend mk =
  let sys = System.create ~audit:true backend in
  let result = mk sys in
  let audit = Option.get (System.auditor sys) in
  Alcotest.(check int)
    (Carlos_dsm.Backend.kind_to_string backend.System.backend
    ^ " audit clean")
    0
    (Audit.violation_count audit);
  result

let test_conformance_grid () =
  let results =
    List.map
      (fun backend ->
        let cfg =
          { (Grid.config ~nodes:4 Grid.default_params) with System.backend }
        in
        audited_run cfg (fun sys ->
            let r = Grid.run sys Grid.Hybrid Grid.default_params in
            Alcotest.(check bool)
              (Backend.kind_to_string backend ^ " grid exact")
              true r.Grid.exact;
            r.Grid.checksum))
      Backend.all_kinds
  in
  match results with
  | lrc :: rest ->
    List.iter
      (fun checksum ->
        Alcotest.(check (float 0.0)) "identical checksum" lrc checksum)
      rest
  | [] -> Alcotest.fail "no backends"

let test_conformance_tsp () =
  let reference = Tsp.solve_reference Tsp.default_params in
  let results =
    List.map
      (fun backend ->
        let cfg = { (System.default_config ~nodes:4) with System.backend } in
        audited_run cfg (fun sys ->
            let r = Tsp.run sys Tsp.Lock Tsp.default_params in
            r.Tsp.best))
      Backend.all_kinds
  in
  List.iter
    (fun best -> Alcotest.(check int) "optimal tour" reference best)
    results

(* ------------------------------------------------------------------ *)
(* Sequencer CAS, exercised through a direct-call cluster (no simulated
   network): success and failure paths, total-order stamping, replica
   convergence including the origin. *)

type seq_cluster = { sregion : Region.t; sshms : Shm.t array; seqs : Seq.t array }

let make_seq_cluster n =
  let sregion =
    Region.create ~page_size:256 ~private_bytes:256 ~noncoherent_bytes:256
      ~coherent_pages:8 ()
  in
  let noncoherent = Bytes.make 256 '\000' in
  let sshms =
    Array.init n (fun _ -> Shm.create ~region:sregion ~noncoherent ())
  in
  let charge _ = () in
  let seqs =
    Array.init n (fun me ->
        Seq.create ~nodes:n ~me ~sequencer:0
          ~page_table:(Shm.page_table sshms.(me))
          ~costs:Cost.default ~charge ())
  in
  (* Direct-call wiring: the sequencer's pushes apply synchronously at
     each replica before the RPC "reply" returns, which models the
     shared-FIFO-channel guarantee of the full system. *)
  Seq.set_push seqs.(0) (fun ~dst entries -> Seq.apply_push seqs.(dst) entries);
  Array.iteri
    (fun me s ->
      if me <> 0 then
        Seq.set_transport s
          {
            Seq.sequence =
              (fun diffs -> Seq.serve_sequence seqs.(0) ~origin:me diffs);
            cas =
              (fun ~page ~offset ~expected ~desired ->
                Seq.serve_cas seqs.(0) ~origin:me ~page ~offset ~expected
                  ~desired);
          })
    seqs;
  { sregion; sshms; seqs }

let test_seq_cas () =
  let c = make_seq_cluster 3 in
  let addr = Region.coherent_addr c.sregion ~page:0 ~offset:0 in
  (* Fresh pages are zero-filled: CAS 0 -> 7 from node 1 succeeds. *)
  let ok, observed =
    Seq.cas c.seqs.(1) ~page:0 ~offset:0 ~expected:0 ~desired:7
  in
  Alcotest.(check bool) "first cas succeeds" true ok;
  Alcotest.(check int) "observed initial value" 0 observed;
  (* A stale-expectation CAS from node 2 fails and reports the winner. *)
  let ok, observed =
    Seq.cas c.seqs.(2) ~page:0 ~offset:0 ~expected:0 ~desired:9
  in
  Alcotest.(check bool) "stale cas fails" false ok;
  Alcotest.(check int) "failure observes winner" 7 observed;
  (* Every replica — sequencer, origin, and bystander — converged. *)
  Array.iteri
    (fun node shm ->
      Alcotest.(check int)
        (Printf.sprintf "node %d sees winner" node)
        7 (Shm.read_i64 shm addr))
    c.sshms;
  (* Retry with the observed value succeeds; all replicas follow. *)
  let ok, observed =
    Seq.cas c.seqs.(2) ~page:0 ~offset:0 ~expected:7 ~desired:9
  in
  Alcotest.(check bool) "retry succeeds" true ok;
  Alcotest.(check int) "retry observes prior" 7 observed;
  Array.iter
    (fun shm -> Alcotest.(check int) "converged" 9 (Shm.read_i64 shm addr))
    c.sshms;
  (* Stamps were issued in one contiguous total order everywhere; the
     failed CAS took no stamp. *)
  Array.iter
    (fun s -> Alcotest.(check int) "applied_seq" 2 (Seq.applied_seq s))
    c.seqs

let test_seq_cas_at_sequencer () =
  let c = make_seq_cluster 2 in
  let addr = Region.coherent_addr c.sregion ~page:0 ~offset:8 in
  let ok, _ = Seq.cas c.seqs.(0) ~page:0 ~offset:8 ~expected:0 ~desired:42 in
  Alcotest.(check bool) "sequencer-local cas succeeds" true ok;
  Array.iter
    (fun shm -> Alcotest.(check int) "pushed to replica" 42 (Shm.read_i64 shm addr))
    c.sshms

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dsm"
    [
      ( "lrc-basic",
        [
          Alcotest.test_case "propagation" `Quick test_basic_propagation;
          Alcotest.test_case "write notice invalidates" `Quick
            test_write_notice_invalidates;
          Alcotest.test_case "vc advances" `Quick test_vc_advances;
          Alcotest.test_case "no fault for own data" `Quick
            test_no_fault_for_own_data;
          Alcotest.test_case "release w/o writes" `Quick
            test_release_without_writes_carries_no_interval;
          Alcotest.test_case "empty diff" `Quick test_empty_diff_release;
        ] );
      ( "lrc-causality",
        [
          Alcotest.test_case "transitivity" `Quick test_transitivity;
          Alcotest.test_case "tailored piggyback" `Quick
            test_tailored_piggyback;
          Alcotest.test_case "full history to new peer" `Quick
            test_untold_peer_gets_full_history;
          Alcotest.test_case "NT triggers interval fetch" `Quick
            test_nontransitive_triggers_interval_fetch;
          Alcotest.test_case "barrier union has no gaps" `Quick
            test_barrier_union_has_no_gaps;
          Alcotest.test_case "lock handoff chain" `Quick
            test_lock_handoff_chain;
        ] );
      ( "lrc-multiwriter",
        [
          Alcotest.test_case "false sharing" `Quick
            test_multiple_writers_false_sharing;
          Alcotest.test_case "local mods preserved" `Quick
            test_concurrent_writer_preserves_local_mods;
          Alcotest.test_case "orphan diff path" `Quick test_orphan_diff_path;
        ] );
      ( "lrc-mechanisms",
        [
          Alcotest.test_case "whole-page fetch" `Quick
            test_whole_page_fetch_for_long_histories;
          Alcotest.test_case "metadata gc" `Quick test_metadata_gc;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "serve excludes open writes" `Quick
            test_serve_page_excludes_open_writes;
          Alcotest.test_case "double close publishes once" `Quick
            test_concurrent_release_during_cpu_yield;
          Alcotest.test_case "long page history" `Quick
            test_many_interval_page_history_correct;
        ] );
      ( "lrc-strategies",
        [
          Alcotest.test_case "update keeps pages valid" `Quick
            test_update_strategy_keeps_pages_valid;
          Alcotest.test_case "invalidate attaches nothing" `Quick
            test_invalidate_strategy_attaches_nothing;
          Alcotest.test_case "hybrid attaches own only" `Quick
            test_hybrid_update_attaches_own_only;
          Alcotest.test_case "stale base caches eager diffs" `Quick
            test_update_onto_stale_base_caches;
          Alcotest.test_case "lock chain under update" `Quick
            test_update_strategy_lock_chain;
        ] );
      ( "batching",
        [
          Alcotest.test_case "vc wire size" `Quick test_vc_wire_size;
          Alcotest.test_case "per-creator coalescing" `Quick
            test_per_creator_coalescing;
          Alcotest.test_case "diff cache hit on repeat fetch" `Quick
            test_diff_cache_hit_on_repeat_fetch;
          Alcotest.test_case "diff cache disabled" `Quick
            test_diff_cache_disabled;
          Alcotest.test_case "batch fetch disabled still correct" `Quick
            test_batch_fetch_disabled_still_correct;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "grid identical across backends" `Quick
            test_conformance_grid;
          Alcotest.test_case "tsp identical across backends" `Quick
            test_conformance_tsp;
        ] );
      ( "seq-cas",
        [
          Alcotest.test_case "total order + convergence" `Quick test_seq_cas;
          Alcotest.test_case "sequencer-local cas" `Quick
            test_seq_cas_at_sequencer;
        ] );
      ( "lrc-properties",
        qcheck [ prop_lock_chain_counter; prop_false_sharing_slots ] );
    ]
