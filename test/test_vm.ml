(* Tests for the simulated paged memory: regions, pages/twins, diffs, page
   tables, typed shared-memory access, allocator. *)

module Region = Carlos_vm.Region
module Page = Carlos_vm.Page
module Diff = Carlos_vm.Diff
module Page_table = Carlos_vm.Page_table
module Shm = Carlos_vm.Shm
module Alloc = Carlos_vm.Alloc

let small_region () =
  Region.create ~page_size:256 ~private_bytes:1024 ~noncoherent_bytes:1024
    ~coherent_pages:8 ()

(* ------------------------------------------------------------------ *)
(* Region *)

let test_region_locate () =
  let r = small_region () in
  (match Region.locate r (Region.private_base r + 5) with
  | Region.Private 5 -> ()
  | _ -> Alcotest.fail "private");
  (match Region.locate r (Region.noncoherent_base r + 100) with
  | Region.Noncoherent 100 -> ()
  | _ -> Alcotest.fail "noncoherent");
  match Region.locate r (Region.coherent_base r + 300) with
  | Region.Coherent { page = 1; offset = 44 } -> ()
  | _ -> Alcotest.fail "coherent"

let test_region_segv () =
  let r = small_region () in
  let expect_segv addr =
    match Region.locate r addr with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected segmentation violation"
  in
  expect_segv 0;
  expect_segv (Region.private_base r + 1024);
  expect_segv (Region.coherent_base r + (8 * 256))

let test_region_coherent_addr () =
  let r = small_region () in
  let addr = Region.coherent_addr r ~page:2 ~offset:10 in
  match Region.locate r addr with
  | Region.Coherent { page = 2; offset = 10 } -> ()
  | _ -> Alcotest.fail "roundtrip"

let test_region_bad_page_size () =
  match
    Region.create ~page_size:100 ~private_bytes:0 ~noncoherent_bytes:0
      ~coherent_pages:1 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non power of two accepted"

(* ------------------------------------------------------------------ *)
(* Diff *)

let test_diff_empty () =
  let twin = Bytes.make 64 'a' in
  let current = Bytes.copy twin in
  let d = Diff.create ~page:0 ~twin ~current in
  Alcotest.(check bool) "empty" true (Diff.is_empty d);
  Alcotest.(check int) "no changed bytes" 0 (Diff.changed_bytes d)

let test_diff_roundtrip_simple () =
  let twin = Bytes.make 64 'a' in
  let current = Bytes.copy twin in
  Bytes.set current 3 'x';
  Bytes.set current 4 'y';
  Bytes.set current 60 'z';
  let d = Diff.create ~page:0 ~twin ~current in
  Alcotest.(check int) "two runs" 2 (List.length (Diff.runs d));
  Alcotest.(check int) "changed" 3 (Diff.changed_bytes d);
  let target = Bytes.copy twin in
  Diff.apply d target;
  Alcotest.(check string) "reconstructs" (Bytes.to_string current)
    (Bytes.to_string target)

let test_diff_idempotent () =
  let twin = Bytes.make 32 '\000' in
  let current = Bytes.copy twin in
  Bytes.set current 10 'q';
  let d = Diff.create ~page:0 ~twin ~current in
  let target = Bytes.copy twin in
  Diff.apply d target;
  Diff.apply d target;
  Alcotest.(check string) "idempotent" (Bytes.to_string current)
    (Bytes.to_string target)

let test_diff_size_accounting () =
  let twin = Bytes.make 64 'a' in
  let current = Bytes.copy twin in
  Bytes.set current 0 'x';
  let d = Diff.create ~page:0 ~twin ~current in
  (* 8 header + 4 descriptor + 1 data byte *)
  Alcotest.(check int) "wire size" 13 (Diff.size_bytes d)

let bytes_gen len =
  QCheck.Gen.(map Bytes.of_string (string_size ~gen:printable (return len)))

let prop_diff_roundtrip =
  let gen =
    QCheck.make
      ~print:(fun (a, b) -> Bytes.to_string a ^ " / " ^ Bytes.to_string b)
      QCheck.Gen.(bytes_gen 128 >>= fun a -> bytes_gen 128 >|= fun b -> (a, b))
  in
  QCheck.Test.make ~name:"diff: apply(create(t,c), copy t) = c" ~count:300 gen
    (fun (twin, current) ->
      let d = Diff.create ~page:0 ~twin ~current in
      let target = Bytes.copy twin in
      Diff.apply d target;
      Bytes.equal target current)

let prop_diff_disjoint_writers_commute =
  (* Two writers touching disjoint ranges of a page: applying their diffs
     in either order yields the same result (multiple-writer protocol). *)
  let gen = QCheck.(pair (int_range 0 63) (int_range 64 127)) in
  QCheck.Test.make ~name:"diff: disjoint diffs commute" ~count:200 gen
    (fun (i, j) ->
      let base = Bytes.make 128 '\000' in
      let w1 = Bytes.copy base and w2 = Bytes.copy base in
      Bytes.set w1 i 'A';
      Bytes.set w2 j 'B';
      let d1 = Diff.create ~page:0 ~twin:base ~current:w1 in
      let d2 = Diff.create ~page:0 ~twin:base ~current:w2 in
      let t12 = Bytes.copy base and t21 = Bytes.copy base in
      Diff.apply d1 t12;
      Diff.apply d2 t12;
      Diff.apply d2 t21;
      Diff.apply d1 t21;
      Bytes.equal t12 t21 && Bytes.get t12 i = 'A' && Bytes.get t12 j = 'B')

(* ------------------------------------------------------------------ *)
(* Page *)

let test_page_twin_and_diff () =
  let p = Page.create ~size:64 in
  Alcotest.(check bool) "starts read-only" true (Page.state p = Page.Read_only);
  Page.make_twin p;
  Alcotest.(check bool) "read-write" true (Page.state p = Page.Read_write);
  Bytes.set (Page.data p) 7 'k';
  let d = Page.encode_diff p ~page_index:3 in
  Alcotest.(check bool) "back to read-only" true
    (Page.state p = Page.Read_only);
  Alcotest.(check int) "diff page" 3 (Diff.page d);
  Alcotest.(check int) "one changed byte" 1 (Diff.changed_bytes d)

let test_page_invalidate_requires_clean () =
  let p = Page.create ~size:64 in
  Page.make_twin p;
  (match Page.invalidate p with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "invalidate of dirty page accepted");
  let (_ : Diff.t) = Page.encode_diff p ~page_index:0 in
  Page.invalidate p;
  Alcotest.(check bool) "invalid" true (Page.state p = Page.Invalid)

let test_page_install_and_validate () =
  let p = Page.create ~size:8 in
  Page.invalidate p;
  Page.install p (Bytes.of_string "abcdefgh");
  Alcotest.(check bool) "valid after install" true
    (Page.state p = Page.Read_only);
  Alcotest.(check string) "contents" "abcdefgh"
    (Bytes.to_string (Page.data p));
  Page.invalidate p;
  Page.validate p;
  Alcotest.(check bool) "valid again" true (Page.state p = Page.Read_only)

(* ------------------------------------------------------------------ *)
(* Page table *)

let test_page_table_fault_dispatch () =
  let pt = Page_table.create ~pages:4 ~page_size:64 () in
  let read_faults = ref [] and write_faults = ref [] in
  Page_table.set_read_fault pt (fun i ->
      read_faults := i :: !read_faults;
      Page.validate (Page_table.page pt i));
  Page_table.set_write_fault pt (fun i ->
      write_faults := i :: !write_faults;
      Page.make_twin (Page_table.page pt i));
  (* Fresh pages are readable without faulting. *)
  Page_table.ensure_readable pt 0;
  Alcotest.(check (list int)) "no read fault" [] !read_faults;
  (* Write takes a write fault once. *)
  Page_table.ensure_writable pt 0;
  Page_table.ensure_writable pt 0;
  Alcotest.(check (list int)) "one write fault" [ 0 ] !write_faults;
  (* Invalid page takes a read fault on read. *)
  Page.invalidate (Page_table.page pt 1);
  Page_table.ensure_readable pt 1;
  Alcotest.(check (list int)) "one read fault" [ 1 ] !read_faults;
  Alcotest.(check int) "stats reads" 1 (Page_table.read_faults pt);
  Alcotest.(check int) "stats writes" 1 (Page_table.write_faults pt)

let test_page_table_write_to_invalid_takes_both_faults () =
  let pt = Page_table.create ~pages:1 ~page_size:64 () in
  let log = ref [] in
  Page_table.set_read_fault pt (fun i ->
      log := `Read :: !log;
      Page.validate (Page_table.page pt i));
  Page_table.set_write_fault pt (fun i ->
      log := `Write :: !log;
      Page.make_twin (Page_table.page pt i));
  Page.invalidate (Page_table.page pt 0);
  Page_table.ensure_writable pt 0;
  Alcotest.(check bool) "read then write fault" true
    (List.rev !log = [ `Read; `Write ])

let test_page_table_broken_handler_detected () =
  let pt = Page_table.create ~pages:1 ~page_size:64 () in
  Page_table.set_read_fault pt (fun _ -> ());
  Page.invalidate (Page_table.page pt 0);
  match Page_table.ensure_readable pt 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "handler that fixes nothing must be detected"

(* ------------------------------------------------------------------ *)
(* Shm *)

let make_shm () =
  let region = small_region () in
  let noncoherent = Bytes.make (Region.noncoherent_bytes region) '\000' in
  let shm = Shm.create ~region ~noncoherent () in
  (* Identity fault handlers good enough for access tests. *)
  let pt = Shm.page_table shm in
  Page_table.set_read_fault pt (fun i -> Page.validate (Page_table.page pt i));
  Page_table.set_write_fault pt (fun i -> Page.make_twin (Page_table.page pt i));
  (region, shm)

let test_shm_private_rw () =
  let region, shm = make_shm () in
  let addr = Region.private_base region + 16 in
  Shm.write_i64 shm addr 12345;
  Alcotest.(check int) "i64 roundtrip" 12345 (Shm.read_i64 shm addr)

let test_shm_coherent_rw () =
  let region, shm = make_shm () in
  let addr = Region.coherent_addr region ~page:3 ~offset:8 in
  Shm.write_f64 shm addr 3.25;
  Alcotest.(check (float 0.0)) "f64 roundtrip" 3.25 (Shm.read_f64 shm addr)

let test_shm_noncoherent_shared_between_views () =
  let region = small_region () in
  let noncoherent = Bytes.make (Region.noncoherent_bytes region) '\000' in
  let a = Shm.create ~region ~noncoherent () in
  let b = Shm.create ~region ~noncoherent () in
  let addr = Region.noncoherent_base region + 8 in
  Shm.write_i64 a addr 77;
  Alcotest.(check int) "visible in the other view" 77 (Shm.read_i64 b addr)

let test_shm_unaligned_rejected () =
  let region, shm = make_shm () in
  let addr = Region.private_base region + 3 in
  match Shm.read_i64 shm addr with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unaligned accepted"

let test_shm_bulk_cross_page_rejected () =
  let region, shm = make_shm () in
  let addr = Region.coherent_addr region ~page:0 ~offset:250 in
  match Shm.write_bytes shm addr (Bytes.make 16 'x') with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "cross-page bulk write accepted"

let test_shm_u8 () =
  let region, shm = make_shm () in
  let addr = Region.coherent_addr region ~page:1 ~offset:13 in
  Shm.write_u8 shm addr 200;
  Alcotest.(check int) "u8" 200 (Shm.read_u8 shm addr)

(* ------------------------------------------------------------------ *)
(* Alloc *)

let test_alloc_basic () =
  let a = Alloc.create ~base:1000 ~size:256 in
  let p1 = Alloc.alloc a 10 in
  let p2 = Alloc.alloc a 10 in
  Alcotest.(check bool) "disjoint" true (abs (p2 - p1) >= 10);
  Alcotest.(check int) "live" 20 (Alloc.live_bytes a)

let test_alloc_alignment () =
  let a = Alloc.create ~base:1001 ~size:256 in
  let p = Alloc.alloc a ~align:16 10 in
  Alcotest.(check int) "aligned" 0 (p mod 16)

let test_alloc_exhaustion () =
  let a = Alloc.create ~base:0 ~size:64 in
  let _ = Alloc.alloc a 64 in
  match Alloc.alloc a 1 with
  | exception Out_of_memory -> ()
  | _ -> Alcotest.fail "expected Out_of_memory"

let test_alloc_free_reuse () =
  let a = Alloc.create ~base:0 ~size:64 in
  let p1 = Alloc.alloc a 32 in
  let _p2 = Alloc.alloc a 32 in
  Alloc.free a ~addr:p1 ~size:32;
  let p3 = Alloc.alloc a 32 in
  Alcotest.(check int) "reused" p1 p3

let test_alloc_coalesce () =
  let a = Alloc.create ~base:0 ~size:96 in
  let p1 = Alloc.alloc a 32 in
  let p2 = Alloc.alloc a 32 in
  let p3 = Alloc.alloc a 32 in
  Alloc.free a ~addr:p1 ~size:32;
  Alloc.free a ~addr:p2 ~size:32;
  Alloc.free a ~addr:p3 ~size:32;
  (* After coalescing we can allocate the whole arena again. *)
  let p = Alloc.alloc a 96 in
  Alcotest.(check int) "full arena" 0 p

let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"alloc: live blocks never overlap" ~count:100
    QCheck.(small_list (int_range 1 64))
    (fun sizes ->
      let a = Alloc.create ~base:0 ~size:65536 in
      let blocks = List.map (fun n -> (Alloc.alloc a n, n)) sizes in
      let sorted = List.sort compare blocks in
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) ->
          a1 + s1 <= a2 && disjoint rest
        | [ _ ] | [] -> true
      in
      disjoint sorted)

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vm"
    [
      ( "region",
        [
          Alcotest.test_case "locate" `Quick test_region_locate;
          Alcotest.test_case "segv" `Quick test_region_segv;
          Alcotest.test_case "coherent addr roundtrip" `Quick
            test_region_coherent_addr;
          Alcotest.test_case "bad page size" `Quick test_region_bad_page_size;
        ] );
      ( "diff",
        [
          Alcotest.test_case "empty" `Quick test_diff_empty;
          Alcotest.test_case "roundtrip" `Quick test_diff_roundtrip_simple;
          Alcotest.test_case "idempotent" `Quick test_diff_idempotent;
          Alcotest.test_case "size accounting" `Quick
            test_diff_size_accounting;
        ]
        @ qcheck [ prop_diff_roundtrip; prop_diff_disjoint_writers_commute ]
      );
      ( "page",
        [
          Alcotest.test_case "twin and diff" `Quick test_page_twin_and_diff;
          Alcotest.test_case "invalidate requires clean" `Quick
            test_page_invalidate_requires_clean;
          Alcotest.test_case "install and validate" `Quick
            test_page_install_and_validate;
        ] );
      ( "page-table",
        [
          Alcotest.test_case "fault dispatch" `Quick
            test_page_table_fault_dispatch;
          Alcotest.test_case "write to invalid: both faults" `Quick
            test_page_table_write_to_invalid_takes_both_faults;
          Alcotest.test_case "broken handler detected" `Quick
            test_page_table_broken_handler_detected;
        ] );
      ( "shm",
        [
          Alcotest.test_case "private rw" `Quick test_shm_private_rw;
          Alcotest.test_case "coherent rw" `Quick test_shm_coherent_rw;
          Alcotest.test_case "noncoherent shared" `Quick
            test_shm_noncoherent_shared_between_views;
          Alcotest.test_case "unaligned rejected" `Quick
            test_shm_unaligned_rejected;
          Alcotest.test_case "bulk cross-page rejected" `Quick
            test_shm_bulk_cross_page_rejected;
          Alcotest.test_case "u8" `Quick test_shm_u8;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "alignment" `Quick test_alloc_alignment;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "free and reuse" `Quick test_alloc_free_reuse;
          Alcotest.test_case "coalesce" `Quick test_alloc_coalesce;
        ]
        @ qcheck [ prop_alloc_no_overlap ] );
    ]
