(* carlos_run: command-line driver for the CarlOS simulator.

   Run any of the paper's applications in any variant on a configurable
   cluster and print the paper-style report row plus the per-node
   execution breakdown. *)

module System = Carlos.System
module Cost = Carlos_dsm.Cost
module Tsp = Carlos_apps.Tsp
module Qsort = Carlos_apps.Qsort
module Water = Carlos_apps.Water
module Harness = Carlos_apps.Harness

open Cmdliner

let nodes_arg =
  let doc = "Number of workstations in the simulated cluster." in
  Arg.(value & opt int 4 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let variant_arg =
  let doc =
    "Application variant: lock, hybrid, hybrid-1, hybrid-2, \
     hybrid-noforward, hybrid-all-release."
  in
  Arg.(value & opt string "hybrid" & info [ "variant" ] ~docv:"VARIANT" ~doc)

let costs_arg =
  let doc = "Cost table: default, treadmarks, fast-network." in
  Arg.(value & opt string "default" & info [ "costs" ] ~docv:"COSTS" ~doc)

let seed_arg =
  let doc = "Deterministic seed for the run." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let breakdown_arg =
  let doc = "Also print the per-node execution breakdown (Figure 2 style)." in
  Arg.(value & flag & info [ "breakdown" ] ~doc)

let trace_arg =
  let doc = "Print the last message-level trace events of the run." in
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"N" ~doc)

let costs_of_string = function
  | "default" -> Ok Cost.default
  | "treadmarks" -> Ok Cost.treadmarks
  | "fast-network" -> Ok Cost.fast_network
  | s -> Error (Printf.sprintf "unknown cost table %S" s)

let finish ~breakdown ~trace ~sys ~label ~ok report =
  Harness.pp_header Format.std_formatter ();
  Harness.pp_row Format.std_formatter
    (Harness.row ~label ~nodes:(Array.length report.System.per_node)
       ~base:report.System.wall ~ok report);
  if breakdown then
    Harness.pp_breakdown Format.std_formatter [ (label, report) ];
  if trace > 0 then begin
    let events = Carlos_sim.Trace.events (System.trace sys) in
    let skip = max 0 (List.length events - trace) in
    List.iteri
      (fun i e ->
        if i >= skip then
          Format.printf "%a@." Carlos_sim.Trace.pp_event e)
      events
  end;
  if ok then `Ok () else `Error (false, "application-level check failed")

let run_tsp nodes variant costs seed breakdown trace =
  match
    ( costs_of_string costs,
      match variant with
      | "lock" -> Ok Tsp.Lock
      | "hybrid" | "hybrid-1" -> Ok Tsp.Hybrid
      | "hybrid-all-release" -> Ok Tsp.Hybrid_all_release
      | v -> Error (Printf.sprintf "TSP has no variant %S" v) )
  with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok costs, Ok variant ->
    let cfg = { (System.default_config ~nodes) with System.costs; seed } in
    let sys = System.create cfg in
    if trace > 0 then System.set_tracing sys true;
    let p = Tsp.default_params in
    let r = Tsp.run sys variant p in
    Format.printf "TSP: best tour %d (reference %d), %d nodes visited@."
      r.Tsp.best (Tsp.solve_reference p) r.Tsp.visited;
    finish ~breakdown ~trace ~sys
      ~label:("TSP/" ^ Tsp.variant_name variant)
      ~ok:(r.Tsp.best = Tsp.solve_reference p)
      r.Tsp.report

let run_qsort nodes variant costs seed breakdown trace =
  match
    ( costs_of_string costs,
      match variant with
      | "lock" -> Ok Qsort.Lock
      | "hybrid" | "hybrid-1" -> Ok Qsort.Hybrid1
      | "hybrid-2" -> Ok Qsort.Hybrid2
      | "hybrid-noforward" -> Ok Qsort.Hybrid_nf
      | v -> Error (Printf.sprintf "Quicksort has no variant %S" v) )
  with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok costs, Ok variant ->
    let p = Qsort.default_params in
    let cfg = { (Qsort.config ~nodes p) with System.costs; seed } in
    let sys = System.create cfg in
    if trace > 0 then System.set_tracing sys true;
    let r = Qsort.run sys variant p in
    Format.printf "Quicksort: %d elements, %d leaves, sorted=%b@."
      p.Qsort.elements r.Qsort.leaves r.Qsort.sorted;
    finish ~breakdown ~trace ~sys
      ~label:("QS/" ^ Qsort.variant_name variant)
      ~ok:r.Qsort.sorted r.Qsort.report

let run_water nodes variant costs seed breakdown trace =
  match
    ( costs_of_string costs,
      match variant with
      | "lock" -> Ok Water.Lock
      | "hybrid" -> Ok Water.Hybrid
      | "hybrid-all-release" -> Ok Water.Hybrid_all_release
      | v -> Error (Printf.sprintf "Water has no variant %S" v) )
  with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok costs, Ok variant ->
    let cfg = { (System.default_config ~nodes) with System.costs; seed } in
    let sys = System.create cfg in
    if trace > 0 then System.set_tracing sys true;
    let p = Water.default_params in
    let r = Water.run sys variant p in
    Format.printf "Water: %d molecules, %d steps, energy %.6f (ok=%b)@."
      p.Water.molecules p.Water.steps r.Water.energy r.Water.energy_ok;
    finish ~breakdown ~trace ~sys
      ~label:("Water/" ^ Water.variant_name variant)
      ~ok:r.Water.energy_ok r.Water.report

let costs_cmd =
  let run () =
    Format.printf "default (DEC 3000/300 + OSF/1 + 10 Mbit/s Ethernet):@.%a@.@."
      Cost.pp Cost.default;
    Format.printf "treadmarks (leaner built-in sync path):@.%a@.@." Cost.pp
      Cost.treadmarks;
    Format.printf "fast-network (modern low-latency interconnect):@.%a@."
      Cost.pp Cost.fast_network;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "costs" ~doc:"Print the available virtual-time cost tables.")
    Term.(ret (const run $ const ()))

let app_cmd name doc run =
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      ret
        (const run $ nodes_arg $ variant_arg $ costs_arg $ seed_arg
        $ breakdown_arg $ trace_arg))

let () =
  let doc =
    "CarlOS: message-driven relaxed consistency in a simulated software DSM"
  in
  let info = Cmd.info "carlos_run" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            app_cmd "tsp" "Run the TSP application (paper §5.1)." run_tsp;
            app_cmd "qsort" "Run the Quicksort application (paper §5.2)."
              run_qsort;
            app_cmd "water" "Run the Water application (paper §5.3)."
              run_water;
            costs_cmd;
          ]))
