test/test_net.ml: Alcotest Carlos_net Carlos_sim List QCheck QCheck_alcotest
