test/test_carlos.mli:
