test/test_dsm.ml: Alcotest Array Bytes Carlos_dsm Carlos_vm Gen Int64 List Printf QCheck QCheck_alcotest
