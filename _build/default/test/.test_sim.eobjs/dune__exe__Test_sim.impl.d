test/test_sim.ml: Alcotest Array Buffer Carlos_sim List QCheck QCheck_alcotest
