test/test_carlos.ml: Alcotest Array Carlos Carlos_dsm Carlos_sim Carlos_vm List Printf QCheck QCheck_alcotest String
