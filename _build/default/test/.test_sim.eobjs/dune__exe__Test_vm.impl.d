test/test_vm.ml: Alcotest Bytes Carlos_vm List QCheck QCheck_alcotest
