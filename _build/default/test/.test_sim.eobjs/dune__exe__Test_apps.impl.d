test/test_apps.ml: Alcotest Carlos Carlos_apps Carlos_dsm Carlos_vm List Printf
