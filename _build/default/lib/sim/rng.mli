(** Deterministic splittable pseudo-random generator (SplitMix64).

    The simulator never touches [Random]; every source of randomness is an
    explicit [Rng.t] seeded from the experiment configuration so that runs
    are reproducible bit-for-bit. *)

type t

val create : seed:int -> t

(** Independent child stream; deterministic function of the parent state. *)
val split : t -> t

(** Uniform in [\[0, 2^62)]. *)
val bits : t -> int

(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** Uniform in [\[0.0, 1.0)]. *)
val float : t -> float

(** Bernoulli draw with probability [p]. *)
val flip : t -> p:float -> bool

(** Fisher-Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit
