(** Virtual-time coordination primitives for fibers.

    All blocking operations must be called from inside a fiber of a running
    {!Engine.t}; wake-ups reschedule the blocked fiber at the then-current
    virtual time. *)

(** Write-once cell: the building block for simulated RPC replies. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  (** Fill the cell and wake all readers.  Raises [Invalid_argument] if
      already filled. *)
  val fill : 'a t -> 'a -> unit

  val is_filled : 'a t -> bool

  (** Block until filled, then return the value.  Returns immediately if
      already filled. *)
  val read : 'a t -> 'a
end

(** Unbounded FIFO mailbox. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t

  val send : 'a t -> 'a -> unit

  (** Block until a message is available; messages are delivered in FIFO
      order, one per blocked receiver, in the order receivers arrived. *)
  val recv : 'a t -> 'a

  val length : 'a t -> int
end

(** FIFO mutual-exclusion resource: models a serially reusable device such
    as a node CPU or the shared network medium. *)
module Fifo : sig
  type t

  val create : unit -> t

  val acquire : t -> unit

  val release : t -> unit

  (** [use t dt] acquires, holds the resource for [dt] virtual seconds, and
      releases.  Returns the time spent waiting for the resource. *)
  val use : t -> float -> float

  (** Cumulative virtual time during which the resource was held. *)
  val busy_time : t -> float
end

(** Counting semaphore with FIFO wake order. *)
module Semaphore : sig
  type t

  val create : int -> t

  val wait : t -> unit

  val signal : t -> unit

  val value : t -> int
end

(** Broadcast gate: fibers block on [await] until [open_gate] is called;
    afterwards [await] never blocks. *)
module Gate : sig
  type t

  val create : unit -> t

  val await : t -> unit

  val open_gate : t -> unit

  val is_open : t -> bool
end
