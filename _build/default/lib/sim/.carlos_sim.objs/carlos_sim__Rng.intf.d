lib/sim/rng.mli:
