lib/sim/engine.ml: Effect Heap Printf
