lib/sim/heap.mli:
