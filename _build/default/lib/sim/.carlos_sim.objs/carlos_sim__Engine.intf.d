lib/sim/engine.mli:
