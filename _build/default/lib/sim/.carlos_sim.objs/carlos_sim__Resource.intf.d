lib/sim/resource.mli:
