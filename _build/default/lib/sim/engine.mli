(** Deterministic discrete-event simulation engine with cooperative fibers.

    The engine owns a virtual clock and an event queue.  Code running inside
    the engine is organized as {e fibers}: lightweight cooperative threads
    implemented with OCaml effect handlers, so that protocol and application
    code can be written in direct style ([delay], blocking receives, RPCs)
    while the engine interleaves them deterministically in virtual time.

    Ties between simultaneous events are broken by a global sequence number,
    so a given program always produces the same schedule. *)

type t

val create : unit -> t

(** Current virtual time, in seconds. *)
val now : t -> float

(** Number of events executed so far (diagnostic). *)
val events_executed : t -> int

(** [spawn t f] schedules fiber [f] to start at the current virtual time. *)
val spawn : t -> (unit -> unit) -> unit

(** [at t ~time f] runs callback [f] (not a fiber; it must not block) at
    virtual time [time].  [time] must not be in the past. *)
val at : t -> time:float -> (unit -> unit) -> unit

(** Run until the event queue drains.  If any fiber raised, the first such
    exception is re-raised here after the queue stops. *)
val run : t -> unit

(** {1 Operations available inside a fiber} *)

(** Advance this fiber's virtual time by [dt] seconds (dt >= 0). *)
val delay : float -> unit

(** Virtual time as seen from inside a fiber. *)
val time : unit -> float

(** Start a sibling fiber from inside a fiber. *)
val fork : (unit -> unit) -> unit

(** [suspend register] parks the calling fiber.  [register] receives a
    [resume] thunk that, when invoked (from any other fiber or callback),
    reschedules the parked fiber at the then-current virtual time.  Invoking
    [resume] more than once is an error. *)
val suspend : ((unit -> unit) -> unit) -> unit
