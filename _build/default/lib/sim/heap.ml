type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let size h = h.len

let is_empty h = h.len = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let cap' = if cap = 0 then 16 else cap * 2 in
    let data' = Array.make cap' entry in
    Array.blit h.data 0 data' 0 h.len;
    h.data <- data'
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.len && lt h.data.(left) h.data.(!smallest) then smallest := left;
  if right < h.len && lt h.data.(right) h.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h ~time ~seq value =
  let entry = { time; seq; value } in
  grow h entry;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let min_key h =
  if h.len = 0 then None
  else
    let e = h.data.(0) in
    Some (e.time, e.seq)

let pop_min h =
  if h.len = 0 then None
  else begin
    let e = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (e.time, e.seq, e.value)
  end
