type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next t }

let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let float t =
  let mantissa = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int mantissa *. (1.0 /. 9007199254740992.0)

let flip t ~p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
