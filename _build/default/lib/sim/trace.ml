type event = { time : float; node : int; tag : string; detail : string }

type t = { mutable on : bool; mutable log : event list }

let create ?(enabled = false) () = { on = enabled; log = [] }

let enabled t = t.on

let set_enabled t b = t.on <- b

let record t ~time ~node ~tag ~detail =
  if t.on then t.log <- { time; node; tag; detail } :: t.log

let events t = List.rev t.log

let events_with_tag t tag =
  List.filter (fun e -> String.equal e.tag tag) (events t)

let clear t = t.log <- []

let pp_event ppf e =
  Format.fprintf ppf "[%.6f] n%d %s: %s" e.time e.node e.tag e.detail
