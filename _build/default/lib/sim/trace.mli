(** Lightweight structured event trace.

    Tracing is off by default and costs one branch per event when disabled.
    Used by tests to assert on protocol event orderings and by the CLI's
    [--trace] flag. *)

type t

type event = { time : float; node : int; tag : string; detail : string }

val create : ?enabled:bool -> unit -> t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** Record an event at virtual time [time] (pass [Engine.now]). *)
val record : t -> time:float -> node:int -> tag:string -> detail:string -> unit

(** All recorded events, oldest first. *)
val events : t -> event list

(** Events whose [tag] equals the argument, oldest first. *)
val events_with_tag : t -> string -> event list

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
