type t = {
  mutable clock : float;
  queue : (unit -> unit) Heap.t;
  mutable next_seq : int;
  mutable executed : int;
  mutable failure : exn option;
}

type _ Effect.t +=
  | Delay : (t * float) -> unit Effect.t
  | Time : float Effect.t
  | Fork : (unit -> unit) -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

(* The engine currently executing; used only to give fiber-level operations
   ([delay], [time], ...) an implicit engine argument.  The simulator is
   single-domain, so a plain ref is safe. *)
let current : t option ref = ref None

let create () =
  { clock = 0.0; queue = Heap.create (); next_seq = 0; executed = 0;
    failure = None }

let now t = t.clock

let events_executed t = t.executed

let schedule t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now %g" time t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.add t.queue ~time ~seq thunk

let at t ~time f = schedule t ~time f

(* Runs [f] as a fiber body under the effect handler that implements the
   blocking operations.  Continuations are always resumed via the event
   queue so that fibers only ever run from the engine loop. *)
let rec start_fiber eng f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e -> if eng.failure = None then eng.failure <- Some e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (t, dt) ->
            Some
              (fun (k : (a, _) continuation) ->
                if dt < 0.0 then
                  discontinue k (Invalid_argument "Engine.delay: negative")
                else
                  schedule t ~time:(t.clock +. dt) (fun () -> continue k ()))
          | Time -> Some (fun k -> continue k eng.clock)
          | Fork g ->
            Some
              (fun k ->
                schedule eng ~time:eng.clock (fun () -> start_fiber eng g);
                continue k ())
          | Suspend register ->
            Some
              (fun k ->
                let resumed = ref false in
                let resume () =
                  if !resumed then
                    invalid_arg "Engine.suspend: resume invoked twice";
                  resumed := true;
                  schedule eng ~time:eng.clock (fun () -> continue k ())
                in
                register resume)
          | _ -> None);
    }

let spawn t f = schedule t ~time:t.clock (fun () -> start_fiber t f)

let run t =
  let saved = !current in
  current := Some t;
  let finish () = current := saved in
  let rec loop () =
    match t.failure with
    | Some e ->
      finish ();
      raise e
    | None -> (
      match Heap.pop_min t.queue with
      | None -> finish ()
      | Some (time, _, thunk) ->
        t.clock <- time;
        t.executed <- t.executed + 1;
        thunk ();
        loop ())
  in
  loop ()

let delay dt =
  match !current with
  | None -> invalid_arg "Engine.delay: not inside a running engine"
  | Some eng -> Effect.perform (Delay (eng, dt))

let time () = Effect.perform Time

let fork f = Effect.perform (Fork f)

let suspend register = Effect.perform (Suspend register)
