(** Binary min-heap keyed by [(time, seq)] pairs.

    The heap is the event queue of the simulation engine.  Keys are compared
    lexicographically: earlier virtual time first, and among simultaneous
    events the lower sequence number first, which gives the engine a total,
    deterministic order. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

(** [add h ~time ~seq v] inserts [v] with key [(time, seq)]. *)
val add : 'a t -> time:float -> seq:int -> 'a -> unit

(** Smallest key currently in the heap, if any. *)
val min_key : 'a t -> (float * int) option

(** Remove and return the entry with the smallest key. *)
val pop_min : 'a t -> (float * int * 'a) option
