(** Shared broadcast medium modelling the paper's isolated 10 Mbit/s
    Ethernet segment.

    All frames from all nodes serialize through one FIFO transmission
    resource (CSMA contention is approximated by FIFO queueing, which is
    accurate for a lightly-to-moderately loaded segment and deterministic).
    A frame occupies the wire for [size / bandwidth] seconds and is then
    delivered after a fixed propagation-plus-interrupt [latency].

    The medium is polymorphic in the payload it carries; upper layers
    (datagram service, sliding-window protocol) choose their own frame
    types. *)

type 'a t

(** [create engine ~nodes ~latency ~bandwidth] builds a medium connecting
    [nodes] stations.  [bandwidth] is in bytes per second; [latency] in
    seconds covers propagation plus receive-side interrupt dispatch. *)
val create :
  Carlos_sim.Engine.t -> nodes:int -> latency:float -> bandwidth:float -> 'a t

val nodes : 'a t -> int

(** Install the receive upcall for a station.  The upcall runs in a fresh
    fiber at delivery time and may block. *)
val set_handler : 'a t -> node:int -> (src:int -> size:int -> 'a -> unit) -> unit

(** [send t ~src ~dst ~size payload] queues a frame for transmission.
    Non-blocking for the caller (the NIC DMAs the frame out); the frame
    contends for the shared wire in FIFO order.  [size] is the full frame
    size in bytes, headers included. *)
val send : 'a t -> src:int -> dst:int -> size:int -> 'a -> unit

(** {1 Statistics} *)

val frames_sent : 'a t -> int

val bytes_sent : 'a t -> int

(** Cumulative virtual time the wire was busy transmitting. *)
val wire_busy_time : 'a t -> float

(** [utilization t ~elapsed] is the fraction of [elapsed] during which the
    wire was transmitting. *)
val utilization : 'a t -> elapsed:float -> float

val reset_stats : 'a t -> unit
