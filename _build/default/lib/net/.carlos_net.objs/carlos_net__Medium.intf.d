lib/net/medium.mli: Carlos_sim
