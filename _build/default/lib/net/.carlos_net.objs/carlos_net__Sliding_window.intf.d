lib/net/sliding_window.mli: Carlos_sim Datagram
