lib/net/sliding_window.ml: Array Carlos_sim Datagram Float Hashtbl Queue
