lib/net/medium.ml: Array Carlos_sim Printf
