lib/net/datagram.ml: Carlos_sim Medium
