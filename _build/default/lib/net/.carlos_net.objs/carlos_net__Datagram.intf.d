lib/net/datagram.mli: Carlos_sim Medium
