module Engine = Carlos_sim.Engine
module Resource = Carlos_sim.Resource

type 'a handler = src:int -> size:int -> 'a -> unit

type 'a t = {
  engine : Engine.t;
  node_count : int;
  latency : float;
  bandwidth : float;
  wire : Resource.Fifo.t;
  handlers : 'a handler option array;
  mutable frames : int;
  mutable bytes : int;
  mutable busy_base : float;
}

let create engine ~nodes ~latency ~bandwidth =
  if nodes <= 0 then invalid_arg "Medium.create: nodes must be positive";
  if bandwidth <= 0.0 then invalid_arg "Medium.create: bandwidth must be positive";
  {
    engine;
    node_count = nodes;
    latency;
    bandwidth;
    wire = Resource.Fifo.create ();
    handlers = Array.make nodes None;
    frames = 0;
    bytes = 0;
    busy_base = 0.0;
  }

let nodes t = t.node_count

let check_node t node =
  if node < 0 || node >= t.node_count then
    invalid_arg (Printf.sprintf "Medium: bad node %d" node)

let set_handler t ~node handler =
  check_node t node;
  t.handlers.(node) <- Some handler

let send t ~src ~dst ~size payload =
  check_node t src;
  check_node t dst;
  if size <= 0 then invalid_arg "Medium.send: size must be positive";
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + size;
  Engine.spawn t.engine (fun () ->
      let transmit_time = float_of_int size /. t.bandwidth in
      let _waited = Resource.Fifo.use t.wire transmit_time in
      Engine.delay t.latency;
      match t.handlers.(dst) with
      | None -> ()
      | Some handler -> handler ~src ~size payload)

let frames_sent t = t.frames

let bytes_sent t = t.bytes

let wire_busy_time t = Resource.Fifo.busy_time t.wire -. t.busy_base

let utilization t ~elapsed =
  if elapsed <= 0.0 then 0.0 else wire_busy_time t /. elapsed

let reset_stats t =
  t.frames <- 0;
  t.bytes <- 0;
  t.busy_base <- Resource.Fifo.busy_time t.wire
