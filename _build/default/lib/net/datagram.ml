module Rng = Carlos_sim.Rng

(* 14 (Ethernet) + 20 (IP) + 8 (UDP). *)
let header_bytes = 42

type 'a t = {
  medium : 'a Medium.t;
  loss : float;
  rng : Rng.t option;
  mutable sent : int;
  mutable dropped : int;
  mutable payload_bytes : int;
}

let create medium ?(loss = 0.0) ?rng () =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Datagram.create: bad loss";
  if loss > 0.0 && rng = None then
    invalid_arg "Datagram.create: loss requires an rng";
  { medium; loss; rng; sent = 0; dropped = 0; payload_bytes = 0 }

let nodes t = Medium.nodes t.medium

let set_handler t ~node handler =
  Medium.set_handler t.medium ~node (fun ~src ~size v ->
      handler ~src ~size:(size - header_bytes) v)

let dropped t =
  t.loss > 0.0
  &&
  match t.rng with
  | Some rng -> Rng.flip rng ~p:t.loss
  | None -> false

let send t ~src ~dst ~payload_bytes v =
  if payload_bytes < 0 then invalid_arg "Datagram.send: negative size";
  t.sent <- t.sent + 1;
  t.payload_bytes <- t.payload_bytes + payload_bytes;
  if dropped t then t.dropped <- t.dropped + 1
  else
    Medium.send t.medium ~src ~dst ~size:(payload_bytes + header_bytes) v

let datagrams_sent t = t.sent

let datagrams_dropped t = t.dropped

let payload_bytes_sent t = t.payload_bytes

let reset_stats t =
  t.sent <- 0;
  t.dropped <- 0;
  t.payload_bytes <- 0
