(** Per-node execution-time breakdown, as in the paper's Figure 2.

    Every virtual second of CPU consumed on a node is attributed to one of
    three buckets; idle time is what remains of wall-clock time:

    - [User]: application computation;
    - [Unix]: operating-system costs (system calls, protocol stack);
    - [Carlos]: CarlOS message handling and shared-memory consistency
      machinery.

    The record counts CPU {e demand}; contention for the node CPU shows up
    as idle time, exactly as it would under a profiler. *)

type bucket = User | Unix | Carlos

type t

val create : unit -> t

val add : t -> bucket -> float -> unit

val user : t -> float

val unix : t -> float

val carlos : t -> float

val busy : t -> float

(** [idle t ~wall] = [wall - busy t] (never negative). *)
val idle : t -> wall:float -> float

val reset : t -> unit

val pp : Format.formatter -> t -> unit
