(** User-level multithreading support (paper §4.4).

    TreadMarks allocates one thread of control per node, so a node idles
    whenever it blocks on a page or diff fault.  CarlOS is designed to
    support multiple user threads per node: an upcall to a user-level
    scheduler runs whenever a thread is about to block on a remote
    coherent-memory operation, so another thread can run and mask the
    latency ("multiprogramming is the classic technique for hiding the
    latencies of blocking operations").

    This package is one such thread library built on those hooks.  Each
    thread is a cooperative fiber of the node; when a thread blocks in the
    consistency layer (fault, lock, dequeue), the node's other threads keep
    running. *)

type t

(** A thread pool bound to one node. *)
val create : Node.t -> t

val node : t -> Node.t

(** Start a thread.  Threads run cooperatively; they interleave at
    blocking points (faults, message waits, [yield]). *)
val spawn : t -> (unit -> unit) -> unit

(** Let other threads of this node run. *)
val yield : t -> unit

(** Block until every spawned thread has finished.  New threads may be
    spawned while waiting. *)
val join_all : t -> unit

(** Threads currently running or runnable. *)
val live : t -> int

(** Cumulative threads spawned (diagnostic). *)
val spawned : t -> int
