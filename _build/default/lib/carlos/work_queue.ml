module Ivar = Carlos_sim.Resource.Ivar

type mode = Forwarding | All_release | No_forwarding

(* An item held at the manager: either the stored enqueue message itself
   (forwarding modes) or just the accepted value (No_forwarding). *)
type 'a held =
  | Stored of Node.delivery
  | Value of { item : 'a; bytes : int }

type 'a t = {
  manager : int;
  name : string;
  mode : mode;
  items : 'a held Queue.t;
  waiters : int Queue.t;
  mutable closed : bool;
  gates : 'a option Ivar.t Queue.t array; (* per node, parked dequeues *)
}

let create system ~manager ~name ?(mode = Forwarding) () =
  let nodes = System.node_count system in
  if manager < 0 || manager >= nodes then
    invalid_arg "Work_queue.create: manager";
  {
    manager;
    name;
    mode;
    items = Queue.create ();
    waiters = Queue.create ();
    closed = false;
    gates = Array.init nodes (fun _ -> Queue.create ());
  }

let deliver_local t here result =
  let q = t.gates.(Node.id here) in
  if Queue.is_empty q then
    raise (Node.Handler_error (t.name ^ ": reply with no parked dequeue"))
  else Ivar.fill (Queue.pop q) result

(* Answer a waiting dequeuer with [held] (runs at the manager). *)
let hand_over t manager_node ~dst held =
  match held with
  | Stored d -> Node.forward d ~dst
  | Value { item; bytes } ->
    Node.send manager_node ~dst ~annotation:Annotation.Release
      ~payload_bytes:(8 + bytes)
      ~handler:(fun here reply ->
        Node.accept reply;
        deliver_local t here (Some item))

let answer_closed t manager_node ~dst =
  Node.send manager_node ~dst ~annotation:Annotation.None_ ~payload_bytes:8
    ~handler:(fun here reply ->
      Node.accept reply;
      deliver_local t here None)

let enqueue t node ~bytes item =
  (* The enqueue handler travels with the message.  At the manager it is
     stored (or accepted in No_forwarding mode); when forwarded onward, it
     runs again at the dequeuer and completes the hand-off. *)
  let hop = ref `At_manager in
  Node.send node ~dst:t.manager ~annotation:Annotation.Release
    ~payload_bytes:(8 + bytes)
    ~handler:(fun here d ->
      match !hop with
      | `At_manager -> (
        (match t.mode with
        | Forwarding | All_release -> ()
        | No_forwarding -> Node.accept d);
        hop := `At_dequeuer;
        let held =
          match t.mode with
          | Forwarding | All_release ->
            Node.store d;
            Stored d
          | No_forwarding -> Value { item; bytes }
        in
        if Queue.is_empty t.waiters then Queue.add held t.items
        else hand_over t here ~dst:(Queue.pop t.waiters) held)
      | `At_dequeuer ->
        Node.accept d;
        deliver_local t here (Some item))

let dequeue t node =
  let me = Node.id node in
  let gate = Ivar.create () in
  Queue.add gate t.gates.(me);
  let annotation =
    match t.mode with
    | Forwarding | No_forwarding -> Annotation.Request
    | All_release -> Annotation.Release
  in
  Node.send node ~dst:t.manager ~annotation ~payload_bytes:16
    ~handler:(fun manager_node d ->
      Node.accept d;
      if not (Queue.is_empty t.items) then
        hand_over t manager_node ~dst:me (Queue.pop t.items)
      else if t.closed then answer_closed t manager_node ~dst:me
      else Queue.add me t.waiters);
  Node.await node gate

let close t node =
  Node.send node ~dst:t.manager ~annotation:Annotation.None_ ~payload_bytes:8
    ~handler:(fun manager_node d ->
      Node.accept d;
      t.closed <- true;
      while not (Queue.is_empty t.waiters) do
        answer_closed t manager_node ~dst:(Queue.pop t.waiters)
      done)

let length t = Queue.length t.items
