(** TreadMarks-style global barrier built from annotated messages
    (paper §3).

    Clients arriving at the barrier send arrival messages to the manager —
    [RELEASE_NT] for the default global barrier, since the union of every
    node's own intervals is a globally consistent view, or full [RELEASE]
    for the transitive variant (the paper's "two kinds of barrier").  The
    manager {e stores} arrivals until everyone is in, accepts them as a
    batch (becoming consistent with all clients), and then signals the
    fall of the barrier with departure messages marked [RELEASE]: each
    client, on accepting its departure, is consistent with the manager and
    hence with every other client. *)

type t

(** [create system ~manager ~name ~transitive] — [transitive:false]
    (default) uses RELEASE_NT arrivals. *)
val create :
  System.t -> manager:int -> name:string -> ?transitive:bool -> unit -> t

(** Block until all [node_count] nodes have arrived.  Reusable across any
    number of episodes. *)
val wait : t -> Node.t -> unit

(** Completed episodes. *)
val episodes : t -> int
