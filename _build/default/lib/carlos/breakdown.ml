type bucket = User | Unix | Carlos

type t = { mutable user : float; mutable unix : float; mutable carlos : float }

let create () = { user = 0.0; unix = 0.0; carlos = 0.0 }

let add t bucket dt =
  if dt < 0.0 then invalid_arg "Breakdown.add: negative time";
  match bucket with
  | User -> t.user <- t.user +. dt
  | Unix -> t.unix <- t.unix +. dt
  | Carlos -> t.carlos <- t.carlos +. dt

let user t = t.user

let unix t = t.unix

let carlos t = t.carlos

let busy t = t.user +. t.unix +. t.carlos

let idle t ~wall = Float.max 0.0 (wall -. busy t)

let reset t =
  t.user <- 0.0;
  t.unix <- 0.0;
  t.carlos <- 0.0

let pp ppf t =
  Format.fprintf ppf "user=%.3fs unix=%.3fs carlos=%.3fs" t.user t.unix
    t.carlos
