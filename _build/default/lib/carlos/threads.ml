module Engine = Carlos_sim.Engine
module Ivar = Carlos_sim.Resource.Ivar

type t = {
  node : Node.t;
  mutable live : int;
  mutable spawned : int;
  mutable joiners : unit Ivar.t list;
}

let create node = { node; live = 0; spawned = 0; joiners = [] }

let node t = t.node

let finish t =
  t.live <- t.live - 1;
  if t.live = 0 then begin
    let joiners = t.joiners in
    t.joiners <- [];
    List.iter (fun iv -> Ivar.fill iv ()) joiners
  end

let spawn t f =
  t.live <- t.live + 1;
  t.spawned <- t.spawned + 1;
  Engine.spawn (Node.engine t.node) (fun () ->
      match f () with
      | () -> finish t
      | exception e ->
        finish t;
        raise e)

let yield t =
  (* Charge any accumulated computation so the interleaving reflects the
     work done, then reschedule at the current instant. *)
  Node.flush_compute t.node;
  Engine.suspend (fun resume -> Engine.at (Node.engine t.node) ~time:(Node.time t.node) resume)

let join_all t =
  if t.live > 0 then begin
    let iv = Ivar.create () in
    t.joiners <- iv :: t.joiners;
    Node.await t.node iv
  end

let live t = t.live

let spawned t = t.spawned
