(** Counting semaphore and condition variable with manager-based message
    protocols ("Semaphores and condition variables have similar
    implementations", paper §3).

    The semaphore's V is a [RELEASE] to the manager (the manager accepts
    it, becoming consistent with the signaller); a granted P receives a
    [RELEASE] from the manager, so the waiter becomes transitively
    consistent with the V that woke it. *)

module Semaphore : sig
  type t

  val create :
    System.t -> manager:int -> name:string -> initial:int -> t

  (** P / wait: blocks until a unit is available. *)
  val wait : t -> Node.t -> unit

  (** V / signal: asynchronous. *)
  val signal : t -> Node.t -> unit

  (** Current count as known at the manager (diagnostic). *)
  val value : t -> int
end

(** Condition variable to be used under a {!Msg_lock.t}.  [signal] relays
    the signaller's [RELEASE] to one waiter through the manager using the
    forwarding mechanism, so the manager itself never becomes consistent
    with the signaller. *)
module Condition : sig
  type t

  val create : System.t -> manager:int -> name:string -> t

  (** Atomically release [lock], wait for a signal, and re-acquire
      [lock]. *)
  val wait : t -> Node.t -> lock:Msg_lock.t -> unit

  (** Wake one waiter (no-op if none). *)
  val signal : t -> Node.t -> unit

  (** Wake all waiters.  The manager accepts the broadcast and re-releases
      to each waiter (documented deviation: forwarding duplicates a single
      message, so broadcast is manager-mediated). *)
  val broadcast : t -> Node.t -> unit
end
