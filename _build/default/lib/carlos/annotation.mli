(** Memory-consistency annotations carried by every CarlOS user-level
    message (paper §2.1).

    - [Release]: synchronizing.  Sending is a release event; accepting is
      the matching acquire.  Everything visible at the sender before the
      send becomes visible at the receiver when it accepts.
    - [Release_nt]: non-transitive release; carries only consistency
      information about intervals created at the sending node.  Intended
      for global-barrier arrivals, where the manager merges all
      contributions.
    - [Request]: non-synchronizing, but piggybacks the sender's vector
      timestamp so that the RELEASE sent in response can be tailored
      precisely.
    - [None_]: non-synchronizing; does not interact with the consistency
      machinery at all. *)

type t = Release | Release_nt | Request | None_

(** [synchronizing t] is true for [Release] and [Release_nt]. *)
val synchronizing : t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** All four annotations, for exhaustive sweeps in tests and benches. *)
val all : t list
