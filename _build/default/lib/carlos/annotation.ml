type t = Release | Release_nt | Request | None_

let synchronizing = function
  | Release | Release_nt -> true
  | Request | None_ -> false

let to_string = function
  | Release -> "RELEASE"
  | Release_nt -> "RELEASE_NT"
  | Request -> "REQUEST"
  | None_ -> "NONE"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all = [ Release; Release_nt; Request; None_ ]
