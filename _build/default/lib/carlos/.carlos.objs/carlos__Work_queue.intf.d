lib/carlos/work_queue.mli: Node System
