lib/carlos/msg_lock.mli: Node System
