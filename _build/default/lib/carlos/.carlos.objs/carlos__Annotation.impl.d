lib/carlos/annotation.ml: Format
