lib/carlos/breakdown.mli: Format
