lib/carlos/annotation.mli: Format
