lib/carlos/threads.ml: Carlos_sim List Node
