lib/carlos/node.ml: Annotation Breakdown Carlos_dsm Carlos_sim Carlos_vm Float List Printf
