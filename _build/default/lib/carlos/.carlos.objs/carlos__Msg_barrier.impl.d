lib/carlos/msg_barrier.ml: Annotation Carlos_sim List Node System
