lib/carlos/msg_semaphore.ml: Annotation Array Carlos_sim Msg_lock Node Queue System
