lib/carlos/node.mli: Annotation Breakdown Carlos_dsm Carlos_sim Carlos_vm
