lib/carlos/breakdown.ml: Float Format
