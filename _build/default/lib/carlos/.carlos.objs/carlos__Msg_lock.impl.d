lib/carlos/msg_lock.ml: Annotation Array Carlos_sim Node Printf System
