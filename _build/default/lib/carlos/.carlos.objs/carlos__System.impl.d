lib/carlos/system.ml: Annotation Array Breakdown Bytes Carlos_dsm Carlos_net Carlos_sim Carlos_vm Float Int64 List Node Printf
