lib/carlos/msg_barrier.mli: Node System
