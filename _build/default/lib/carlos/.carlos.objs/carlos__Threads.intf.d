lib/carlos/threads.mli: Node
