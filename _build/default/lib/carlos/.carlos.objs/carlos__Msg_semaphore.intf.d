lib/carlos/msg_semaphore.mli: Msg_lock Node System
