lib/carlos/work_queue.ml: Annotation Array Carlos_sim Node Queue System
