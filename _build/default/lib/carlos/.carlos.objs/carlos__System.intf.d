lib/carlos/system.mli: Carlos_dsm Carlos_sim Carlos_vm Node
