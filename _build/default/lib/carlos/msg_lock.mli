(** The standard CarlOS lock: a distributed-queue protocol built from
    annotated messages (paper §3).

    To acquire, a node sends a [REQUEST] to the lock's manager, which
    forwards it to the node that last requested the lock (the tail of the
    distributed queue).  If that node no longer holds the lock it replies
    immediately with a [RELEASE] grant; otherwise it remembers the
    requester and grants on its own release.  The [REQUEST] piggybacks the
    requester's vector timestamp, so the grant carries precisely the
    consistency information the requester lacks — and, unlike a
    shared-memory lock, the request leg induces no consistency at all
    (Figure 1's asymmetry). *)

type t

(** [create system ~manager ~name] — [name] only aids tracing. *)
val create : System.t -> manager:int -> name:string -> t

(** Blocks the calling fiber until the lock is granted.  Accepting the
    grant makes this node consistent with the previous holder. *)
val acquire : t -> Node.t -> unit

val release : t -> Node.t -> unit

(** [with_lock t node f] = acquire; [f ()]; release (also on exception). *)
val with_lock : t -> Node.t -> (unit -> 'a) -> 'a

(** True while the calling node holds the lock (local knowledge). *)
val held : t -> Node.t -> bool

(** Total acquisitions granted so far (diagnostic). *)
val acquisitions : t -> int

(** Cumulative virtual time callers spent blocked in [acquire]. *)
val wait_time : t -> float

(** Cumulative virtual time the lock was held. *)
val held_time : t -> float
