(** Intervals and write notices (paper §4.2).

    The execution history of each node is divided into an indexed sequence
    of intervals whose endpoints occur at release and acquire events.  Each
    interval is summarized by a list of write notices, one for each page
    modified in it. *)

(** Globally unique interval identifier: [index] is the creator's [index]th
    interval (the creator's vector-clock component at creation). *)
type id = { creator : int; index : int }

type t = {
  id : id;
  vc : Vc.t; (* creator's vector timestamp at creation *)
  write_notices : int list; (* pages modified during the interval *)
}

val make : creator:int -> index:int -> vc:Vc.t -> write_notices:int list -> t

(** Wire size of an interval description: the vector timestamp plus a 4-byte
    id and 4 bytes per write notice. *)
val size_bytes : t -> int

(** Sort interval records into a linear extension of causal order
    (ascending vector-clock sum, ties broken by creator then index). *)
val causal_sort : t list -> t list

val pp_id : Format.formatter -> id -> unit

val pp : Format.formatter -> t -> unit
