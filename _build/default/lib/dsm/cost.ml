type t = {
  send_syscall : float;
  recv_syscall : float;
  handler_dispatch : float;
  vc_piggyback : float;
  release_fixed : float;
  interval_create : float;
  write_notice_apply : float;
  page_protect : float;
  fault_trap : float;
  twin_per_byte : float;
  diff_scan_per_byte : float;
  diff_data_per_byte : float;
  diff_request_fixed : float;
}

let us x = x *. 1e-6

let default =
  {
    send_syscall = us 220.0;
    recv_syscall = us 220.0;
    handler_dispatch = us 25.0;
    vc_piggyback = us 5.0;
    release_fixed = us 30.0;
    interval_create = us 15.0;
    write_notice_apply = us 25.0;
    page_protect = us 12.0;
    fault_trap = us 60.0;
    twin_per_byte = us 0.004; (* ~16 us to copy a 4 KB page *)
    diff_scan_per_byte = us 0.006; (* ~25 us to scan a 4 KB page *)
    diff_data_per_byte = us 0.008;
    diff_request_fixed = us 40.0;
  }

(* TreadMarks' built-in synchronization avoids the generality of the
   CarlOS active-message path: leaner dispatch and no annotation
   processing.  Used for the paper's "unmodified applications on
   TreadMarks vs on CarlOS" comparison (5-6% penalty on CarlOS). *)
let treadmarks =
  {
    default with
    send_syscall = us 200.0;
    recv_syscall = us 200.0;
    handler_dispatch = us 8.0;
    release_fixed = us 20.0;
  }

let fast_network =
  {
    default with
    send_syscall = us 4.0;
    recv_syscall = us 4.0;
    handler_dispatch = us 2.0;
  }

let pp ppf t =
  let f name v = Format.fprintf ppf "%s = %.1f us@," name (v *. 1e6) in
  Format.pp_open_vbox ppf 0;
  f "send_syscall" t.send_syscall;
  f "recv_syscall" t.recv_syscall;
  f "handler_dispatch" t.handler_dispatch;
  f "vc_piggyback" t.vc_piggyback;
  f "release_fixed" t.release_fixed;
  f "interval_create" t.interval_create;
  f "write_notice_apply" t.write_notice_apply;
  f "page_protect" t.page_protect;
  f "fault_trap" t.fault_trap;
  f "twin_per_byte" t.twin_per_byte;
  f "diff_scan_per_byte" t.diff_scan_per_byte;
  f "diff_data_per_byte" t.diff_data_per_byte;
  f "diff_request_fixed" t.diff_request_fixed;
  Format.pp_close_box ppf ()
