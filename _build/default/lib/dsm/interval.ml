type id = { creator : int; index : int }

type t = { id : id; vc : Vc.t; write_notices : int list }

let make ~creator ~index ~vc ~write_notices =
  if index <= 0 then invalid_arg "Interval.make: index must be positive";
  if Vc.get vc creator <> index then
    invalid_arg "Interval.make: vc does not match index";
  { id = { creator; index }; vc; write_notices }

let size_bytes t = Vc.size_bytes t.vc + 4 + (4 * List.length t.write_notices)

let causal_sort intervals =
  let key i = (Vc.sum i.vc, i.id.creator, i.id.index) in
  List.sort (fun a b -> compare (key a) (key b)) intervals

let pp_id ppf { creator; index } = Format.fprintf ppf "%d.%d" creator index

let pp ppf t =
  Format.fprintf ppf "@[interval %a %a wn=[%s]@]" pp_id t.id Vc.pp t.vc
    (String.concat ";" (List.map string_of_int t.write_notices))
