lib/dsm/lrc.mli: Bytes Carlos_vm Cost Interval Vc
