lib/dsm/lrc.ml: Array Bytes Carlos_sim Carlos_vm Cost Hashtbl Interval List Option Printf Vc
