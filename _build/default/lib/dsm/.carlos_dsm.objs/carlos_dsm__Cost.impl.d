lib/dsm/cost.ml: Format
