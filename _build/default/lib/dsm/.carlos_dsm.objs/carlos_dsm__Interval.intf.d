lib/dsm/interval.mli: Format Vc
