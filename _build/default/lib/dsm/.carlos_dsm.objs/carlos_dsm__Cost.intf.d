lib/dsm/cost.mli: Format
