lib/dsm/vc.ml: Array Format String
