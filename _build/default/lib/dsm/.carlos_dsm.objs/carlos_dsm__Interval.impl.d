lib/dsm/interval.ml: Format List String Vc
