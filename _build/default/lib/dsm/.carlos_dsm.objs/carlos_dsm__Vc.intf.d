lib/dsm/vc.mli: Format
