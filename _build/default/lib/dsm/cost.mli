(** Virtual-time cost model, calibrated to the paper's testbed (150 MHz
    Alpha AXP, DEC OSF/1 v1.3, UDP/IP over 10 Mbit/s Ethernet).

    All values are in seconds of virtual time.  The defaults reproduce the
    per-operation costs the paper reports in §5.4 (e.g. ~30 µs extra for a
    RELEASE message, 5–15 µs for vector-timestamp handling, tens of µs per
    write notice); experiments may override any field, which is how the
    "modern network" ablations are expressed. *)

type t = {
  (* Operating-system and messaging costs (the paper's "Unix" bucket). *)
  send_syscall : float; (* UDP sendto + protocol stack, per message *)
  recv_syscall : float; (* interrupt + recvfrom, per message *)
  (* CarlOS message machinery (the "CarlOS" bucket). *)
  handler_dispatch : float; (* active-message handler invocation *)
  vc_piggyback : float; (* attach/strip a vector timestamp (REQUEST) *)
  release_fixed : float; (* fixed extra work for a RELEASE message *)
  interval_create : float; (* closing an interval, logging it *)
  write_notice_apply : float; (* per write notice accepted *)
  page_protect : float; (* one simulated mprotect call *)
  fault_trap : float; (* SIGSEGV delivery + dispatch *)
  twin_per_byte : float; (* twin creation memcpy, per byte *)
  diff_scan_per_byte : float; (* page/twin comparison, per byte *)
  diff_data_per_byte : float; (* encode/apply, per changed byte *)
  diff_request_fixed : float; (* assembling/serving one diff request *)
}

(** Defaults described above. *)
val default : t

(** TreadMarks' leaner built-in message path (no active-message
    generality), for the paper's TreadMarks-vs-CarlOS comparison. *)
val treadmarks : t

(** A cost table for a "modern" low-latency interconnect: messaging costs
    cut by ~50x, memory-machinery costs kept — used by the §5.4/§6 ablation
    arguing annotation choice matters more on fast networks. *)
val fast_network : t

val pp : Format.formatter -> t -> unit
