(** The Traveling Salesman Problem application (paper §5.1).

    Branch-and-bound search for the shortest tour through [cities] cities.
    Node 0 expands the search tree to [prefix_depth] and publishes one
    descriptor per live prefix; workers take prefixes and solve them by
    depth-first branch-and-bound, sharing the global best bound.

    Variants:
    - [Lock]: the work pool is a shared stack in coherent memory protected
      by a lock; the bound is updated under a second lock (the original
      "strictly shared memory" program).
    - [Hybrid]: the work pool is the centralized message queue (dequeue
      [REQUEST] / reply [RELEASE]); a better bound is posted to the master
      in a [REQUEST], the master writes it to shared memory and replies
      with a [RELEASE] (coherent shared memory still distributes the
      bound and the tour descriptors).
    - [Hybrid_all_release]: the hybrid with every queue/bound message
      marked [RELEASE] (the §5.4 ablation). *)

type variant = Lock | Hybrid | Hybrid_all_release

val variant_name : variant -> string

type params = {
  cities : int;
  seed : int;
  prefix_depth : int; (* descriptors fix at most this many cities *)
  expand_frac : float;
      (* prefixes are split further only while shorter than this fraction
         of the initial bound (adaptive task grain) *)
  visit_cost : float; (* virtual seconds per search-tree node *)
  bound_check_period : int; (* re-read the global bound every k visits *)
}

(** 19 cities, as in the paper. *)
val default_params : params

type result = {
  best : int; (* tour length found (scaled integer distance) *)
  visited : int; (* search-tree nodes expanded, all nodes *)
  report : Carlos.System.report;
  lock_stats : (string * int * float * float) list;
      (* per lock: name, acquisitions, total wait, total held *)
}

(** Sequential reference solution (no simulator), for verification. *)
val solve_reference : params -> int

(** Number of work-pool tasks the parameters produce. *)
val task_count : params -> int

(** Run on a fresh system.  The result's [best] must equal
    [solve_reference params]. *)
val run : Carlos.System.t -> variant -> params -> result
