(** The Quicksort application (paper §5.2).

    Sorts an array of 256K integers living in coherent shared memory.
    Workers take subarray descriptors from a shared pool; a subarray larger
    than the threshold is partitioned, the smaller half is pushed back to
    the pool and the larger half kept; subarrays at or below the threshold
    are sorted locally (the paper uses Bubblesort — we run a fast native
    sort over the same shared-memory accesses and charge Bubblesort's
    quadratic cost in virtual time).  When everything is sorted, a barrier
    collects the sorted subarrays at node 0.

    Variants (paper Table 2):
    - [Lock]: shared work stack in coherent memory under a lock.
    - [Hybrid1]: non-migrating work queue at a manager that also sorts;
      enqueues are stored RELEASE messages forwarded to dequeuers.
    - [Hybrid2]: all queue messages marked RELEASE.
    - [Hybrid_nf]: the forwarding mechanism disabled (the manager accepts
      enqueues); the paper reports performance "nearly identical" to
      Hybrid-2. *)

type variant = Lock | Hybrid1 | Hybrid2 | Hybrid_nf

val variant_name : variant -> string

type params = {
  elements : int; (* 256 * 1024 in the paper *)
  threshold : int; (* 1K: below this, sort locally *)
  seed : int;
  compare_cost : float; (* virtual seconds per comparison/move *)
  partition_cost : float; (* virtual seconds per element partitioned *)
}

val default_params : params

type result = {
  sorted : bool; (* verified by node 0 after the final barrier *)
  leaves : int; (* locally sorted subarrays *)
  report : Carlos.System.report;
}

val run : Carlos.System.t -> variant -> params -> result

(** A system configuration sized for this application (coherent region
    large enough for the array). *)
val config : ?nodes:int -> params -> Carlos.System.config
