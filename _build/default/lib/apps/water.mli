(** The Water application (paper §5.3): a molecular-dynamics simulation in
    the style of the SPLASH benchmark, simplified to a pairwise
    cutoff-force model with the same communication pattern.

    Each iteration has phases separated by barriers: position integration,
    pairwise force computation (each processor handles the interactions of
    its N/P molecules with half of the others, accumulating privately and
    then applying one update per molecule), and velocity integration.

    Variants (paper Table 3):
    - [Lock]: each molecule's accumulated force is updated under that
      molecule's lock (lock-update-unlock).
    - [Hybrid]: the update is shipped to the molecule's owner in a [NONE]
      message that invokes the update function there; the sequential
      delivery of CarlOS messages makes the updates atomic without any
      locks. *)

type variant = Lock | Hybrid | Hybrid_all_release

val variant_name : variant -> string

type params = {
  molecules : int; (* 343 in the paper *)
  steps : int; (* 5 in the paper *)
  seed : int;
  cutoff : float; (* interaction cutoff distance *)
  pair_check_cost : float; (* per examined pair *)
  pair_force_cost : float; (* per within-cutoff interaction *)
  integrate_cost : float; (* per molecule per integration phase *)
}

val default_params : params

type result = {
  energy : float; (* system invariant checked against the reference *)
  energy_ok : bool; (* within tolerance of the sequential reference *)
  report : Carlos.System.report;
}

(** Sequential reference energy after [steps] iterations. *)
val reference_energy : params -> float

val run : Carlos.System.t -> variant -> params -> result
