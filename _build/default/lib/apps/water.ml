module Rng = Carlos_sim.Rng
module Resource = Carlos_sim.Resource
module Shm = Carlos_vm.Shm
module System = Carlos.System
module Node = Carlos.Node
module Annotation = Carlos.Annotation
module Msg_lock = Carlos.Msg_lock
module Msg_barrier = Carlos.Msg_barrier

type variant = Lock | Hybrid | Hybrid_all_release

let variant_name = function
  | Lock -> "lock"
  | Hybrid -> "hybrid"
  | Hybrid_all_release -> "hybrid-all-release"

type params = {
  molecules : int;
  steps : int;
  seed : int;
  cutoff : float;
  pair_check_cost : float;
  pair_force_cost : float;
  integrate_cost : float;
}

let default_params =
  {
    molecules = 343;
    steps = 5;
    seed = 343;
    cutoff = 2.6;
    pair_check_cost = 11e-6;
    pair_force_cost = 700e-6;
    integrate_cost = 30e-6;
  }

type result = { energy : float; energy_ok : bool; report : System.report }

(* ------------------------------------------------------------------ *)
(* Physics: soft-sphere molecules in a periodic box.  Not water's real
   potential, but the same O(N^2/2) cutoff structure, force accumulation
   and integration pattern as the SPLASH code. *)

let box_side p = Float.cbrt (float_of_int p.molecules) *. 1.2

let dt = 0.004

let spring = 4.0

(* Minimum-image displacement component. *)
let wrap side d =
  if d > side /. 2.0 then d -. side
  else if d < -.(side /. 2.0) then d +. side
  else d

type phys = {
  px : float array;
  py : float array;
  pz : float array;
  vx : float array;
  vy : float array;
  vz : float array;
  fx : float array;
  fy : float array;
  fz : float array;
}

let init_phys p =
  let rng = Rng.create ~seed:p.seed in
  let n = p.molecules in
  let side = box_side p in
  let arr f = Array.init n (fun _ -> f ()) in
  {
    px = arr (fun () -> Rng.float rng *. side);
    py = arr (fun () -> Rng.float rng *. side);
    pz = arr (fun () -> Rng.float rng *. side);
    vx = arr (fun () -> (Rng.float rng -. 0.5) *. 0.2);
    vy = arr (fun () -> (Rng.float rng -. 0.5) *. 0.2);
    vz = arr (fun () -> (Rng.float rng -. 0.5) *. 0.2);
    fx = Array.make n 0.0;
    fy = Array.make n 0.0;
    fz = Array.make n 0.0;
  }

(* Force of molecule j on molecule i, if within the cutoff. *)
let pair_force p ~side ~xi ~yi ~zi ~xj ~yj ~zj =
  let dx = wrap side (xi -. xj)
  and dy = wrap side (yi -. yj)
  and dz = wrap side (zi -. zj) in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
  if r2 >= p.cutoff *. p.cutoff || r2 = 0.0 then None
  else begin
    let r = sqrt r2 in
    let mag = spring *. (p.cutoff -. r) /. r in
    Some (mag *. dx, mag *. dy, mag *. dz)
  end

let half p = (p.molecules - 1) / 2

let reference_energy p =
  let n = p.molecules in
  let side = box_side p in
  let ph = init_phys p in
  for _ = 1 to p.steps do
    for i = 0 to n - 1 do
      ph.px.(i) <- ph.px.(i) +. (ph.vx.(i) *. dt);
      ph.py.(i) <- ph.py.(i) +. (ph.vy.(i) *. dt);
      ph.pz.(i) <- ph.pz.(i) +. (ph.vz.(i) *. dt);
      ph.fx.(i) <- 0.0;
      ph.fy.(i) <- 0.0;
      ph.fz.(i) <- 0.0
    done;
    for i = 0 to n - 1 do
      for k = 1 to half p do
        let j = (i + k) mod n in
        match
          pair_force p ~side ~xi:ph.px.(i) ~yi:ph.py.(i) ~zi:ph.pz.(i)
            ~xj:ph.px.(j) ~yj:ph.py.(j) ~zj:ph.pz.(j)
        with
        | None -> ()
        | Some (fx, fy, fz) ->
          ph.fx.(i) <- ph.fx.(i) +. fx;
          ph.fy.(i) <- ph.fy.(i) +. fy;
          ph.fz.(i) <- ph.fz.(i) +. fz;
          ph.fx.(j) <- ph.fx.(j) -. fx;
          ph.fy.(j) <- ph.fy.(j) -. fy;
          ph.fz.(j) <- ph.fz.(j) -. fz
      done
    done;
    for i = 0 to n - 1 do
      ph.vx.(i) <- ph.vx.(i) +. (ph.fx.(i) *. dt);
      ph.vy.(i) <- ph.vy.(i) +. (ph.fy.(i) *. dt);
      ph.vz.(i) <- ph.vz.(i) +. (ph.fz.(i) *. dt)
    done
  done;
  (* NOTE: the parallel program accumulates per-molecule contributions
     before applying them; at one node the floating-point grouping is
     identical to this loop nest, and across nodes the energy check uses a
     relative tolerance. *)
  (* Energy: kinetic plus pair potential. *)
  let e = ref 0.0 in
  for i = 0 to n - 1 do
    e :=
      !e
      +. 0.5
         *. ((ph.vx.(i) *. ph.vx.(i))
            +. (ph.vy.(i) *. ph.vy.(i))
            +. (ph.vz.(i) *. ph.vz.(i)))
  done;
  for i = 0 to n - 1 do
    for k = 1 to half p do
      let j = (i + k) mod n in
      let dx = wrap side (ph.px.(i) -. ph.px.(j))
      and dy = wrap side (ph.py.(i) -. ph.py.(j))
      and dz = wrap side (ph.pz.(i) -. ph.pz.(j)) in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
      if r2 < p.cutoff *. p.cutoff && r2 > 0.0 then begin
        let d = p.cutoff -. sqrt r2 in
        e := !e +. (0.5 *. spring *. d *. d)
      end
    done
  done;
  !e

(* ------------------------------------------------------------------ *)
(* Shared-memory layout.  A molecule record is 672 bytes, as in the SPLASH
   code (three atoms with positions, velocities, forces and the
   higher-order predictor-corrector derivatives); we actively use the
   first nine doubles and keep the derivative scratch area live so page
   diffs carry realistic volumes. *)

let mol_bytes = 672

let scratch_doubles = 6

type layout = { base : int }

let pos_addr l m = l.base + (m * mol_bytes)

let vel_addr l m = l.base + (m * mol_bytes) + 24

let force_addr l m = l.base + (m * mol_bytes) + 48

let scratch_addr l m = l.base + (m * mol_bytes) + 72

let read3 shm a = (Shm.read_f64 shm a, Shm.read_f64 shm (a + 8), Shm.read_f64 shm (a + 16))

let write3 shm a (x, y, z) =
  Shm.write_f64 shm a x;
  Shm.write_f64 shm (a + 8) y;
  Shm.write_f64 shm (a + 16) z

let owner p ~nodes m = m * nodes / p.molecules

let run sys variant p =
  let n = p.molecules in
  let nodes = System.node_count sys in
  let side = box_side p in
  let layout = { base = System.alloc sys ~align:4096 (n * mol_bytes) } in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"water" () in
  let locks =
    match variant with
    | Lock ->
      Array.init n (fun m ->
          Msg_lock.create sys ~manager:(owner p ~nodes m)
            ~name:(Printf.sprintf "mol%d" m))
    | Hybrid | Hybrid_all_release -> [||]
  in
  (* The SS5.4 ablation: every message marked RELEASE, including the update
     and end-of-phase messages that need no synchronization. *)
  let update_annotation =
    match variant with
    | Hybrid_all_release -> Annotation.Release
    | Lock | Hybrid -> Annotation.None_
  in
  (* Per-node count of phase-completion markers received this step. *)
  let flush_sem =
    Array.init nodes (fun _ -> Resource.Semaphore.create 0)
  in
  let energy = ref nan in
  let update_bytes = 616 (* molecule index + per-atom force and correction terms *) in
  let app node =
    let me = Node.id node in
    let shm = Node.shm node in
    let mine m = owner p ~nodes m = me in
    (* Initial data: node 0 materializes the molecule database. *)
    if me = 0 then begin
      let ph = init_phys p in
      for m = 0 to n - 1 do
        write3 shm (pos_addr layout m) (ph.px.(m), ph.py.(m), ph.pz.(m));
        write3 shm (vel_addr layout m) (ph.vx.(m), ph.vy.(m), ph.vz.(m));
        write3 shm (force_addr layout m) (0.0, 0.0, 0.0)
      done;
      Node.compute node (float_of_int n *. 2e-6)
    end;
    Msg_barrier.wait barrier node;
    let accx = Array.make n 0.0
    and accy = Array.make n 0.0
    and accz = Array.make n 0.0 in
    for _step = 1 to p.steps do
      (* Phase A: integrate positions of own molecules, clear forces. *)
      for m = 0 to n - 1 do
        if mine m then begin
          let vx, vy, vz = read3 shm (vel_addr layout m) in
          let x, y, z = read3 shm (pos_addr layout m) in
          write3 shm (pos_addr layout m)
            (x +. (vx *. dt), y +. (vy *. dt), z +. (vz *. dt));
          write3 shm (force_addr layout m) (0.0, 0.0, 0.0);
          (* Predictor scratch terms, as the SPLASH integrator updates. *)
          for s = 0 to scratch_doubles - 1 do
            Shm.write_f64 shm (scratch_addr layout m + (8 * s)) (x +. float_of_int s)
          done;
          Node.compute node p.integrate_cost
        end
      done;
      Msg_barrier.wait barrier node;
      (* Phase B: forces.  Accumulate privately, then one update per
         molecule (paper: "having each processor accumulate its own
         contributions and then perform a single update"). *)
      Array.fill accx 0 n 0.0;
      Array.fill accy 0 n 0.0;
      Array.fill accz 0 n 0.0;
      for i = 0 to n - 1 do
        if mine i then begin
          let xi, yi, zi = read3 shm (pos_addr layout i) in
          for k = 1 to half p do
            let j = (i + k) mod n in
            let xj, yj, zj = read3 shm (pos_addr layout j) in
            Node.compute node p.pair_check_cost;
            match pair_force p ~side ~xi ~yi ~zi ~xj ~yj ~zj with
            | None -> ()
            | Some (fx, fy, fz) ->
              Node.compute node p.pair_force_cost;
              accx.(i) <- accx.(i) +. fx;
              accy.(i) <- accy.(i) +. fy;
              accz.(i) <- accz.(i) +. fz;
              accx.(j) <- accx.(j) -. fx;
              accy.(j) <- accy.(j) -. fy;
              accz.(j) <- accz.(j) -. fz
          done
        end
      done;
      (* Apply the accumulated updates. *)
      for m = 0 to n - 1 do
        if accx.(m) <> 0.0 || accy.(m) <> 0.0 || accz.(m) <> 0.0 then begin
          let ux = accx.(m) and uy = accy.(m) and uz = accz.(m) in
          match variant with
          | Lock ->
            Msg_lock.with_lock locks.(m) node (fun () ->
                let fx, fy, fz = read3 shm (force_addr layout m) in
                write3 shm (force_addr layout m)
                  (fx +. ux, fy +. uy, fz +. uz);
                Node.compute node 2e-6)
          | Hybrid | Hybrid_all_release ->
            (* Function shipping: a NONE message invokes the update
               function at the molecule's owner; sequential delivery makes
               the updates atomic without locks (paper §5.3). *)
            Node.send node
              ~dst:(owner p ~nodes m)
              ~annotation:update_annotation ~payload_bytes:update_bytes
              ~handler:(fun owner_node d ->
                Node.accept d;
                let oshm = Node.shm owner_node in
                let fx, fy, fz = read3 oshm (force_addr layout m) in
                write3 oshm (force_addr layout m)
                  (fx +. ux, fy +. uy, fz +. uz);
                Node.charge owner_node Carlos.Breakdown.User 2e-6)
        end
      done;
      (match variant with
      | Lock -> ()
      | Hybrid | Hybrid_all_release ->
        (* End-of-phase markers: in-order delivery guarantees every update
           from a peer has been applied once its marker arrives.  The
           marker to ourselves flushes our own locally shipped updates
           through the serial dispatcher before phase C reads forces. *)
        for peer = 0 to nodes - 1 do
          Node.send node ~dst:peer ~annotation:update_annotation
            ~payload_bytes:8
            ~handler:(fun peer_node d ->
              Node.accept d;
              Resource.Semaphore.signal flush_sem.(Node.id peer_node))
        done;
        Node.flush_compute node;
        for _ = 1 to nodes do
          Resource.Semaphore.wait flush_sem.(me)
        done);
      Msg_barrier.wait barrier node;
      (* Phase C: integrate velocities of own molecules. *)
      for m = 0 to n - 1 do
        if mine m then begin
          let fx, fy, fz = read3 shm (force_addr layout m) in
          let vx, vy, vz = read3 shm (vel_addr layout m) in
          write3 shm (vel_addr layout m)
            (vx +. (fx *. dt), vy +. (fy *. dt), vz +. (fz *. dt));
          for s = 0 to scratch_doubles - 1 do
            Shm.write_f64 shm (scratch_addr layout m + (8 * s)) (vx +. float_of_int s)
          done;
          Node.compute node p.integrate_cost
        end
      done;
      Msg_barrier.wait barrier node
    done;
    (* Node 0 evaluates the end-state energy from shared memory. *)
    if me = 0 then begin
      let e = ref 0.0 in
      for i = 0 to n - 1 do
        let vx, vy, vz = read3 shm (vel_addr layout i) in
        e := !e +. (0.5 *. ((vx *. vx) +. (vy *. vy) +. (vz *. vz)))
      done;
      for i = 0 to n - 1 do
        let xi, yi, zi = read3 shm (pos_addr layout i) in
        for k = 1 to half p do
          let j = (i + k) mod n in
          let xj, yj, zj = read3 shm (pos_addr layout j) in
          let dx = wrap side (xi -. xj)
          and dy = wrap side (yi -. yj)
          and dz = wrap side (zi -. zj) in
          let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
          if r2 < p.cutoff *. p.cutoff && r2 > 0.0 then begin
            let d = p.cutoff -. sqrt r2 in
            e := !e +. (0.5 *. spring *. d *. d)
          end
        done
      done;
      Node.compute node 0.05;
      energy := !e
    end
  in
  let report = System.run sys app in
  let reference = reference_energy p in
  let ok =
    Float.abs (!energy -. reference)
    <= 1e-6 *. Float.max 1.0 (Float.abs reference)
  in
  { energy = !energy; energy_ok = ok; report }
