lib/apps/harness.mli: Carlos Format
