lib/apps/tsp.mli: Carlos
