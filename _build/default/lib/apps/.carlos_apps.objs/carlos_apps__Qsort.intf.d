lib/apps/qsort.mli: Carlos
