lib/apps/grid.ml: Array Carlos Carlos_dsm Carlos_sim Carlos_vm List
