lib/apps/grid.mli: Carlos Carlos_dsm
