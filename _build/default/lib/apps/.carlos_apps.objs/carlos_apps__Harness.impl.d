lib/apps/harness.ml: Array Carlos Format List
