lib/apps/water.mli: Carlos
