lib/apps/water.ml: Array Carlos Carlos_sim Carlos_vm Float Printf
