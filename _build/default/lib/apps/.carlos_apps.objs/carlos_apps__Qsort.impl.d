lib/apps/qsort.ml: Array Carlos Carlos_sim Carlos_vm
