lib/apps/tsp.ml: Array Carlos Carlos_sim Carlos_vm Fun List
