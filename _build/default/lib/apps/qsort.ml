module Rng = Carlos_sim.Rng
module Shm = Carlos_vm.Shm
module System = Carlos.System
module Node = Carlos.Node
module Annotation = Carlos.Annotation
module Msg_lock = Carlos.Msg_lock
module Msg_barrier = Carlos.Msg_barrier
module Work_queue = Carlos.Work_queue

type variant = Lock | Hybrid1 | Hybrid2 | Hybrid_nf

let variant_name = function
  | Lock -> "lock"
  | Hybrid1 -> "hybrid-1"
  | Hybrid2 -> "hybrid-2"
  | Hybrid_nf -> "hybrid-noforward"

type params = {
  elements : int;
  threshold : int;
  seed : int;
  compare_cost : float;
  partition_cost : float;
}

let default_params =
  {
    elements = 256 * 1024;
    threshold = 1024;
    seed = 7;
    compare_cost = 0.28e-6;
    partition_cost = 0.25e-6;
  }

type result = { sorted : bool; leaves : int; report : System.report }

let config ?(nodes = 4) p =
  let array_pages = ((p.elements * 4) + 4095) / 4096 in
  {
    (System.default_config ~nodes) with
    System.coherent_pages = array_pages + 64;
    gc_threshold = Some 6_000_000;
  }

(* Pack a subarray descriptor [lo, hi] into one integer. *)
let pack ~lo ~hi = (lo lsl 24) lor hi

let unpack d = (d lsr 24, d land 0xFFFFFF)

type layout = {
  array_base : int;
  stack_top : int;
  stack_done : int;
  stack_slots : int;
  max_slots : int;
}

let make_layout sys p =
  let array_base = System.alloc sys ~align:4096 (p.elements * 4) in
  let stack_top = System.alloc sys ~align:4096 8 in
  let stack_done = System.alloc sys 8 in
  let max_slots = 8192 in
  let stack_slots = System.alloc sys (8 * max_slots) in
  { array_base; stack_top; stack_done; stack_slots; max_slots }

let elem layout i = layout.array_base + (4 * i)

let read_elem shm layout i = Shm.read_i32 shm (elem layout i)

let write_elem shm layout i v = Shm.write_i32 shm (elem layout i) v

(* Hoare partition with median-of-three pivot, element accesses through
   the coherent region. *)
let partition node shm layout p ~lo ~hi =
  let a i = read_elem shm layout i in
  let mid = (lo + hi) / 2 in
  let x = a lo and y = a mid and z = a hi in
  let pivot = max (min x y) (min (max x y) z) in
  let i = ref (lo - 1) and j = ref (hi + 1) in
  let scanned = ref 0 in
  let result = ref (-1) in
  while !result < 0 do
    incr i;
    incr scanned;
    while a !i < pivot do
      incr i;
      incr scanned
    done;
    decr j;
    incr scanned;
    while a !j > pivot do
      decr j;
      incr scanned
    done;
    if !i >= !j then result := !j
    else begin
      let tmp = a !i in
      write_elem shm layout !i (a !j);
      write_elem shm layout !j tmp
    end
  done;
  Node.compute node (p.partition_cost *. float_of_int !scanned);
  !result

(* Local sort of a leaf: the accesses go through shared memory (faulting
   pages in), the comparison work is charged at Bubblesort's quadratic
   cost as in the paper's program. *)
let sort_leaf node shm layout p ~lo ~hi =
  let n = hi - lo + 1 in
  let buf = Array.init n (fun k -> read_elem shm layout (lo + k)) in
  Array.sort compare buf;
  Array.iteri (fun k v -> write_elem shm layout (lo + k) v) buf;
  let fn = float_of_int n in
  Node.compute node (p.compare_cost *. fn *. fn /. 2.0)

let run sys variant p =
  let layout = make_layout sys p in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"qs-end" () in
  let stack_lock = Msg_lock.create sys ~manager:0 ~name:"qs-stack" in
  let queue =
    Work_queue.create sys ~manager:0 ~name:"qs-q"
      ~mode:
        (match variant with
        | Lock | Hybrid1 -> Work_queue.Forwarding
        | Hybrid2 -> Work_queue.All_release
        | Hybrid_nf -> Work_queue.No_forwarding)
      ()
  in
  let leaves = ref 0 in
  let sorted = ref false in
  (* Hybrid termination: the manager counts sorted elements and closes the
     queue when the whole array is accounted for. *)
  let manager_done = ref 0 in
  let notify_sorted node n =
    Node.send node ~dst:0 ~annotation:Annotation.None_ ~payload_bytes:16
      ~handler:(fun manager_node d ->
        Node.accept d;
        manager_done := !manager_done + n;
        if !manager_done >= p.elements then
          Work_queue.close queue manager_node)
  in
  let init node =
    let shm = Node.shm node in
    let rng = Rng.create ~seed:p.seed in
    for i = 0 to p.elements - 1 do
      write_elem shm layout i (Rng.int rng 1_000_000)
    done;
    Node.compute node (0.02e-6 *. float_of_int p.elements)
  in
  (* Process one descriptor: peel subarrays down to leaves, pushing the
     smaller half back to the pool each time. *)
  let process node push (lo0, hi0) =
    let shm = Node.shm node in
    let lo = ref lo0 and hi = ref hi0 in
    while !hi - !lo + 1 > p.threshold do
      let j = partition node shm layout p ~lo:!lo ~hi:!hi in
      (* Keep the larger side, push the smaller one. *)
      if j - !lo < !hi - j then begin
        push (!lo, j);
        lo := j + 1
      end
      else begin
        push (j + 1, !hi);
        hi := j
      end
    done;
    sort_leaf node shm layout p ~lo:!lo ~hi:!hi;
    incr leaves;
    !hi - !lo + 1
  in
  let app node =
    let me = Node.id node in
    let shm = Node.shm node in
    (match variant with
    | Lock ->
      let pending_done = ref 0 in
      if me = 0 then begin
        init node;
        Msg_lock.with_lock stack_lock node (fun () ->
            Shm.write_i64 shm layout.stack_slots
              (pack ~lo:0 ~hi:(p.elements - 1));
            Shm.write_i64 shm layout.stack_top 1;
            Shm.write_i64 shm layout.stack_done 0)
      end;
      let push (lo, hi) =
        Msg_lock.with_lock stack_lock node (fun () ->
            let top = Shm.read_i64 shm layout.stack_top in
            if top >= layout.max_slots then
              failwith "qsort: stack overflow";
            Shm.write_i64 shm
              (layout.stack_slots + (8 * top))
              (pack ~lo ~hi);
            Shm.write_i64 shm layout.stack_top (top + 1))
      in
      let rec consume () =
        let action =
          Msg_lock.with_lock stack_lock node (fun () ->
              (if !pending_done > 0 then begin
                 let d = Shm.read_i64 shm layout.stack_done in
                 Shm.write_i64 shm layout.stack_done (d + !pending_done);
                 pending_done := 0
               end);
              let top = Shm.read_i64 shm layout.stack_top in
              if top > 0 then begin
                Shm.write_i64 shm layout.stack_top (top - 1);
                `Work
                  (unpack
                     (Shm.read_i64 shm (layout.stack_slots + (8 * (top - 1)))))
              end
              else if Shm.read_i64 shm layout.stack_done >= p.elements then
                `Done
              else `Retry)
        in
        match action with
        | `Work d ->
          pending_done := !pending_done + process node push d;
          consume ()
        | `Retry ->
          Node.compute node 1e-3;
          Node.flush_compute node;
          consume ()
        | `Done -> ()
      in
      consume ()
    | Hybrid1 | Hybrid2 | Hybrid_nf ->
      if me = 0 then begin
        init node;
        Work_queue.enqueue queue node ~bytes:16 (0, p.elements - 1)
      end;
      let push (lo, hi) = Work_queue.enqueue queue node ~bytes:16 (lo, hi) in
      let rec consume () =
        match Work_queue.dequeue queue node with
        | Some d ->
          let n = process node push d in
          notify_sorted node n;
          consume ()
        | None -> ()
      in
      consume ());
    Msg_barrier.wait barrier node;
    (* "A barrier is used to collect all of the sorted subarrays": node 0
       walks the whole array, pulling every final diff to itself, and
       verifies the sort. *)
    if me = 0 then begin
      let ok = ref true in
      let prev = ref min_int in
      for i = 0 to p.elements - 1 do
        let v = read_elem shm layout i in
        if v < !prev then ok := false;
        prev := v
      done;
      Node.compute node (0.01e-6 *. float_of_int p.elements);
      sorted := !ok
    end
  in
  let report = System.run sys app in
  { sorted = !sorted; leaves = !leaves; report }
