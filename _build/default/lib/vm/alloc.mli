(** First-fit free-list allocator for a shared region.

    Shared data structures are allocated during application setup, with the
    same allocator state visible to every node (allocation is a
    coordinated, deterministic operation, as with a DSM malloc serviced by
    a manager node).  Addresses are absolute. *)

type t

(** [create ~base ~size] manages [size] bytes starting at address [base]. *)
val create : base:int -> size:int -> t

(** [alloc t ?align n] returns the address of a fresh block of [n] bytes,
    aligned to [align] (default 8).  Raises [Out_of_memory] if no block
    fits. *)
val alloc : t -> ?align:int -> int -> int

(** Return a block to the allocator.  [addr] and [size] must describe a
    block previously returned by [alloc] (coalescing is performed with
    adjacent free blocks). *)
val free : t -> addr:int -> size:int -> unit

(** Bytes currently allocated. *)
val live_bytes : t -> int

(** Total capacity. *)
val capacity : t -> int
