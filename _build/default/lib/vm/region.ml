type t = {
  page_size : int;
  private_bytes : int;
  noncoherent_bytes : int;
  coherent_pages : int;
  private_base : int;
  noncoherent_base : int;
  coherent_base : int;
}

let default_page_size = 4096

let create ?(page_size = default_page_size) ~private_bytes ~noncoherent_bytes
    ~coherent_pages () =
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    invalid_arg "Region.create: page_size must be a positive power of two";
  if private_bytes < 0 || noncoherent_bytes < 0 || coherent_pages < 0 then
    invalid_arg "Region.create: negative size";
  {
    page_size;
    private_bytes;
    noncoherent_bytes;
    coherent_pages;
    private_base = 0x1000_0000;
    noncoherent_base = 0x2000_0000;
    coherent_base = 0x4000_0000;
  }

let page_size t = t.page_size

let coherent_pages t = t.coherent_pages

let private_bytes t = t.private_bytes

let noncoherent_bytes t = t.noncoherent_bytes

let private_base t = t.private_base

let noncoherent_base t = t.noncoherent_base

let coherent_base t = t.coherent_base

type location =
  | Private of int
  | Noncoherent of int
  | Coherent of { page : int; offset : int }

let locate t addr =
  if addr >= t.private_base && addr < t.private_base + t.private_bytes then
    Private (addr - t.private_base)
  else if
    addr >= t.noncoherent_base && addr < t.noncoherent_base + t.noncoherent_bytes
  then Noncoherent (addr - t.noncoherent_base)
  else
    let coherent_limit = t.coherent_base + (t.coherent_pages * t.page_size) in
    if addr >= t.coherent_base && addr < coherent_limit then begin
      let off = addr - t.coherent_base in
      Coherent { page = off / t.page_size; offset = off mod t.page_size }
    end
    else
      invalid_arg
        (Printf.sprintf "Region.locate: segmentation violation at 0x%x" addr)

let coherent_addr t ~page ~offset =
  if page < 0 || page >= t.coherent_pages then
    invalid_arg "Region.coherent_addr: bad page";
  if offset < 0 || offset >= t.page_size then
    invalid_arg "Region.coherent_addr: bad offset";
  t.coherent_base + (page * t.page_size) + offset
