lib/vm/region.mli:
