lib/vm/page.ml: Bytes Diff
