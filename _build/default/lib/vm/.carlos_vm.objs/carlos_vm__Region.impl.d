lib/vm/region.ml: Printf
