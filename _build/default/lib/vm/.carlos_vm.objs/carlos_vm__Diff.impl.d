lib/vm/diff.ml: Bytes Format List
