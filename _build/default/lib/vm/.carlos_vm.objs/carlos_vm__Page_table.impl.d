lib/vm/page_table.ml: Array Page Printf
