lib/vm/page.mli: Bytes Diff
