lib/vm/shm.mli: Bytes Page_table Region
