lib/vm/diff.mli: Bytes Format
