lib/vm/alloc.mli:
