lib/vm/alloc.ml: List
