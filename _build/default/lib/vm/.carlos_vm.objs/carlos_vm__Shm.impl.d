lib/vm/shm.ml: Bytes Char Int32 Int64 Page Page_table Printf Region
