lib/vm/page_table.mli: Page
