(** Address-space layout (paper §4.1).

    Applications see three disjoint regions:
    - a {e private} region, per node, used for node-local data;
    - a {e non-coherent shared} region: one mapping shared by all nodes
      (single address map, no consistency maintenance) — used for thread
      control blocks, message rendezvous structures, and the like;
    - a {e coherent shared} region kept consistent by the message-driven
      coherency mechanism, divided into pages.

    Addresses are plain integers; the layout places each region at a fixed
    base so that a pointer stored in shared memory means the same thing on
    every node. *)

type t

type location =
  | Private of int (* offset within the private region *)
  | Noncoherent of int (* offset within the non-coherent shared region *)
  | Coherent of { page : int; offset : int }

val default_page_size : int

(** [create ~page_size ~private_bytes ~noncoherent_bytes ~coherent_pages] *)
val create :
  ?page_size:int ->
  private_bytes:int ->
  noncoherent_bytes:int ->
  coherent_pages:int ->
  unit ->
  t

val page_size : t -> int

val coherent_pages : t -> int

val private_bytes : t -> int

val noncoherent_bytes : t -> int

(** Base addresses of the three regions. *)
val private_base : t -> int

val noncoherent_base : t -> int

val coherent_base : t -> int

(** Classify an address.  Raises [Invalid_argument] for an address outside
    every region (a "segmentation violation"). *)
val locate : t -> int -> location

(** Address of the first byte of coherent page [page]. *)
val coherent_addr : t -> page:int -> offset:int -> int
