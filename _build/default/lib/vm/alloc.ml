(* Sorted free list of (addr, size) blocks, first-fit with coalescing. *)
type t = {
  base : int;
  size : int;
  mutable free_list : (int * int) list;
  mutable live : int;
}

let create ~base ~size =
  if size <= 0 then invalid_arg "Alloc.create: size";
  { base; size; free_list = [ (base, size) ]; live = 0 }

let align_up addr align = (addr + align - 1) / align * align

let alloc t ?(align = 8) n =
  if n <= 0 then invalid_arg "Alloc.alloc: size must be positive";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Alloc.alloc: alignment must be a positive power of two";
  (* First fit: find a free block that can hold an aligned sub-block of n
     bytes; split off the leading pad and the trailing remainder. *)
  let rec find before = function
    | [] -> raise Out_of_memory
    | (addr, size) :: rest ->
      let start = align_up addr align in
      let pad = start - addr in
      if pad + n <= size then begin
        let pieces =
          (if pad > 0 then [ (addr, pad) ] else [])
          @
          if size - pad - n > 0 then [ (start + n, size - pad - n) ] else []
        in
        t.free_list <- List.rev_append before (pieces @ rest);
        t.live <- t.live + n;
        start
      end
      else find ((addr, size) :: before) rest
  in
  find [] t.free_list

let free t ~addr ~size =
  if size <= 0 then invalid_arg "Alloc.free: size";
  if addr < t.base || addr + size > t.base + t.size then
    invalid_arg "Alloc.free: block outside region";
  (* Insert in address order, then coalesce neighbours. *)
  let rec insert = function
    | [] -> [ (addr, size) ]
    | (a, s) :: rest when addr < a -> (addr, size) :: (a, s) :: rest
    | block :: rest -> block :: insert rest
  in
  let rec coalesce = function
    | (a1, s1) :: (a2, s2) :: rest when a1 + s1 = a2 ->
      coalesce ((a1, s1 + s2) :: rest)
    | (a1, s1) :: (a2, _) :: _ when a1 + s1 > a2 ->
      invalid_arg "Alloc.free: overlapping free (double free?)"
    | block :: rest -> block :: coalesce rest
    | [] -> []
  in
  t.free_list <- coalesce (insert t.free_list);
  t.live <- t.live - size

let live_bytes t = t.live

let capacity t = t.size
