examples/causality.mli:
