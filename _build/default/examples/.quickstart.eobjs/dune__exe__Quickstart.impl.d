examples/quickstart.ml: Carlos Carlos_vm Format
