examples/pipeline.ml: Carlos Carlos_dsm Carlos_vm Format
