examples/pipeline.mli:
