examples/threads_demo.ml: Carlos Carlos_vm Format
