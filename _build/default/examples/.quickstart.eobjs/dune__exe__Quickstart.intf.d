examples/quickstart.mli:
