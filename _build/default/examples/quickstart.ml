(* Quickstart: bring up a four-node CarlOS cluster, share a counter and a
   results array through coherent memory, and coordinate with a
   message-based lock and barrier.

     dune exec examples/quickstart.exe *)

module System = Carlos.System
module Node = Carlos.Node
module Msg_lock = Carlos.Msg_lock
module Msg_barrier = Carlos.Msg_barrier
module Shm = Carlos_vm.Shm

let () =
  (* A cluster of four simulated workstations on a 10 Mbit/s Ethernet. *)
  let sys = System.create (System.default_config ~nodes:4) in

  (* Shared data lives in the coherent region. *)
  let counter = System.alloc sys 8 in
  let results = System.alloc sys (8 * 4) in

  (* Synchronization is built from annotated messages. *)
  let lock = Msg_lock.create sys ~manager:0 ~name:"counter" in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"done" () in

  let report =
    System.run sys (fun node ->
        let me = Node.id node in
        let shm = Node.shm node in
        (* Each node increments the shared counter 10 times under the
           lock.  Accepting the lock grant (a RELEASE message) makes the
           node consistent with the previous holder, so the increments
           never race. *)
        for _ = 1 to 10 do
          Msg_lock.with_lock lock node (fun () ->
              let v = Shm.read_i64 shm counter in
              Node.compute node 0.001 (* 1 ms of "work" in the section *);
              Shm.write_i64 shm counter (v + 1))
        done;
        (* Publish a per-node result, then meet at the barrier. *)
        Shm.write_i64 shm (results + (8 * me)) ((me + 1) * 100);
        Msg_barrier.wait barrier node;
        (* After the barrier everyone is consistent with everyone. *)
        if me = 0 then begin
          Format.printf "counter = %d (expected 40)@."
            (Shm.read_i64 shm counter);
          for peer = 0 to 3 do
            Format.printf "result[%d] = %d@." peer
              (Shm.read_i64 shm (results + (8 * peer)))
          done
        end)
  in
  Format.printf
    "run took %.3f virtual seconds, %d messages (%.0f bytes avg), network \
     utilization %.1f%%@."
    report.System.wall report.System.messages report.System.avg_message_bytes
    (100.0 *. report.System.net_utilization)
