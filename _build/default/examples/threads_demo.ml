(* User-level multithreading (paper §4.4): with one thread per node —
   TreadMarks style — every remote page fault stalls the whole node; with
   several user threads the scheduler runs another thread while one waits,
   masking remote latency.

     dune exec examples/threads_demo.exe *)

module System = Carlos.System
module Node = Carlos.Node
module Threads = Carlos.Threads
module Msg_barrier = Carlos.Msg_barrier
module Shm = Carlos_vm.Shm

let chunks = 8

let chunk_bytes = 4096

(* Node 1 walks [chunks] remote pages; each read faults and fetches a diff
   from node 0.  With [threads] > 1 the fetch latencies overlap. *)
let run ~threads =
  let sys = System.create (System.default_config ~nodes:2) in
  let data = System.alloc sys ~align:4096 (chunks * chunk_bytes) in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"t" () in
  let report =
    System.run sys (fun node ->
        let shm = Node.shm node in
        if Node.id node = 0 then begin
          for c = 0 to chunks - 1 do
            for w = 0 to (chunk_bytes / 8) - 1 do
              Shm.write_i64 shm (data + (c * chunk_bytes) + (8 * w)) (c + w)
            done
          done;
          Node.compute node 0.001
        end;
        Msg_barrier.wait barrier node;
        if Node.id node = 1 then begin
          let pool = Threads.create node in
          for c = 0 to chunks - 1 do
            Threads.spawn pool (fun () ->
                (* The first read of the chunk faults and blocks this
                   thread on a remote diff fetch. *)
                let sum = ref 0 in
                for w = 0 to (chunk_bytes / 8) - 1 do
                  sum :=
                    !sum + Shm.read_i64 shm (data + (c * chunk_bytes) + (8 * w))
                done;
                Node.compute node 0.0005)
          done;
          ignore (Threads.live pool);
          Threads.join_all pool
        end;
        Msg_barrier.wait barrier node)
  in
  ignore threads;
  report.System.wall

let () =
  (* One logical thread: chunks are fetched serially by a single loop. *)
  let serial =
    let sys = System.create (System.default_config ~nodes:2) in
    let data = System.alloc sys ~align:4096 (chunks * chunk_bytes) in
    let barrier = Msg_barrier.create sys ~manager:0 ~name:"s" () in
    let report =
      System.run sys (fun node ->
          let shm = Node.shm node in
          if Node.id node = 0 then begin
            for c = 0 to chunks - 1 do
              for w = 0 to (chunk_bytes / 8) - 1 do
                Shm.write_i64 shm (data + (c * chunk_bytes) + (8 * w)) (c + w)
              done
            done;
            Node.compute node 0.001
          end;
          Msg_barrier.wait barrier node;
          if Node.id node = 1 then
            for c = 0 to chunks - 1 do
              let sum = ref 0 in
              for w = 0 to (chunk_bytes / 8) - 1 do
                sum :=
                  !sum + Shm.read_i64 shm (data + (c * chunk_bytes) + (8 * w))
              done;
              Node.compute node 0.0005
            done;
          Msg_barrier.wait barrier node)
    in
    report.System.wall
  in
  let threaded = run ~threads:chunks in
  Format.printf
    "single-threaded node: %.2f ms;  %d user threads: %.2f ms  (%.1fx \
     latency hiding)@."
    (serial *. 1e3) chunks (threaded *. 1e3) (serial /. threaded)
