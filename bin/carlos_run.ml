(* carlos_run: command-line driver for the CarlOS simulator.

   Run any of the paper's applications in any variant on a configurable
   cluster and print the paper-style report row plus the per-node
   execution breakdown.  The run's full observability registry can be
   exported as a Chrome trace ([--trace out.json], open in
   chrome://tracing or ui.perfetto.dev) and as a metrics dump
   ([--metrics], [--metrics-json out.jsonl]). *)

module System = Carlos.System
module Backend = Carlos_dsm.Backend
module Cost = Carlos_dsm.Cost
module Obs = Carlos_obs.Obs
module Audit = Carlos_audit.Audit
module Causal = Carlos_audit.Causal
module Tsp = Carlos_apps.Tsp
module Qsort = Carlos_apps.Qsort
module Water = Carlos_apps.Water
module Grid = Carlos_apps.Grid
module Harness = Carlos_apps.Harness
module Profile = Carlos_obs.Profile

open Cmdliner

type opts = {
  nodes : int;
  variant : string;
  backend : string;
  costs : string;
  seed : int;
  breakdown : bool;
  trace_file : string option;
  metrics : bool;
  metrics_json : string option;
  audit : bool;
  causal : bool;
  no_batch : bool;
  legacy_rto : bool;
  profile : bool;
}

let nodes_arg =
  let doc = "Number of workstations in the simulated cluster." in
  Arg.(value & opt int 4 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let variant_arg =
  let doc =
    "Application variant: lock, hybrid, hybrid-1, hybrid-2, \
     hybrid-noforward, hybrid-all-release."
  in
  Arg.(value & opt string "hybrid" & info [ "variant" ] ~docv:"VARIANT" ~doc)

let backend_arg =
  let doc =
    "Consistency backend: lrc (the paper's lazy release consistency), \
     central (one-home-node sequentially-consistent store), seq \
     (sequencer-stamped totally-ordered store)."
  in
  Arg.(value & opt string "lrc" & info [ "backend" ] ~docv:"BACKEND" ~doc)

let costs_arg =
  let doc = "Cost table: default, treadmarks, fast-network." in
  Arg.(value & opt string "default" & info [ "costs" ] ~docv:"COSTS" ~doc)

let seed_arg =
  let doc = "Deterministic seed for the run." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let breakdown_arg =
  let doc = "Also print the per-node execution breakdown (Figure 2 style)." in
  Arg.(value & flag & info [ "breakdown" ] ~doc)

let trace_arg =
  let doc =
    "Record the run's typed event trace and write it to $(docv) as Chrome \
     trace_event JSON (open in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the full metrics registry (every counter, gauge and histogram \
     of every layer) after the run."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_json_arg =
  let doc = "Write the metrics registry to $(docv) as JSONL." in
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE" ~doc)

let audit_arg =
  let doc =
    "Run the online consistency auditor alongside the application (vector \
     clocks monotone, RELEASE acquire-dominance, piggyback tailoring, \
     write-notice completeness, causal page order, relay purity).  Any \
     violation is printed and the exit status is non-zero."
  in
  Arg.(value & flag & info [ "audit" ] ~doc)

let causal_arg =
  let doc =
    "Print the offline causal analysis after the run: critical path \
     through the message DAG, per-lock contention and handoff chains, \
     barrier skew.  Implies event tracing."
  in
  Arg.(value & flag & info [ "causal-report" ] ~doc)

let profile_arg =
  let doc =
    "Profile the engine hot path in host (wall-clock) time and print the \
     per-category table after the run.  With --metrics-json the profile is \
     appended as $(b,\"type\":\"profile\") lines; with --trace the aggregate \
     appears as slices on the host-profile pseudo-process.  Host times are \
     nondeterministic and never enter the metrics registry proper."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let no_batch_arg =
  let doc =
    "Run the legacy unbatched protocol: one diff request per missing \
     interval, no creator-side diff cache, one ack per frame.  Useful for \
     before/after comparisons against the batched fetch path."
  in
  Arg.(value & flag & info [ "no-batch" ] ~doc)

let legacy_rto_arg =
  let doc =
    "Use the pre-ARQ fixed retransmission timeout (no RTT estimation, no \
     payload-aware floor, backoff reset on every ack, no fast retransmit). \
     Orthogonal to --no-batch (which implies it); useful for A/B rows \
     isolating the adaptive ARQ's effect."
  in
  Arg.(value & flag & info [ "legacy-rto" ] ~doc)

let opts_term =
  let mk nodes variant backend costs seed breakdown trace_file metrics
      metrics_json audit causal no_batch legacy_rto profile =
    { nodes; variant; backend; costs; seed; breakdown; trace_file; metrics;
      metrics_json; audit; causal; no_batch; legacy_rto; profile }
  in
  Term.(
    const mk $ nodes_arg $ variant_arg $ backend_arg $ costs_arg $ seed_arg
    $ breakdown_arg $ trace_arg $ metrics_arg $ metrics_json_arg $ audit_arg
    $ causal_arg $ no_batch_arg $ legacy_rto_arg $ profile_arg)

let costs_of_string = function
  | "default" -> Ok Cost.default
  | "treadmarks" -> Ok Cost.treadmarks
  | "fast-network" -> Ok Cost.fast_network
  | s -> Error (Printf.sprintf "unknown cost table %S" s)

(* Resolve --backend and reject flag combinations that only make sense
   for the LRC protocol. *)
let backend_of_opts opts =
  match Backend.kind_of_string opts.backend with
  | Error _ as e -> e
  | Ok k ->
    if opts.no_batch && k <> Backend.Lrc then
      Error
        (Printf.sprintf
           "--no-batch toggles the LRC fetch path and cannot be combined \
            with --backend %s (only --backend lrc)"
           (Backend.kind_to_string k))
    else Ok k

let with_file file f =
  let oc = open_out file in
  let ppf = Format.formatter_of_out_channel oc in
  f ppf;
  Format.pp_print_flush ppf ();
  close_out oc

let finish ~opts ~sys ~label ~ok report =
  Harness.pp_header Format.std_formatter ();
  Harness.pp_row Format.std_formatter
    (Harness.row ~label ~nodes:(Array.length report.System.per_node)
       ~base:report.System.wall ~ok report);
  if opts.breakdown then
    Harness.pp_breakdown Format.std_formatter [ (label, report) ];
  let obs = System.obs sys in
  try
    if opts.profile then Profile.set_enabled false;
    (match opts.trace_file with
    | None -> ()
    | Some file ->
      if opts.profile then Profile.to_obs obs;
      with_file file (fun ppf -> Obs.pp_chrome_trace ppf obs);
      Format.printf "trace: %d events -> %s@." (List.length (Obs.events obs))
        file);
    let snap = lazy (Obs.snapshot obs) in
    (match opts.metrics_json with
    | None -> ()
    | Some file ->
      with_file file (fun ppf ->
          Obs.pp_metrics_jsonl ppf (Lazy.force snap);
          if opts.profile then Profile.pp_jsonl ppf ()));
    if opts.metrics then begin
      Format.printf "metrics:@.";
      Obs.pp_metrics Format.std_formatter (Lazy.force snap)
    end;
    if opts.profile then begin
      Format.printf "host profile:@.";
      Profile.pp Format.std_formatter ()
    end;
    if opts.causal then begin
      Format.printf "causal report:@.";
      Causal.pp Format.std_formatter (Causal.analyse obs)
    end;
    let audit_ok =
      match System.auditor sys with
      | None -> true
      | Some a ->
        Audit.pp_report Format.std_formatter a;
        Audit.violation_count a = 0
    in
    if not ok then `Error (false, "application-level check failed")
    else if not audit_ok then `Error (false, "consistency audit failed")
    else `Ok ()
  with Sys_error msg -> `Error (false, "cannot write export: " ^ msg)

let make_system ~opts ~backend cfg =
  let cfg = { cfg with System.backend } in
  let cfg = if opts.no_batch then System.legacy_config cfg else cfg in
  let cfg = if opts.legacy_rto then { cfg with System.legacy_rto = true } else cfg in
  let sys = System.create ~audit:opts.audit cfg in
  if opts.trace_file <> None || opts.causal then System.set_tracing sys true;
  if opts.profile then begin
    Profile.reset ();
    Profile.set_enabled true
  end;
  sys

let run_tsp opts =
  match
    ( costs_of_string opts.costs,
      backend_of_opts opts,
      match opts.variant with
      | "lock" -> Ok Tsp.Lock
      | "hybrid" | "hybrid-1" -> Ok Tsp.Hybrid
      | "hybrid-all-release" -> Ok Tsp.Hybrid_all_release
      | v -> Error (Printf.sprintf "TSP has no variant %S" v) )
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> `Error (false, e)
  | Ok costs, Ok backend, Ok variant ->
    let cfg =
      { (System.default_config ~nodes:opts.nodes) with
        System.costs;
        seed = opts.seed
      }
    in
    let sys = make_system ~opts ~backend cfg in
    let p = Tsp.default_params in
    let r = Tsp.run sys variant p in
    Format.printf "TSP: best tour %d (reference %d), %d nodes visited@."
      r.Tsp.best (Tsp.solve_reference p) r.Tsp.visited;
    finish ~opts ~sys
      ~label:
        (Harness.backend_label ("TSP/" ^ Tsp.variant_name variant) backend)
      ~ok:(r.Tsp.best = Tsp.solve_reference p)
      r.Tsp.report

let run_qsort opts =
  match
    ( costs_of_string opts.costs,
      backend_of_opts opts,
      match opts.variant with
      | "lock" -> Ok Qsort.Lock
      | "hybrid" | "hybrid-1" -> Ok Qsort.Hybrid1
      | "hybrid-2" -> Ok Qsort.Hybrid2
      | "hybrid-noforward" -> Ok Qsort.Hybrid_nf
      | v -> Error (Printf.sprintf "Quicksort has no variant %S" v) )
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> `Error (false, e)
  | Ok costs, Ok backend, Ok variant ->
    let p = Qsort.default_params in
    let cfg =
      { (Qsort.config ~nodes:opts.nodes p) with System.costs; seed = opts.seed }
    in
    let sys = make_system ~opts ~backend cfg in
    let r = Qsort.run sys variant p in
    Format.printf "Quicksort: %d elements, %d leaves, sorted=%b@."
      p.Qsort.elements r.Qsort.leaves r.Qsort.sorted;
    finish ~opts ~sys
      ~label:
        (Harness.backend_label ("QS/" ^ Qsort.variant_name variant) backend)
      ~ok:r.Qsort.sorted r.Qsort.report

let run_water opts =
  match
    ( costs_of_string opts.costs,
      backend_of_opts opts,
      match opts.variant with
      | "lock" -> Ok Water.Lock
      | "hybrid" -> Ok Water.Hybrid
      | "hybrid-all-release" -> Ok Water.Hybrid_all_release
      | v -> Error (Printf.sprintf "Water has no variant %S" v) )
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> `Error (false, e)
  | Ok costs, Ok backend, Ok variant ->
    let cfg =
      { (System.default_config ~nodes:opts.nodes) with
        System.costs;
        seed = opts.seed
      }
    in
    let sys = make_system ~opts ~backend cfg in
    let p = Water.default_params in
    let r = Water.run sys variant p in
    Format.printf "Water: %d molecules, %d steps, energy %.6f (ok=%b)@."
      p.Water.molecules p.Water.steps r.Water.energy r.Water.energy_ok;
    finish ~opts ~sys
      ~label:
        (Harness.backend_label
           ("Water/" ^ Water.variant_name variant)
           backend)
      ~ok:r.Water.energy_ok r.Water.report

let run_grid opts =
  match
    ( costs_of_string opts.costs,
      backend_of_opts opts,
      match opts.variant with
      (* "lock" accepted as an alias so the same variant matrix works for
         every app; Grid's conservative mode is the plain barrier. *)
      | "barrier" | "lock" -> Ok Grid.Barrier
      | "hybrid" | "hybrid-1" -> Ok Grid.Hybrid
      | v -> Error (Printf.sprintf "Grid has no variant %S" v) )
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> `Error (false, e)
  | Ok costs, Ok backend, Ok variant ->
    let p = Grid.default_params in
    let cfg =
      { (Grid.config ~nodes:opts.nodes p) with System.costs; seed = opts.seed }
    in
    let sys = make_system ~opts ~backend cfg in
    let r = Grid.run sys variant p in
    Format.printf "Grid: %dx%d, %d iterations, checksum %.6f (exact=%b)@."
      p.Grid.size p.Grid.size p.Grid.iterations r.Grid.checksum r.Grid.exact;
    finish ~opts ~sys
      ~label:
        (Harness.backend_label ("Grid/" ^ Grid.variant_name variant) backend)
      ~ok:r.Grid.exact r.Grid.report

let run_app name opts =
  match name with
  | "tsp" -> run_tsp opts
  | "qsort" -> run_qsort opts
  | "water" -> run_water opts
  | "grid" -> run_grid opts
  | a -> `Error (false, Printf.sprintf "unknown application %S" a)

let costs_cmd =
  let run () =
    Format.printf "default (DEC 3000/300 + OSF/1 + 10 Mbit/s Ethernet):@.%a@.@."
      Cost.pp Cost.default;
    Format.printf "treadmarks (leaner built-in sync path):@.%a@.@." Cost.pp
      Cost.treadmarks;
    Format.printf "fast-network (modern low-latency interconnect):@.%a@."
      Cost.pp Cost.fast_network;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "costs" ~doc:"Print the available virtual-time cost tables.")
    Term.(ret (const run $ const ()))

let app_cmd name doc run = Cmd.v (Cmd.info name ~doc) Term.(ret (const run $ opts_term))

let () =
  let doc =
    "CarlOS: message-driven relaxed consistency in a simulated software DSM"
  in
  let info = Cmd.info "carlos_run" ~version:"1.0.0" ~doc in
  (* Top level also accepts [--app APP] directly, so the common invocation
     [carlos_run --app tsp --variant hybrid --nodes 4 --trace t.json] works
     without a subcommand. *)
  let app_arg =
    let doc = "Application to run: tsp, qsort, water, grid." in
    Arg.(value & opt (some string) None & info [ "app" ] ~docv:"APP" ~doc)
  in
  let default =
    Term.(
      ret
        (const (fun app opts ->
             match app with
             | Some name -> run_app name opts
             | None -> `Help (`Pager, None))
        $ app_arg $ opts_term))
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            app_cmd "tsp" "Run the TSP application (paper §5.1)." run_tsp;
            app_cmd "qsort" "Run the Quicksort application (paper §5.2)."
              run_qsort;
            app_cmd "water" "Run the Water application (paper §5.3)."
              run_water;
            app_cmd "grid" "Run the Jacobi grid application (barrier apps)."
              run_grid;
            costs_cmd;
          ]))
