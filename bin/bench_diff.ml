(* bench_diff: compare two BENCH_PR*.json snapshots and fail on
   regression.

   Matches rows by (app, variant, backend, config, nodes) and compares
   the selected numeric fields; an increase beyond --tolerance percent
   is a regression (messages, bytes and seconds all grow when the
   protocol gets worse), a decrease is reported as an improvement and
   never fails.  Rows of OLD that are missing from NEW (after --only
   filtering) also fail: a silently dropped gate row must not pass.

   Exit status: 0 clean, 1 regression/missing row, 124 usage error. *)

module Report = Carlos_report.Bench_report
open Cmdliner

let old_arg =
  let doc = "Baseline snapshot (e.g. the committed BENCH_PR6.json)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc)

let new_arg =
  let doc = "Fresh snapshot to judge against $(i,OLD)." in
  Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc)

let tolerance_arg =
  let doc = "Allowed increase per field, in percent." in
  Arg.(value & opt float 2.0 & info [ "tolerance" ] ~docv:"PCT" ~doc)

let fields_arg =
  let doc =
    "Comma-separated numeric fields to compare (nested component bytes as \
     $(b,components.vc_entries) etc.)."
  in
  Arg.(
    value
    & opt (list string) [ "messages"; "wire_bytes" ]
    & info [ "fields" ] ~docv:"F1,F2" ~doc)

let only_arg =
  let doc =
    "Restrict the comparison to rows whose $(i,ATTR) (app, variant, \
     backend, config or nodes) equals $(i,VALUE).  Repeatable; all pairs \
     must match."
  in
  let kv =
    let parse s =
      match String.index_opt s '=' with
      | Some i ->
        Ok
          ( String.sub s 0 i,
            String.sub s (i + 1) (String.length s - i - 1) )
      | None -> Error (`Msg (Printf.sprintf "expected ATTR=VALUE, got %S" s))
    in
    let print ppf (a, v) = Format.fprintf ppf "%s=%s" a v in
    Arg.conv (parse, print)
  in
  Arg.(value & opt_all kv [] & info [ "only" ] ~docv:"ATTR=VALUE" ~doc)

(* Host-time fields are wall-clock measurements: nondeterministic by
   nature, so they are never judged for regression.  Selecting them via
   --fields prints an informational old/new table instead. *)
let info_field = function "host_ms" | "host_s" -> true | _ -> false

let pp_info_fields ppf fields old_rows new_rows =
  List.iter
    (fun field ->
      List.iter
        (fun o ->
          match
            List.find_opt (fun n -> n.Report.key = o.Report.key) new_rows
          with
          | None -> ()
          | Some n -> (
            match (Report.metric o field, Report.metric n field) with
            | Some ov, Some nv ->
              Format.fprintf ppf "  %s (info): %a  %.3f -> %.3f (%+.1f%%)@."
                field Report.pp_key o.Report.key ov nv
                (if ov = 0.0 then 0.0 else (nv -. ov) /. ov *. 100.0)
            | Some ov, None ->
              Format.fprintf ppf "  %s (info): %a  %.3f -> (absent)@." field
                Report.pp_key o.Report.key ov
            | None, Some nv ->
              Format.fprintf ppf "  %s (info): %a  (absent) -> %.3f@." field
                Report.pp_key o.Report.key nv
            | None, None -> ()))
        old_rows)
    fields

let run old_file new_file tolerance fields only =
  match
    ( (try Ok (Report.load old_file) with
      | Carlos_report.Json.Parse_error m ->
        Error (Printf.sprintf "%s: %s" old_file m)
      | Sys_error m -> Error m),
      (try Ok (Report.load new_file) with
      | Carlos_report.Json.Parse_error m ->
        Error (Printf.sprintf "%s: %s" new_file m)
      | Sys_error m -> Error m) )
  with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok old_rows, Ok new_rows -> (
    let info_fields, fields = List.partition info_field fields in
    match
      Report.compare ~fields ~tolerance_pct:tolerance ~only old_rows new_rows
    with
    | exception Invalid_argument m -> `Error (false, m)
    | c ->
      let ppf = Format.std_formatter in
      Format.fprintf ppf
        "bench_diff: %s -> %s, %d row(s) compared, fields %s, tolerance \
         %.2f%%@."
        old_file new_file c.Report.compared
        (String.concat ","
           (fields @ List.map (fun f -> f ^ "(info)") info_fields))
        tolerance;
      pp_info_fields ppf info_fields
        (List.filter (Report.selected only) old_rows)
        (List.filter (Report.selected only) new_rows);
      List.iter
        (fun d -> Format.fprintf ppf "  improvement: %a@." Report.pp_delta d)
        c.Report.improvements;
      List.iter
        (fun k ->
          Format.fprintf ppf "  new row (not judged): %a@." Report.pp_key k)
        c.Report.added;
      List.iter
        (fun k ->
          Format.fprintf ppf "  MISSING in %s: %a@." new_file Report.pp_key k)
        c.Report.missing;
      List.iter
        (fun d -> Format.fprintf ppf "  REGRESSION: %a@." Report.pp_delta d)
        c.Report.regressions;
      if c.Report.regressions <> [] || c.Report.missing <> [] then begin
        Format.fprintf ppf "bench_diff: FAIL: %d regression(s), %d missing \
                            row(s)@."
          (List.length c.Report.regressions)
          (List.length c.Report.missing);
        Format.pp_print_flush ppf ();
        exit 1
      end
      else begin
        Format.fprintf ppf "bench_diff: ok@.";
        `Ok ()
      end)

let () =
  let doc = "Compare two CarlOS bench snapshots and fail on regression" in
  let info = Cmd.info "bench_diff" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      ret
        (const run $ old_arg $ new_arg $ tolerance_arg $ fields_arg
       $ only_arg))
  in
  exit (Cmd.eval (Cmd.v info term))
