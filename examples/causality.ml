(* The paper's Figure 1, narrated: a lock transfer must make the new
   holder consistent with the old one (solid arrows), but the "get lock"
   request must NOT make the old holder consistent with the requester —
   that unintended symmetry is exactly what the REQUEST annotation avoids.

     dune exec examples/causality.exe *)

module System = Carlos.System
module Node = Carlos.Node
module Msg_lock = Carlos.Msg_lock
module Msg_barrier = Carlos.Msg_barrier
module Shm = Carlos_vm.Shm
module Lrc = Carlos_dsm.Lrc_backend
module Vc = Carlos_dsm.Vc

let () =
  let sys = System.create (System.default_config ~nodes:3) in
  let x = System.alloc sys 8 in
  let y = System.alloc sys ~align:4096 8 (* a different page than x *) in
  let lock = Msg_lock.create sys ~manager:0 ~name:"fig1" in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"end" () in
  let (_ : System.report) =
    System.run sys (fun node ->
        let shm = Node.shm node in
        (match Node.id node with
        | 1 ->
          (* P1 writes x while holding the lock. *)
          Msg_lock.acquire lock node;
          Shm.write_i64 shm x 7;
          Node.compute node 0.002;
          Msg_lock.release lock node
        | 2 ->
          (* P2 writes its own variable y, then asks for the lock.  The
             "get lock" REQUEST piggybacks P2's vector timestamp (so the
             grant can be tailored) but induces no consistency. *)
          Shm.write_i64 shm y 1;
          Node.compute node 0.004;
          Msg_lock.acquire lock node;
          Format.printf
            "P2 acquired the lock and reads x = %d (P1's write arrived \
             with the RELEASE grant)@."
            (Shm.read_i64 shm x);
          Msg_lock.release lock node
        | _ -> ());
        (* Observe the asymmetry before the final barrier erases it. *)
        if Node.id node = 1 then
          Format.printf
            "P1's knowledge of P2's intervals: %d (the REQUEST did not \
             make P1 consistent with P2)@."
            (Vc.get (Lrc.vc (Node.lrc node)) 2);
        Msg_barrier.wait barrier node;
        if Node.id node = 1 then
          Format.printf
            "after the barrier, P1's knowledge of P2's intervals: %d@."
            (Vc.get (Lrc.vc (Node.lrc node)) 2))
  in
  ()
