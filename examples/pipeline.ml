(* A producer/consumer pipeline over the centralized work queue,
   demonstrating the forwarding mechanism of paper §2.2: enqueue messages
   are RELEASEs that the manager only STORES and later FORWARDS, so the
   consumer becomes memory-consistent with the producer of each item while
   the manager never joins the causal chain.

     dune exec examples/pipeline.exe *)

module System = Carlos.System
module Node = Carlos.Node
module Work_queue = Carlos.Work_queue
module Shm = Carlos_vm.Shm
module Lrc = Carlos_dsm.Lrc_backend
module Vc = Carlos_dsm.Vc

let items = 16

let () =
  (* Node 0 manages the queue, nodes 1-2 produce, node 3 consumes. *)
  let sys = System.create (System.default_config ~nodes:4) in
  let queue = Work_queue.create sys ~manager:0 ~name:"pipe" () in
  let payloads = System.alloc sys (8 * items * 2) in
  let produced = ref 0 in
  let (_ : System.report) =
    System.run sys (fun node ->
        let shm = Node.shm node in
        match Node.id node with
        | 1 | 2 ->
          for i = 0 to (items / 2) - 1 do
            (* Write a payload into coherent memory, then enqueue a
               reference to it.  The enqueue RELEASE carries the
               consistency information the eventual consumer needs. *)
            let slot = (((Node.id node - 1) * items) + (i * 2)) * 8 in
            let addr = payloads + slot in
            Shm.write_i64 shm addr ((Node.id node * 1000) + i);
            Node.compute node 0.002;
            Work_queue.enqueue queue node ~bytes:8 addr;
            incr produced;
            if !produced = items then Work_queue.close queue node
          done
        | 3 ->
          let rec consume total =
            match Work_queue.dequeue queue node with
            | None -> Format.printf "consumer: sum of payloads = %d@." total
            | Some addr -> consume (total + Shm.read_i64 shm addr)
          in
          consume 0
        | _ -> ())
  in
  (* The manager forwarded every item without accepting: it saw no
     interval from either producer. *)
  let manager_vc = Lrc.vc (Node.lrc (System.node sys 0)) in
  Format.printf
    "manager's knowledge of producers (intervals from node 1, node 2): %d, \
     %d  -- it stayed out of the causal chain@."
    (Vc.get manager_vc 1) (Vc.get manager_vc 2);
  let consumer_vc = Lrc.vc (Node.lrc (System.node sys 3)) in
  Format.printf
    "consumer's knowledge of producers: %d, %d  -- consistent with both@."
    (Vc.get consumer_vc 1) (Vc.get consumer_vc 2)
