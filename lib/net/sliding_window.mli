(** Reliable, in-order message delivery over the unreliable datagram
    service — the sliding-window protocol CarlOS layers over UDP/IP
    (paper §4.3).

    Every ordered pair of nodes is an independent connection with its own
    sequence space.  The receiver delivers each message exactly once, in
    send order; cumulative acknowledgements and go-back-N retransmission
    recover from datagram loss.  The in-order guarantee per pair is what
    the hybrid Water application relies on for atomic remote updates
    (paper §5.3). *)

(** Wire frames exchanged by the protocol.  Exposed so callers can
    instantiate the underlying medium/datagram layers at this type. *)
type 'a frame

type 'a t

(** [create ?ack_every ?ack_delay engine datagram ~window ~rto] — [window]
    is the maximum number of unacknowledged messages per connection; [rto]
    the retransmission timeout in seconds.

    Delayed cumulative acks: the receiver sends one cumulative ack per
    [ack_every] in-order data frames, or after [ack_delay] seconds when
    fewer are owed — whichever comes first — instead of one ack frame per
    data frame.  Duplicates and out-of-order arrivals are always acked
    immediately (that ack is what stops a retransmission storm).  The
    defaults ([ack_every = 1]) keep the legacy ack-per-frame behaviour;
    [ack_every > 1] requires [0 < ack_delay < rto] so a delayed ack can
    never be mistaken for loss. *)
val create :
  ?ack_every:int ->
  ?ack_delay:float ->
  Carlos_sim.Engine.t ->
  'a frame Datagram.t ->
  window:int ->
  rto:float ->
  'a t

(** The registry this protocol reports into (the datagram service's). *)
val obs : 'a t -> Carlos_obs.Obs.t

val nodes : 'a t -> int

(** Reliable asynchronous send.  Returns immediately; delivery happens at
    some later virtual time. *)
val send : 'a t -> src:int -> dst:int -> payload_bytes:int -> 'a -> unit

(** Install the in-order delivery upcall for a node.  The upcall is invoked
    once per message; it runs at interrupt level and must not block (spawn a
    fiber for any blocking work). *)
val set_handler :
  'a t -> node:int -> (src:int -> size:int -> 'a -> unit) -> unit

(** {1 Statistics}

    Counters [sw.sent], [sw.delivered], [sw.retransmits] and [sw.acks]
    in the registry, [Net] layer, cumulative since creation —
    snapshot/diff the registry to measure a phase. *)

val messages_sent : 'a t -> int

val messages_delivered : 'a t -> int

val retransmissions : 'a t -> int

val acks_sent : 'a t -> int

(** Data frames whose acknowledgement rode a later cumulative ack instead
    of getting their own frame (counter [sw.acks_coalesced]). *)
val acks_coalesced : 'a t -> int
