(** Reliable, in-order message delivery over the unreliable datagram
    service — the sliding-window protocol CarlOS layers over UDP/IP
    (paper §4.3).

    Every ordered pair of nodes is an independent connection with its own
    sequence space.  The receiver delivers each message exactly once, in
    send order; cumulative acknowledgements and go-back-N retransmission
    recover from datagram loss.  The in-order guarantee per pair is what
    the hybrid Water application relies on for atomic remote updates
    (paper §5.3).

    {2 Adaptive retransmission (ARQ)}

    By default the retransmission timeout adapts per connection:

    - {b RTT estimation} — Jacobson/Karels smoothed RTT and variance
      ([srtt + 4 * rttvar]), sampled only from frames that were never
      retransmitted (Karn's rule), clamped between the configured [rto]
      (a floor) and [64 * rto].
    - {b Serialization floor} — everything in flight on a connection must
      serialize through the shared wire before the oldest frame's ack can
      come back, so the timeout is additionally floored at
      [rto_margin * inflight_bytes / bandwidth + 2 * latency + ack_delay].
      A multi-megabyte diff frame therefore waits its legitimate wire time
      instead of timing out a dozen times.
    - {b Carrier sense} — an expired timer whose wire still carries a
      backlog ({!Datagram.backlog}) defers past the backlog's drain time
      instead of retransmitting into the queue; only a timeout on an idle
      wire — where the ack had every chance to arrive — resends.
    - {b Persistent backoff} — exponential backoff (capped at 64 x) is
      reset only when a never-retransmitted frame is acked; an ack for a
      retransmitted copy proves delivery, not that congestion cleared.
    - {b Fast retransmit} — three consecutive non-advancing acks resend
      the oldest unacked frame immediately, so genuine single-frame loss
      recovers in about one RTT rather than one RTO.

    [legacy_rto = true] restores the pre-ARQ behaviour exactly (fixed
    [rto], backoff reset on every ack, no fast retransmit) for A/B runs. *)

(** Wire frames exchanged by the protocol.  Exposed so callers can
    instantiate the underlying medium/datagram layers at this type. *)
type 'a frame

type 'a t

(** [create ?ack_every ?ack_delay ?legacy_rto ?rto_margin engine datagram
    ~window ~rto] — [window] is the maximum number of unacknowledged
    messages per connection; [rto] the base retransmission timeout in
    seconds (the fixed timeout under [legacy_rto], the adaptive floor
    otherwise).

    [rto_margin] (default 2.0, must be non-negative) scales the in-flight
    serialization term of the adaptive timeout floor; larger values absorb
    more cross-traffic on the shared wire before a timeout fires.

    Delayed cumulative acks: the receiver sends one cumulative ack per
    [ack_every] in-order data frames, or after [ack_delay] seconds when
    fewer are owed — whichever comes first — instead of one ack frame per
    data frame.  Duplicates and out-of-order arrivals are always acked
    immediately (that ack is what stops a retransmission storm).  The
    defaults ([ack_every = 1]) keep the legacy ack-per-frame behaviour;
    [ack_every > 1] requires [0 < ack_delay < rto] so a delayed ack can
    never be mistaken for loss. *)
val create :
  ?ack_every:int ->
  ?ack_delay:float ->
  ?legacy_rto:bool ->
  ?rto_margin:float ->
  Carlos_sim.Engine.t ->
  'a frame Datagram.t ->
  window:int ->
  rto:float ->
  'a t

(** The registry this protocol reports into (the datagram service's). *)
val obs : 'a t -> Carlos_obs.Obs.t

val nodes : 'a t -> int

(** Reliable asynchronous send.  Returns immediately; delivery happens at
    some later virtual time. *)
val send : 'a t -> src:int -> dst:int -> payload_bytes:int -> 'a -> unit

(** Install the in-order delivery upcall for a node.  The upcall is invoked
    once per message; it runs at interrupt level and must not block (spawn a
    fiber for any blocking work). *)
val set_handler :
  'a t -> node:int -> (src:int -> size:int -> 'a -> unit) -> unit

(** {1 Statistics}

    Counters [sw.sent], [sw.delivered], [sw.retransmits], [sw.acks],
    [sw.rto_timeouts], [sw.rto_deferrals], [sw.rto_samples],
    [sw.fast_retransmits] and [sw.spurious_retransmits] in the registry, [Net] layer, cumulative
    since creation — snapshot/diff the registry to measure a phase.  Each
    arming of the retransmit timer also records the effective timeout in
    the [sw.rto_armed] histogram. *)

val messages_sent : 'a t -> int

val messages_delivered : 'a t -> int

(** All retransmissions (timeout-driven plus fast retransmits). *)
val retransmissions : 'a t -> int

(** Retransmissions triggered by the timer expiring. *)
val rto_timeouts : 'a t -> int

(** Timer expiries that were deferred by carrier sense (the shared wire
    still had a backlog) instead of retransmitting. *)
val rto_deferrals : 'a t -> int

(** RTT samples fed to the estimator (never from retransmitted frames). *)
val rtt_samples : 'a t -> int

(** Retransmissions triggered by duplicate acks, ahead of the timer. *)
val fast_retransmits : 'a t -> int

(** Data frames the receiver already had (wasted retransmitted copies). *)
val spurious_retransmits : 'a t -> int

val acks_sent : 'a t -> int

(** Data frames whose acknowledgement rode a later cumulative ack instead
    of getting their own frame (counter [sw.acks_coalesced]). *)
val acks_coalesced : 'a t -> int
