module Engine = Carlos_sim.Engine
module Resource = Carlos_sim.Resource
module Obs = Carlos_obs.Obs

type 'a handler = src:int -> size:int -> 'a -> unit

type 'a t = {
  engine : Engine.t;
  obs : Obs.t;
  node_count : int;
  latency : float;
  bandwidth : float;
  wire : Resource.Fifo.t;
  (* Bytes accepted by [send] whose serialization onto the wire has not
     finished yet (queued behind the FIFO or mid-transmission).  This is
     the carrier-sense signal: while it is non-zero an ack may simply be
     stuck behind the backlog, so retransmission timers should defer. *)
  mutable backlog_bytes : int;
  handlers : 'a handler option array;
  frames_c : Obs.counter;
  bytes_c : Obs.counter;
  busy_g : Obs.gauge;
  queue_delay : Obs.Hist.t;
}

let create ?obs engine ~nodes ~latency ~bandwidth =
  if nodes <= 0 then invalid_arg "Medium.create: nodes must be positive";
  if bandwidth <= 0.0 then invalid_arg "Medium.create: bandwidth must be positive";
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let g = Obs.global_node in
  {
    engine;
    obs;
    node_count = nodes;
    latency;
    bandwidth;
    wire = Resource.Fifo.create ();
    backlog_bytes = 0;
    handlers = Array.make nodes None;
    frames_c = Obs.counter obs ~node:g ~layer:Obs.Net "medium.frames";
    bytes_c = Obs.counter obs ~node:g ~layer:Obs.Net "medium.bytes";
    busy_g = Obs.gauge obs ~node:g ~layer:Obs.Net "medium.wire_busy";
    queue_delay = Obs.histogram obs ~node:g ~layer:Obs.Net "medium.queue_delay";
  }

let obs t = t.obs

let nodes t = t.node_count

let latency t = t.latency

let bandwidth t = t.bandwidth

let backlog t = t.backlog_bytes

let check_node t node =
  if node < 0 || node >= t.node_count then
    invalid_arg (Printf.sprintf "Medium: bad node %d" node)

let set_handler t ~node handler =
  check_node t node;
  t.handlers.(node) <- Some handler

let send t ~src ~dst ~size payload =
  check_node t src;
  check_node t dst;
  if size <= 0 then invalid_arg "Medium.send: size must be positive";
  Obs.inc t.frames_c;
  Obs.add t.bytes_c size;
  t.backlog_bytes <- t.backlog_bytes + size;
  Engine.spawn t.engine (fun () ->
      let transmit_time = float_of_int size /. t.bandwidth in
      let waited = Resource.Fifo.use t.wire transmit_time in
      t.backlog_bytes <- t.backlog_bytes - size;
      Obs.Hist.observe t.queue_delay waited;
      Obs.set_gauge t.busy_g (Resource.Fifo.busy_time t.wire);
      if Obs.tracing t.obs then
        Obs.complete_at t.obs
          ~ts:(Engine.now t.engine -. transmit_time)
          ~duration:transmit_time ~node:Obs.global_node ~layer:Obs.Net
          "net.frame"
          ~args:[ ("src", Obs.Int src); ("dst", Obs.Int dst); ("size", Obs.Int size) ];
      Engine.delay t.latency;
      match t.handlers.(dst) with
      | None -> ()
      | Some handler -> handler ~src ~size payload)

let frames_sent t = Obs.value t.frames_c

let bytes_sent t = Obs.value t.bytes_c

let wire_busy_time t = Resource.Fifo.busy_time t.wire

let utilization t ~elapsed =
  if elapsed <= 0.0 then 0.0 else wire_busy_time t /. elapsed
