(** Shared broadcast medium modelling the paper's isolated 10 Mbit/s
    Ethernet segment.

    All frames from all nodes serialize through one FIFO transmission
    resource (CSMA contention is approximated by FIFO queueing, which is
    accurate for a lightly-to-moderately loaded segment and deterministic).
    A frame occupies the wire for [size / bandwidth] seconds and is then
    delivered after a fixed propagation-plus-interrupt [latency].

    The medium is polymorphic in the payload it carries; upper layers
    (datagram service, sliding-window protocol) choose their own frame
    types.

    All accounting lives in the {!Carlos_obs.Obs} registry under the [Net]
    layer at {!Carlos_obs.Obs.global_node} (the wire is shared — no single
    node owns it): counters [medium.frames] and [medium.bytes], the
    [medium.wire_busy] gauge, and a [medium.queue_delay] histogram of the
    virtual time each frame waited for the wire.  When tracing is enabled,
    each transmission is additionally recorded as a [net.frame] complete
    event. *)

type 'a t

(** [create ?obs engine ~nodes ~latency ~bandwidth] builds a medium
    connecting [nodes] stations.  [bandwidth] is in bytes per second;
    [latency] in seconds covers propagation plus receive-side interrupt
    dispatch.  Instruments register in [obs] (a fresh private registry by
    default; pass the system-wide one to share). *)
val create :
  ?obs:Carlos_obs.Obs.t ->
  Carlos_sim.Engine.t ->
  nodes:int ->
  latency:float ->
  bandwidth:float ->
  'a t

(** The registry this medium reports into. *)
val obs : 'a t -> Carlos_obs.Obs.t

val nodes : 'a t -> int

(** Propagation-plus-interrupt delay, as passed to {!create}. *)
val latency : 'a t -> float

(** Wire bandwidth in bytes per second, as passed to {!create}.  Upper
    layers use it to bound how long a frame can legitimately occupy the
    wire (e.g. the sliding window's payload-aware RTO floor). *)
val bandwidth : 'a t -> float

(** Bytes accepted by {!send} whose serialization onto the wire has not
    completed yet (queued behind the FIFO or mid-transmission).  This is
    the carrier-sense signal: while non-zero, an expected ack may simply
    be queued behind the backlog, so retransmission timers should defer
    rather than fire.  [backlog t /. bandwidth t] bounds the remaining
    drain time. *)
val backlog : 'a t -> int

(** Install the receive upcall for a station.  The upcall runs in a fresh
    fiber at delivery time and may block. *)
val set_handler : 'a t -> node:int -> (src:int -> size:int -> 'a -> unit) -> unit

(** [send t ~src ~dst ~size payload] queues a frame for transmission.
    Non-blocking for the caller (the NIC DMAs the frame out); the frame
    contends for the shared wire in FIFO order.  [size] is the full frame
    size in bytes, headers included. *)
val send : 'a t -> src:int -> dst:int -> size:int -> 'a -> unit

(** {1 Statistics}

    Cumulative since creation — take {!Carlos_obs.Obs.snapshot}s and
    {!Carlos_obs.Obs.diff} them to measure a phase. *)

val frames_sent : 'a t -> int

val bytes_sent : 'a t -> int

(** Cumulative virtual time the wire was busy transmitting. *)
val wire_busy_time : 'a t -> float

(** [utilization t ~elapsed] is the fraction of [elapsed] during which the
    wire was transmitting. *)
val utilization : 'a t -> elapsed:float -> float
