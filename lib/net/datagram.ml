module Rng = Carlos_sim.Rng
module Obs = Carlos_obs.Obs
module Cost = Carlos_obs.Cost

(* 14 (Ethernet) + 20 (IP) + 8 (UDP). *)
let header_bytes = 42

type 'a t = {
  medium : 'a Medium.t;
  loss : float;
  rng : Rng.t option;
  mutable sends_seen : int;
  forced_drops : (int, unit) Hashtbl.t;
  sent_c : Obs.counter;
  dropped_c : Obs.counter;
  dropped_bytes_c : Obs.counter;
  payload_c : Obs.counter;
  cost : Cost.t;
}

let create medium ?(loss = 0.0) ?rng () =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Datagram.create: bad loss";
  if loss > 0.0 && rng = None then
    invalid_arg "Datagram.create: loss requires an rng";
  let obs = Medium.obs medium in
  let g = Obs.global_node in
  {
    medium;
    loss;
    rng;
    sends_seen = 0;
    forced_drops = Hashtbl.create 7;
    sent_c = Obs.counter obs ~node:g ~layer:Obs.Net "datagram.sent";
    dropped_c = Obs.counter obs ~node:g ~layer:Obs.Net "datagram.dropped";
    dropped_bytes_c =
      Obs.counter obs ~node:g ~layer:Obs.Net "datagram.dropped_bytes";
    payload_c = Obs.counter obs ~node:g ~layer:Obs.Net "datagram.payload_bytes";
    cost = Cost.create obs;
  }

let obs t = Medium.obs t.medium

let nodes t = Medium.nodes t.medium

let set_handler t ~node handler =
  Medium.set_handler t.medium ~node (fun ~src ~size v ->
      handler ~src ~size:(size - header_bytes) v)

let latency t = Medium.latency t.medium

let bandwidth t = Medium.bandwidth t.medium

let backlog t = Medium.backlog t.medium

let inject_drops t idxs =
  List.iter
    (fun i ->
      if i < 0 then invalid_arg "Datagram.inject_drops: negative index";
      Hashtbl.replace t.forced_drops (t.sends_seen + i) ())
    idxs

let dropped t =
  (* A forced drop consumes no rng draw, so seeded random-loss runs are
     unperturbed by tests that also inject targeted drops. *)
  let idx = t.sends_seen in
  t.sends_seen <- idx + 1;
  if Hashtbl.mem t.forced_drops idx then begin
    Hashtbl.remove t.forced_drops idx;
    true
  end
  else
    t.loss > 0.0
    &&
    match t.rng with
    | Some rng -> Rng.flip rng ~p:t.loss
    | None -> false

let send t ~src ~dst ~payload_bytes v =
  if payload_bytes < 0 then invalid_arg "Datagram.send: negative size";
  Obs.inc t.sent_c;
  Obs.add t.payload_c payload_bytes;
  (* Frame headers are billed for every frame, dropped ones included;
     dropped frames' full size goes to dropped_bytes so that the cost
     conservation equation (sum of components = medium.bytes +
     dropped_bytes) stays exact under loss. *)
  Cost.add t.cost Cost.Frame_header header_bytes;
  if dropped t then begin
    Obs.inc t.dropped_c;
    Obs.add t.dropped_bytes_c (payload_bytes + header_bytes)
  end
  else Medium.send t.medium ~src ~dst ~size:(payload_bytes + header_bytes) v

let datagrams_sent t = Obs.value t.sent_c

let datagrams_dropped t = Obs.value t.dropped_c

let dropped_bytes t = Obs.value t.dropped_bytes_c

let payload_bytes_sent t = Obs.value t.payload_c
