module Engine = Carlos_sim.Engine
module Obs = Carlos_obs.Obs
module Cost = Carlos_obs.Cost

type 'a frame =
  | Data of { seq : int; payload_bytes : int; payload : 'a }
  | Ack of { cumulative : int }

let ack_bytes = 8

(* Per ordered (src, dst) pair.  Sequence numbers are assigned when a
   message first goes on the wire, so the [pending] queue (messages waiting
   for the window to open) keeps FIFO order automatically. *)
type 'a connection = {
  (* Sender side. *)
  mutable next_seq : int;
  unacked : (int * int * 'a) Queue.t; (* seq, payload_bytes, payload *)
  pending : (int * 'a) Queue.t; (* payload_bytes, payload *)
  mutable timer_epoch : int; (* invalidates stale retransmit timers *)
  (* Receiver side (indexed the same way from the peer's perspective). *)
  mutable expected : int;
  out_of_order : (int, int * 'a) Hashtbl.t;
  (* Delayed-ack state: in-order frames delivered since the last
     acknowledgement, and the epoch/armed pair that invalidates a stale
     ack-delay timer once a cumulative ack goes out. *)
  mutable ack_owed : int;
  mutable ack_epoch : int;
  mutable ack_armed : bool;
}

type 'a handler = src:int -> size:int -> 'a -> unit

type 'a t = {
  engine : Engine.t;
  datagram : 'a frame Datagram.t;
  window : int;
  rto : float;
  ack_every : int; (* cumulative ack after this many in-order frames *)
  ack_delay : float; (* ...or after this long, whichever comes first *)
  connections : 'a connection array array; (* [src].[dst] *)
  handlers : 'a handler option array;
  sent_c : Obs.counter;
  delivered_c : Obs.counter;
  retransmitted_c : Obs.counter;
  acks_c : Obs.counter;
  acks_coalesced_c : Obs.counter;
  cost : Cost.t;
}

let make_connection () =
  {
    next_seq = 0;
    unacked = Queue.create ();
    pending = Queue.create ();
    timer_epoch = 0;
    expected = 0;
    out_of_order = Hashtbl.create 8;
    ack_owed = 0;
    ack_epoch = 0;
    ack_armed = false;
  }

let nodes t = Datagram.nodes t.datagram

let conn t ~src ~dst = t.connections.(src).(dst)

let transmit t ~src ~dst ~seq ~payload_bytes payload =
  Datagram.send t.datagram ~src ~dst ~payload_bytes
    (Data { seq; payload_bytes; payload })

let send_ack t ~src ~dst ~cumulative =
  Obs.inc t.acks_c;
  Cost.add t.cost Cost.Ack ack_bytes;
  Datagram.send t.datagram ~src ~dst ~payload_bytes:ack_bytes
    (Ack { cumulative })

(* Send the cumulative ack for the src->node connection now, covering every
   owed frame, and invalidate any pending ack-delay timer. *)
let flush_ack t c ~node ~src =
  if c.ack_owed > 1 then Obs.add t.acks_coalesced_c (c.ack_owed - 1);
  c.ack_owed <- 0;
  c.ack_epoch <- c.ack_epoch + 1;
  c.ack_armed <- false;
  send_ack t ~src:node ~dst:src ~cumulative:(c.expected - 1)

(* Delayed cumulative acks: rather than one ack frame per data frame, ack
   after [ack_every] in-order frames or [ack_delay] seconds, whichever
   comes first.  Duplicates and out-of-order arrivals still ack
   immediately — the sender is (or is about to start) retransmitting, and
   a prompt cumulative ack is what stops the storm. *)
let note_delivered t c ~node ~src ~frames =
  c.ack_owed <- c.ack_owed + frames;
  if t.ack_every <= 1 || c.ack_owed >= t.ack_every then flush_ack t c ~node ~src
  else if not c.ack_armed then begin
    c.ack_armed <- true;
    let epoch = c.ack_epoch in
    Engine.at t.engine
      ~time:(Engine.now t.engine +. t.ack_delay)
      (fun () ->
        if c.ack_epoch = epoch && c.ack_owed > 0 then flush_ack t c ~node ~src)
  end

(* Arm (or re-arm) the retransmission timer for connection src->dst.
   Each consecutive firing doubles the timeout (bounded), so a large
   frame that simply needs longer than one RTO to cross the wire does not
   trigger a retransmission storm. *)
let rec arm_timer ?(backoff = 1.0) t ~src ~dst =
  let c = conn t ~src ~dst in
  c.timer_epoch <- c.timer_epoch + 1;
  let epoch = c.timer_epoch in
  Engine.at t.engine
    ~time:(Engine.now t.engine +. (t.rto *. backoff))
    (fun () ->
      if c.timer_epoch = epoch && not (Queue.is_empty c.unacked) then begin
        (* The receiver buffers out-of-order frames and acks cumulatively,
           so only the oldest unacknowledged frame can be the gap:
           retransmit just it.  Resending the whole window would multiply
           the damage of a timeout that was merely a congested wire (a
           burst of large frames can take longer than one RTO to drain). *)
        (match Queue.peek_opt c.unacked with
        | Some (seq, payload_bytes, payload) ->
          Obs.inc t.retransmitted_c;
          (* The original send already attributed this payload to its
             protocol components; the resend is pure retransmission cost. *)
          Cost.add t.cost Cost.Retransmit payload_bytes;
          transmit t ~src ~dst ~seq ~payload_bytes payload
        | None -> ());
        arm_timer ~backoff:(Float.min 64.0 (2.0 *. backoff)) t ~src ~dst
      end)

let disarm_timer c = c.timer_epoch <- c.timer_epoch + 1

(* Put one message on the wire, assigning its sequence number. *)
let launch t ~src ~dst ~payload_bytes payload =
  let c = conn t ~src ~dst in
  let seq = c.next_seq in
  c.next_seq <- seq + 1;
  Queue.add (seq, payload_bytes, payload) c.unacked;
  transmit t ~src ~dst ~seq ~payload_bytes payload

let send t ~src ~dst ~payload_bytes payload =
  Obs.inc t.sent_c;
  let c = conn t ~src ~dst in
  if Queue.length c.unacked < t.window && Queue.is_empty c.pending then begin
    let was_idle = Queue.is_empty c.unacked in
    launch t ~src ~dst ~payload_bytes payload;
    if was_idle then arm_timer t ~src ~dst
  end
  else Queue.add (payload_bytes, payload) c.pending

(* Ack from [dst] for the connection src->dst (we are the sender, [src]). *)
let handle_ack t ~src ~dst ~cumulative =
  let c = conn t ~src ~dst in
  let advanced = ref false in
  let rec drop () =
    match Queue.peek_opt c.unacked with
    | Some (seq, _, _) when seq <= cumulative ->
      ignore (Queue.pop c.unacked);
      advanced := true;
      drop ()
    | Some _ | None -> ()
  in
  drop ();
  if !advanced then begin
    (* Window opened: promote pending messages in FIFO order. *)
    while
      (not (Queue.is_empty c.pending)) && Queue.length c.unacked < t.window
    do
      let payload_bytes, payload = Queue.pop c.pending in
      launch t ~src ~dst ~payload_bytes payload
    done;
    if Queue.is_empty c.unacked then disarm_timer c
    else arm_timer t ~src ~dst
  end

let messages_sent t = Obs.value t.sent_c

let messages_delivered t = Obs.value t.delivered_c

let retransmissions t = Obs.value t.retransmitted_c

let acks_sent t = Obs.value t.acks_c

let acks_coalesced t = Obs.value t.acks_coalesced_c

let deliver t ~node ~src ~payload_bytes payload =
  Obs.inc t.delivered_c;
  match t.handlers.(node) with
  | None -> ()
  | Some handler -> handler ~src ~size:payload_bytes payload

(* Data frame from [src] arriving at [node]. *)
let handle_data t ~node ~src ~seq ~payload_bytes payload =
  (* Receiver state for the src->node connection lives in
     connections.(src).(node). *)
  let c = t.connections.(src).(node) in
  if seq < c.expected then
    (* Duplicate (a retransmission we already have): re-ack immediately. *)
    flush_ack t c ~node ~src
  else if seq = c.expected then begin
    deliver t ~node ~src ~payload_bytes payload;
    c.expected <- c.expected + 1;
    (* Drain any buffered successors. *)
    let frames = ref 1 in
    let rec drain () =
      match Hashtbl.find_opt c.out_of_order c.expected with
      | Some (bytes, p) ->
        Hashtbl.remove c.out_of_order c.expected;
        deliver t ~node ~src ~payload_bytes:bytes p;
        c.expected <- c.expected + 1;
        incr frames;
        drain ()
      | None -> ()
    in
    drain ();
    note_delivered t c ~node ~src ~frames:!frames
  end
  else begin
    if not (Hashtbl.mem c.out_of_order seq) then
      Hashtbl.replace c.out_of_order seq (payload_bytes, payload);
    (* A gap means a frame was lost: ack immediately so go-back-N recovery
       is not further delayed. *)
    flush_ack t c ~node ~src
  end

let on_datagram t node ~src ~size:_ frame =
  match frame with
  | Data { seq; payload_bytes; payload } ->
    handle_data t ~node ~src ~seq ~payload_bytes payload
  | Ack { cumulative } ->
    (* We (node) are the sender of the node->src connection. *)
    handle_ack t ~src:node ~dst:src ~cumulative

let create ?(ack_every = 1) ?(ack_delay = 0.0) engine datagram ~window ~rto =
  if window <= 0 then invalid_arg "Sliding_window.create: window";
  if rto <= 0.0 then invalid_arg "Sliding_window.create: rto";
  if ack_every <= 0 then invalid_arg "Sliding_window.create: ack_every";
  if ack_every > 1 && ack_delay <= 0.0 then
    invalid_arg "Sliding_window.create: ack_every > 1 needs ack_delay > 0";
  if ack_delay >= rto then
    invalid_arg "Sliding_window.create: ack_delay must stay below rto";
  let n = Datagram.nodes datagram in
  let obs = Datagram.obs datagram in
  let g = Obs.global_node in
  let t =
    {
      engine;
      datagram;
      window;
      rto;
      ack_every;
      ack_delay;
      connections =
        Array.init n (fun _ -> Array.init n (fun _ -> make_connection ()));
      handlers = Array.make n None;
      sent_c = Obs.counter obs ~node:g ~layer:Obs.Net "sw.sent";
      delivered_c = Obs.counter obs ~node:g ~layer:Obs.Net "sw.delivered";
      retransmitted_c = Obs.counter obs ~node:g ~layer:Obs.Net "sw.retransmits";
      acks_c = Obs.counter obs ~node:g ~layer:Obs.Net "sw.acks";
      acks_coalesced_c =
        Obs.counter obs ~node:g ~layer:Obs.Net "sw.acks_coalesced";
      cost = Cost.create obs;
    }
  in
  for node = 0 to n - 1 do
    Datagram.set_handler datagram ~node (fun ~src ~size frame ->
        on_datagram t node ~src ~size frame)
  done;
  t

let set_handler t ~node handler = t.handlers.(node) <- Some handler

let obs t = Datagram.obs t.datagram
