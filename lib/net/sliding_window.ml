module Engine = Carlos_sim.Engine
module Obs = Carlos_obs.Obs
module Cost = Carlos_obs.Cost

type 'a frame =
  | Data of { seq : int; payload_bytes : int; payload : 'a }
  | Ack of { cumulative : int }

let ack_bytes = 8

let dup_ack_threshold = 3

let backoff_cap = 64.0

(* One message on the wire, awaiting acknowledgement.  [sent_at] and
   [retransmitted] feed the RTT estimator: per Karn's rule a frame that has
   been retransmitted is ambiguous (the ack may be for either copy) and is
   never sampled. *)
type 'a sent = {
  seq : int;
  payload_bytes : int;
  payload : 'a;
  mutable sent_at : float;
  mutable retransmitted : bool;
}

(* Per ordered (src, dst) pair.  Sequence numbers are assigned when a
   message first goes on the wire, so the [pending] queue (messages waiting
   for the window to open) keeps FIFO order automatically. *)
type 'a connection = {
  (* Sender side. *)
  mutable next_seq : int;
  unacked : 'a sent Queue.t;
  pending : (int * 'a) Queue.t; (* payload_bytes, payload *)
  mutable timer_epoch : int; (* invalidates stale retransmit timers *)
  mutable deadline : float; (* current retransmit deadline; may be pushed *)
  mutable inflight_bytes : int; (* payload + headers of every unacked frame *)
  mutable srtt : float; (* smoothed RTT; < 0.0 means no sample yet *)
  mutable rttvar : float;
  mutable backoff : float; (* exponential backoff multiplier, >= 1.0 *)
  mutable dup_acks : int; (* consecutive non-advancing acks seen *)
  mutable fast_done : int; (* highest seq already fast-retransmitted *)
  (* Receiver side (indexed the same way from the peer's perspective). *)
  mutable expected : int;
  out_of_order : (int, int * 'a) Hashtbl.t;
  (* Delayed-ack state: in-order frames delivered since the last
     acknowledgement, and the epoch/armed pair that invalidates a stale
     ack-delay timer once a cumulative ack goes out. *)
  mutable ack_owed : int;
  mutable ack_epoch : int;
  mutable ack_armed : bool;
}

type 'a handler = src:int -> size:int -> 'a -> unit

type 'a t = {
  engine : Engine.t;
  datagram : 'a frame Datagram.t;
  window : int;
  rto : float; (* base (minimum) retransmission timeout *)
  legacy_rto : bool; (* fixed-RTO, reset-on-ack pre-PR8 behaviour *)
  margin : float; (* serialization-floor safety factor (rto_margin) *)
  bandwidth : float; (* cached from the medium, bytes per second *)
  latency : float; (* cached from the medium, seconds *)
  ack_every : int; (* cumulative ack after this many in-order frames *)
  ack_delay : float; (* ...or after this long, whichever comes first *)
  connections : 'a connection array array; (* [src].[dst] *)
  handlers : 'a handler option array;
  sent_c : Obs.counter;
  delivered_c : Obs.counter;
  retransmitted_c : Obs.counter;
  rto_timeouts_c : Obs.counter;
  rto_deferrals_c : Obs.counter;
  rto_samples_c : Obs.counter;
  fast_retransmits_c : Obs.counter;
  spurious_c : Obs.counter;
  acks_c : Obs.counter;
  acks_coalesced_c : Obs.counter;
  rto_armed_h : Obs.Hist.t;
  cost : Cost.t;
}

let make_connection () =
  {
    next_seq = 0;
    unacked = Queue.create ();
    pending = Queue.create ();
    timer_epoch = 0;
    deadline = 0.0;
    inflight_bytes = 0;
    srtt = -1.0;
    rttvar = 0.0;
    backoff = 1.0;
    dup_acks = 0;
    fast_done = -1;
    expected = 0;
    out_of_order = Hashtbl.create 8;
    ack_owed = 0;
    ack_epoch = 0;
    ack_armed = false;
  }

let nodes t = Datagram.nodes t.datagram

let conn t ~src ~dst = t.connections.(src).(dst)

let transmit t ~src ~dst ~seq ~payload_bytes payload =
  Datagram.send t.datagram ~src ~dst ~payload_bytes
    (Data { seq; payload_bytes; payload })

let send_ack t ~src ~dst ~cumulative =
  Obs.inc t.acks_c;
  Cost.add t.cost Cost.Ack ack_bytes;
  Datagram.send t.datagram ~src ~dst ~payload_bytes:ack_bytes
    (Ack { cumulative })

(* Send the cumulative ack for the src->node connection now, covering every
   owed frame, and invalidate any pending ack-delay timer. *)
let flush_ack t c ~node ~src =
  if c.ack_owed > 1 then Obs.add t.acks_coalesced_c (c.ack_owed - 1);
  c.ack_owed <- 0;
  c.ack_epoch <- c.ack_epoch + 1;
  c.ack_armed <- false;
  send_ack t ~src:node ~dst:src ~cumulative:(c.expected - 1)

(* Delayed cumulative acks: rather than one ack frame per data frame, ack
   after [ack_every] in-order frames or [ack_delay] seconds, whichever
   comes first.  Duplicates and out-of-order arrivals still ack
   immediately — the sender is (or is about to start) retransmitting, and
   a prompt cumulative ack is what stops the storm. *)
let note_delivered t c ~node ~src ~frames =
  c.ack_owed <- c.ack_owed + frames;
  if t.ack_every <= 1 || c.ack_owed >= t.ack_every then flush_ack t c ~node ~src
  else if not c.ack_armed then begin
    c.ack_armed <- true;
    let epoch = c.ack_epoch in
    Engine.at t.engine
      ~time:(Engine.now t.engine +. t.ack_delay)
      (fun () ->
        if c.ack_epoch = epoch && c.ack_owed > 0 then flush_ack t c ~node ~src)
  end

(* The retransmission timeout for one arming of the timer, before backoff.

   Legacy mode: the pre-PR8 fixed [rto], regardless of RTT or frame size.

   Adaptive mode: Jacobson/Karels [srtt + 4 * rttvar] (clamped between the
   configured [rto], acting as a floor, and [64 * rto]), further floored by
   the physics of the shared wire — everything in flight on this connection
   must serialize at [bandwidth] before the ack for the oldest frame can
   even be generated, the ack then crosses the wire too, propagation is
   paid twice, and the receiver may hold the ack for up to [ack_delay].
   [margin] scales the serialization term to absorb cross-traffic from
   other connections sharing the wire; without this floor a 2 MB diff at
   10 Mbit/s (1.6 s on the wire) times out over a dozen times under the
   default 0.1 s rto before its ack can possibly arrive. *)
let effective_rto t c =
  if t.legacy_rto then t.rto
  else begin
    let adaptive =
      if c.srtt < 0.0 then t.rto
      else
        Float.min
          (Float.max (c.srtt +. (4.0 *. c.rttvar)) t.rto)
          (64.0 *. t.rto)
    in
    let wire_floor =
      (t.margin *. float_of_int c.inflight_bytes /. t.bandwidth)
      +. (2.0 *. t.latency) +. t.ack_delay
    in
    Float.max adaptive wire_floor
  end

(* Jacobson/Karels estimator update from one (never-retransmitted, per
   Karn's rule) RTT sample. *)
let rtt_sample t c sample =
  Obs.inc t.rto_samples_c;
  if c.srtt < 0.0 then begin
    c.srtt <- sample;
    c.rttvar <- sample /. 2.0
  end
  else begin
    let err = sample -. c.srtt in
    c.srtt <- c.srtt +. (err /. 8.0);
    c.rttvar <- c.rttvar +. ((Float.abs err -. c.rttvar) /. 4.0)
  end

(* Retransmission timer, one per connection, guarding the oldest
   unacknowledged frame.  The live deadline is kept on the connection so
   that it can be pushed out (never pulled in) while an engine event is
   already scheduled: launching more frames into the window grows the
   serialization floor, and firing at the stale earlier deadline would
   retransmit a frame whose ack simply has not had wire time to come back.
   The watcher re-schedules itself at the extended deadline instead of
   retransmitting.

   Carrier sense: even an expired deadline is not acted on while the shared
   wire still has a backlog.  The estimator can only see this connection's
   history, but the medium knows exactly how many bytes are queued ahead of
   (or around) the awaited ack — a burst from another node can hold the
   wire far beyond any per-connection RTO, and retransmitting into that
   queue is precisely the storm this timer exists to avoid.  Instead the
   deadline is deferred past the backlog's drain time (plus the ack's own
   wire time) and the fire re-checked then; only a timeout on an *idle*
   wire, where the ack had every chance to arrive, triggers a resend and
   backoff.  On a genuine expiry only the oldest frame is resent —
   the receiver buffers out-of-order frames and acks cumulatively, so only
   the oldest frame can be the gap, and resending the whole window would
   multiply the damage of a timeout that was merely a congested wire. *)
let rec watch t c ~src ~dst ~epoch =
  Engine.at t.engine ~time:c.deadline (fun () ->
      if c.timer_epoch = epoch && not (Queue.is_empty c.unacked) then begin
        let now = Engine.now t.engine in
        if c.deadline -. now > 1e-9 then
          (* Deadline was pushed out since this event was scheduled. *)
          watch t c ~src ~dst ~epoch
        else if (not t.legacy_rto) && Datagram.backlog t.datagram > 0 then begin
          (* Carrier sense: the wire is still draining a backlog the ack
             may be stuck behind.  Defer past its drain time (plus the
             ack's own serialization and round-trip propagation) instead
             of retransmitting into the queue; no backoff — nothing was
             lost yet as far as we can tell. *)
          Obs.inc t.rto_deferrals_c;
          c.deadline <-
            now
            +. (float_of_int
                  (Datagram.backlog t.datagram + ack_bytes
                 + Datagram.header_bytes)
               /. t.bandwidth)
            +. (2.0 *. t.latency) +. t.ack_delay;
          watch t c ~src ~dst ~epoch
        end
        else begin
          (match Queue.peek_opt c.unacked with
          | Some f ->
            Obs.inc t.retransmitted_c;
            Obs.inc t.rto_timeouts_c;
            f.retransmitted <- true;
            f.sent_at <- now;
            (* The original send already attributed this payload to its
               protocol components; the resend is pure retransmission
               cost. *)
            Cost.add t.cost Cost.Retransmit f.payload_bytes;
            transmit t ~src ~dst ~seq:f.seq ~payload_bytes:f.payload_bytes
              f.payload
          | None -> ());
          c.backoff <- Float.min backoff_cap (2.0 *. c.backoff);
          c.deadline <- now +. (effective_rto t c *. c.backoff);
          watch t c ~src ~dst ~epoch
        end
      end)

let arm_timer t c ~src ~dst =
  c.timer_epoch <- c.timer_epoch + 1;
  let timeout = effective_rto t c *. c.backoff in
  Obs.Hist.observe t.rto_armed_h timeout;
  c.deadline <- Engine.now t.engine +. timeout;
  watch t c ~src ~dst ~epoch:c.timer_epoch

(* Launching into an already-armed window grows the in-flight payload and
   with it the serialization floor; push the deadline out to match (the
   scheduled watcher re-schedules itself).  Legacy mode armed once per
   window and never adjusted — preserved for A/B. *)
let extend_timer t c =
  if not t.legacy_rto then
    c.deadline <-
      Float.max c.deadline
        (Engine.now t.engine +. (effective_rto t c *. c.backoff))

let disarm_timer c = c.timer_epoch <- c.timer_epoch + 1

(* Put one message on the wire, assigning its sequence number. *)
let launch t ~src ~dst ~payload_bytes payload =
  let c = conn t ~src ~dst in
  let seq = c.next_seq in
  c.next_seq <- seq + 1;
  Queue.add
    {
      seq;
      payload_bytes;
      payload;
      sent_at = Engine.now t.engine;
      retransmitted = false;
    }
    c.unacked;
  c.inflight_bytes <- c.inflight_bytes + payload_bytes + Datagram.header_bytes;
  transmit t ~src ~dst ~seq ~payload_bytes payload

let send t ~src ~dst ~payload_bytes payload =
  Obs.inc t.sent_c;
  let c = conn t ~src ~dst in
  if Queue.length c.unacked < t.window && Queue.is_empty c.pending then begin
    let was_idle = Queue.is_empty c.unacked in
    launch t ~src ~dst ~payload_bytes payload;
    if was_idle then begin
      (* Legacy reset backoff on every fresh arming; adaptive lets it
         persist until a never-retransmitted frame is acked, so a congested
         wire is not re-probed at full rate the moment it goes idle. *)
      if t.legacy_rto then c.backoff <- 1.0;
      arm_timer t c ~src ~dst
    end
    else extend_timer t c
  end
  else Queue.add (payload_bytes, payload) c.pending

(* Fast retransmit: [dup_ack_threshold] consecutive non-advancing acks mean
   the receiver keeps seeing frames beyond a gap — the oldest unacked frame
   was lost, not delayed.  Resend it now instead of waiting out the RTO.
   [fast_done] stops the trailing duplicates of the same gap from
   triggering a second resend. *)
let fast_retransmit t c ~src ~dst =
  match Queue.peek_opt c.unacked with
  | Some f when c.dup_acks >= dup_ack_threshold && f.seq > c.fast_done ->
    c.dup_acks <- 0;
    c.fast_done <- f.seq;
    f.retransmitted <- true;
    f.sent_at <- Engine.now t.engine;
    Obs.inc t.retransmitted_c;
    Obs.inc t.fast_retransmits_c;
    Cost.add t.cost Cost.Retransmit f.payload_bytes;
    transmit t ~src ~dst ~seq:f.seq ~payload_bytes:f.payload_bytes f.payload;
    arm_timer t c ~src ~dst
  | _ -> ()

(* Ack from [dst] for the connection src->dst (we are the sender, [src]). *)
let handle_ack t ~src ~dst ~cumulative =
  let c = conn t ~src ~dst in
  let now = Engine.now t.engine in
  let advanced = ref false in
  let fresh_acked = ref false in
  let rec drop () =
    match Queue.peek_opt c.unacked with
    | Some f when f.seq <= cumulative ->
      ignore (Queue.pop c.unacked);
      c.inflight_bytes <-
        c.inflight_bytes - (f.payload_bytes + Datagram.header_bytes);
      if not f.retransmitted then begin
        fresh_acked := true;
        rtt_sample t c (now -. f.sent_at)
      end;
      advanced := true;
      drop ()
    | Some _ | None -> ()
  in
  drop ();
  if !advanced then begin
    c.dup_acks <- 0;
    (* Backoff survives window advancement while the only acked frames are
       retransmissions: the ack tells us a resent copy got through, not
       that the congestion that forced the resend has cleared.  Only an
       acked frame that was never retransmitted is evidence the wire is
       keeping up.  (Legacy reset unconditionally — the PR8 storm bug.) *)
    if t.legacy_rto || !fresh_acked then c.backoff <- 1.0;
    (* Window opened: promote pending messages in FIFO order. *)
    while
      (not (Queue.is_empty c.pending)) && Queue.length c.unacked < t.window
    do
      let payload_bytes, payload = Queue.pop c.pending in
      launch t ~src ~dst ~payload_bytes payload
    done;
    if Queue.is_empty c.unacked then disarm_timer c
    else arm_timer t c ~src ~dst
  end
  else if (not t.legacy_rto) && not (Queue.is_empty c.unacked) then begin
    c.dup_acks <- c.dup_acks + 1;
    fast_retransmit t c ~src ~dst
  end

let messages_sent t = Obs.value t.sent_c

let messages_delivered t = Obs.value t.delivered_c

let retransmissions t = Obs.value t.retransmitted_c

let rto_timeouts t = Obs.value t.rto_timeouts_c

let rto_deferrals t = Obs.value t.rto_deferrals_c

let rtt_samples t = Obs.value t.rto_samples_c

let fast_retransmits t = Obs.value t.fast_retransmits_c

let spurious_retransmits t = Obs.value t.spurious_c

let acks_sent t = Obs.value t.acks_c

let acks_coalesced t = Obs.value t.acks_coalesced_c

let deliver t ~node ~src ~payload_bytes payload =
  Obs.inc t.delivered_c;
  match t.handlers.(node) with
  | None -> ()
  | Some handler -> handler ~src ~size:payload_bytes payload

(* Data frame from [src] arriving at [node]. *)
let handle_data t ~node ~src ~seq ~payload_bytes payload =
  (* Receiver state for the src->node connection lives in
     connections.(src).(node). *)
  let c = t.connections.(src).(node) in
  if seq < c.expected then begin
    (* Duplicate (a retransmission we already have): the copy was wasted
       wire — count it, and re-ack immediately. *)
    Obs.inc t.spurious_c;
    flush_ack t c ~node ~src
  end
  else if seq = c.expected then begin
    deliver t ~node ~src ~payload_bytes payload;
    c.expected <- c.expected + 1;
    (* Drain any buffered successors. *)
    let frames = ref 1 in
    let rec drain () =
      match Hashtbl.find_opt c.out_of_order c.expected with
      | Some (bytes, p) ->
        Hashtbl.remove c.out_of_order c.expected;
        deliver t ~node ~src ~payload_bytes:bytes p;
        c.expected <- c.expected + 1;
        incr frames;
        drain ()
      | None -> ()
    in
    drain ();
    note_delivered t c ~node ~src ~frames:!frames
  end
  else begin
    if Hashtbl.mem c.out_of_order seq then Obs.inc t.spurious_c
    else Hashtbl.replace c.out_of_order seq (payload_bytes, payload);
    (* A gap means a frame was lost: ack immediately so go-back-N recovery
       is not further delayed. *)
    flush_ack t c ~node ~src
  end

let on_datagram t node ~src ~size:_ frame =
  match frame with
  | Data { seq; payload_bytes; payload } ->
    handle_data t ~node ~src ~seq ~payload_bytes payload
  | Ack { cumulative } ->
    (* We (node) are the sender of the node->src connection. *)
    handle_ack t ~src:node ~dst:src ~cumulative

let create ?(ack_every = 1) ?(ack_delay = 0.0) ?(legacy_rto = false)
    ?(rto_margin = 2.0) engine datagram ~window ~rto =
  if window <= 0 then invalid_arg "Sliding_window.create: window";
  if rto <= 0.0 then invalid_arg "Sliding_window.create: rto";
  if ack_every <= 0 then invalid_arg "Sliding_window.create: ack_every";
  if ack_every > 1 && ack_delay <= 0.0 then
    invalid_arg "Sliding_window.create: ack_every > 1 needs ack_delay > 0";
  if ack_delay >= rto then
    invalid_arg "Sliding_window.create: ack_delay must stay below rto";
  if rto_margin < 0.0 then invalid_arg "Sliding_window.create: rto_margin";
  let n = Datagram.nodes datagram in
  let obs = Datagram.obs datagram in
  let g = Obs.global_node in
  let t =
    {
      engine;
      datagram;
      window;
      rto;
      legacy_rto;
      margin = rto_margin;
      bandwidth = Datagram.bandwidth datagram;
      latency = Datagram.latency datagram;
      ack_every;
      ack_delay;
      connections =
        Array.init n (fun _ -> Array.init n (fun _ -> make_connection ()));
      handlers = Array.make n None;
      sent_c = Obs.counter obs ~node:g ~layer:Obs.Net "sw.sent";
      delivered_c = Obs.counter obs ~node:g ~layer:Obs.Net "sw.delivered";
      retransmitted_c = Obs.counter obs ~node:g ~layer:Obs.Net "sw.retransmits";
      rto_timeouts_c =
        Obs.counter obs ~node:g ~layer:Obs.Net "sw.rto_timeouts";
      rto_deferrals_c =
        Obs.counter obs ~node:g ~layer:Obs.Net "sw.rto_deferrals";
      rto_samples_c = Obs.counter obs ~node:g ~layer:Obs.Net "sw.rto_samples";
      fast_retransmits_c =
        Obs.counter obs ~node:g ~layer:Obs.Net "sw.fast_retransmits";
      spurious_c =
        Obs.counter obs ~node:g ~layer:Obs.Net "sw.spurious_retransmits";
      acks_c = Obs.counter obs ~node:g ~layer:Obs.Net "sw.acks";
      acks_coalesced_c =
        Obs.counter obs ~node:g ~layer:Obs.Net "sw.acks_coalesced";
      rto_armed_h = Obs.histogram obs ~node:g ~layer:Obs.Net "sw.rto_armed";
      cost = Cost.create obs;
    }
  in
  for node = 0 to n - 1 do
    Datagram.set_handler datagram ~node (fun ~src ~size frame ->
        on_datagram t node ~src ~size frame)
  done;
  t

let set_handler t ~node handler = t.handlers.(node) <- Some handler

let obs t = Datagram.obs t.datagram
