(** Unreliable datagram service (the UDP/IP stand-in).

    Adds protocol headers to each frame and, optionally, seeded random frame
    loss so the reliability layer above can be exercised.  Delivery order on
    a loss-free segment follows the medium's FIFO wire, i.e. frames between
    one (src, dst) pair never reorder; loss is the only failure mode, as on
    a single Ethernet segment.

    Accounting ([datagram.sent], [datagram.dropped],
    [datagram.payload_bytes]) registers in the underlying medium's
    {!Carlos_obs.Obs} registry under the [Net] layer. *)

type 'a t

(** Ethernet + IP + UDP header bytes added to every frame. *)
val header_bytes : int

(** [create medium ~loss ~rng] : [loss] is the independent per-frame drop
    probability (0.0 for a healthy segment).  [rng] is required when
    [loss > 0]. *)
val create :
  'a Medium.t -> ?loss:float -> ?rng:Carlos_sim.Rng.t -> unit -> 'a t

(** The registry this service reports into (the medium's). *)
val obs : 'a t -> Carlos_obs.Obs.t

val nodes : 'a t -> int

(** Propagation delay of the underlying medium. *)
val latency : 'a t -> float

(** Bandwidth of the underlying medium, in bytes per second. *)
val bandwidth : 'a t -> float

(** Carrier-sense signal of the underlying medium: bytes accepted for
    transmission whose serialization has not completed yet (see
    {!Medium.backlog}).  Dropped datagrams never reach the wire and so
    never contribute. *)
val backlog : 'a t -> int

(** [inject_drops t idxs] forces the datagrams at the given indices —
    counted from the next {!send}, 0 being that next send — to be dropped,
    regardless of the random loss setting.  Forced drops are accounted like
    random ones ([datagram.dropped], dropped bytes) but consume no rng
    draw.  Test hook for deterministic single-frame-loss scenarios. *)
val inject_drops : 'a t -> int list -> unit

val set_handler :
  'a t -> node:int -> (src:int -> size:int -> 'a -> unit) -> unit

(** [send t ~src ~dst ~payload_bytes v] transmits one datagram.  The wire
    frame is [payload_bytes + header_bytes] long; the handler sees
    [size = payload_bytes]. *)
val send : 'a t -> src:int -> dst:int -> payload_bytes:int -> 'a -> unit

(** {1 Statistics}

    Cumulative since creation — snapshot/diff the registry to measure a
    phase. *)

val datagrams_sent : 'a t -> int

val datagrams_dropped : 'a t -> int

(** Total size (payload + header) of frames lost to simulated loss; the
    correction term of the cost-conservation equation (see
    {!Carlos_obs.Cost}). *)
val dropped_bytes : 'a t -> int

val payload_bytes_sent : 'a t -> int
