type state = Invalid | Read_only | Read_write

type t = {
  data : Bytes.t;
  mutable state : state;
  mutable twin : Bytes.t option;
}

let create ~size =
  if size <= 0 then invalid_arg "Page.create: size";
  { data = Bytes.make size '\000'; state = Read_only; twin = None }

let state t = t.state

let data t = t.data

let clean_snapshot t =
  match (t.state, t.twin) with
  | Read_write, Some twin -> Bytes.copy twin
  | Read_write, None -> assert false
  | (Read_only | Invalid), _ -> Bytes.copy t.data

let make_twin t =
  match t.state with
  | Read_only ->
    t.twin <- Some (Bytes.copy t.data);
    t.state <- Read_write
  | Invalid -> invalid_arg "Page.make_twin: page is invalid"
  | Read_write -> invalid_arg "Page.make_twin: twin already exists"

let encode_diff t ~page_index =
  match (t.state, t.twin) with
  | Read_write, Some twin ->
    let diff = Diff.create ~page:page_index ~twin ~current:t.data in
    t.twin <- None;
    t.state <- Read_only;
    diff
  | Read_write, None -> assert false
  | (Invalid | Read_only), _ ->
    invalid_arg "Page.encode_diff: page not in write mode"

let invalidate t =
  match t.state with
  | Read_write -> invalid_arg "Page.invalidate: encode the diff first"
  | Invalid | Read_only -> t.state <- Invalid

let apply_diff t diff = Diff.apply diff t.data

let apply_diff_to_twin t diff =
  Diff.apply diff t.data;
  match (t.state, t.twin) with
  | Read_write, Some twin -> Diff.apply diff twin
  | _ -> ()

let patch t ~offset src =
  let len = Bytes.length src in
  if offset < 0 || offset + len > Bytes.length t.data then
    invalid_arg "Page.patch: out of range";
  Bytes.blit src 0 t.data offset len;
  match (t.state, t.twin) with
  | Read_write, Some twin -> Bytes.blit src 0 twin offset len
  | _ -> ()

let install t bytes =
  if Bytes.length bytes <> Bytes.length t.data then
    invalid_arg "Page.install: size mismatch";
  Bytes.blit bytes 0 t.data 0 (Bytes.length bytes);
  t.twin <- None;
  t.state <- Read_only

let validate t =
  match t.state with
  | Invalid -> t.state <- Read_only
  | Read_only | Read_write -> invalid_arg "Page.validate: page not invalid"
