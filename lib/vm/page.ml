type state = Invalid | Read_only | Read_write

type t = {
  data : Bytes.t;
  mutable state : state;
  mutable twin : Bytes.t option;
}

let create ~size =
  if size <= 0 then invalid_arg "Page.create: size";
  { data = Bytes.make size '\000'; state = Read_only; twin = None }

(* Twin buffers are page-sized, i.e. larger than the 256-word
   young-allocation limit, so every [Bytes.copy] went straight to the
   major heap; with thousands of twins per run the allocation and
   marking cost showed up at the top of host-time profiles.  Dropped
   twins are recycled through a domain-local free list instead.  A twin
   never escapes this module ([Diff.create] copies runs out of it), so
   reuse is safe.  The list is capped so a pathological page-size mix
   cannot pin unbounded memory. *)
type twin_pool = { mutable free : Bytes.t list; mutable n : int }

let max_pooled_twins = 128

let twin_pools : (int, twin_pool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let twin_alloc size =
  match Hashtbl.find_opt (Domain.DLS.get twin_pools) size with
  | Some ({ free = b :: rest; _ } as p) ->
    p.free <- rest;
    p.n <- p.n - 1;
    b
  | Some { free = []; _ } | None -> Bytes.create size

let twin_release b =
  let pools = Domain.DLS.get twin_pools in
  let size = Bytes.length b in
  let p =
    match Hashtbl.find_opt pools size with
    | Some p -> p
    | None ->
      let p = { free = []; n = 0 } in
      Hashtbl.add pools size p;
      p
  in
  if p.n < max_pooled_twins then begin
    p.free <- b :: p.free;
    p.n <- p.n + 1
  end

let state t = t.state

let data t = t.data

let clean_snapshot t =
  match (t.state, t.twin) with
  | Read_write, Some twin -> Bytes.copy twin
  | Read_write, None -> assert false
  | (Read_only | Invalid), _ -> Bytes.copy t.data

let make_twin t =
  match t.state with
  | Read_only ->
    let len = Bytes.length t.data in
    let twin = twin_alloc len in
    Bytes.blit t.data 0 twin 0 len;
    t.twin <- Some twin;
    t.state <- Read_write
  | Invalid -> invalid_arg "Page.make_twin: page is invalid"
  | Read_write -> invalid_arg "Page.make_twin: twin already exists"

let encode_diff t ~page_index =
  match (t.state, t.twin) with
  | Read_write, Some twin ->
    let diff = Diff.create ~page:page_index ~twin ~current:t.data in
    t.twin <- None;
    t.state <- Read_only;
    twin_release twin;
    diff
  | Read_write, None -> assert false
  | (Invalid | Read_only), _ ->
    invalid_arg "Page.encode_diff: page not in write mode"

let invalidate t =
  match t.state with
  | Read_write -> invalid_arg "Page.invalidate: encode the diff first"
  | Invalid | Read_only -> t.state <- Invalid

let apply_diff t diff = Diff.apply diff t.data

let apply_diff_to_twin t diff =
  Diff.apply diff t.data;
  match (t.state, t.twin) with
  | Read_write, Some twin -> Diff.apply diff twin
  | _ -> ()

let patch t ~offset src =
  let len = Bytes.length src in
  if offset < 0 || offset + len > Bytes.length t.data then
    invalid_arg "Page.patch: out of range";
  Bytes.blit src 0 t.data offset len;
  match (t.state, t.twin) with
  | Read_write, Some twin -> Bytes.blit src 0 twin offset len
  | _ -> ()

let install t bytes =
  if Bytes.length bytes <> Bytes.length t.data then
    invalid_arg "Page.install: size mismatch";
  Bytes.blit bytes 0 t.data 0 (Bytes.length bytes);
  (match t.twin with
  | Some twin ->
    t.twin <- None;
    twin_release twin
  | None -> ());
  t.state <- Read_only

let validate t =
  match t.state with
  | Invalid -> t.state <- Read_only
  | Read_only | Read_write -> invalid_arg "Page.validate: page not invalid"
