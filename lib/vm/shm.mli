(** One node's view of the CarlOS address space, with typed accessors.

    Every access to the coherent region consults the node's page table and
    takes simulated protection faults, which is where the consistency
    protocol hooks in.  Multi-byte accessors require natural alignment so
    that no access straddles a page boundary.

    The non-coherent shared region is backed by a single byte array shared
    by every node view: address mappings are consistent but no coherency is
    maintained — exactly the paper's §4.1 middle region. *)

type t

(** [create ?obs ?node ~region ~noncoherent ()] builds a node view.
    [noncoherent] is the backing store shared between all views of one
    cluster; [obs]/[node] locate the page table's fault counters in the
    observability registry. *)
val create :
  ?obs:Carlos_obs.Obs.t ->
  ?node:int ->
  region:Region.t ->
  noncoherent:Bytes.t ->
  unit ->
  t

val region : t -> Region.t

val page_table : t -> Page_table.t

(** {1 Byte accessors} *)

val read_u8 : t -> int -> int

val write_u8 : t -> int -> int -> unit

(** {1 32-bit integers} (4-byte aligned; values must fit in int32) *)

val read_i32 : t -> int -> int

val write_i32 : t -> int -> int -> unit

(** {1 64-bit integers} (8-byte aligned) *)

val read_i64 : t -> int -> int

val write_i64 : t -> int -> int -> unit

(** {1 Floats} (8-byte aligned IEEE doubles) *)

val read_f64 : t -> int -> float

val write_f64 : t -> int -> float -> unit

(** {1 Bulk access} (must not cross a page boundary in the coherent
    region) *)

val read_bytes : t -> int -> len:int -> Bytes.t

val write_bytes : t -> int -> Bytes.t -> unit
