(** Run-length encoded page diffs (paper §4.2).

    A diff records the byte ranges of a page that changed relative to its
    twin, as a list of [(offset, bytes)] runs.  Applying a diff overwrites
    exactly those ranges, so applying the same diff twice is idempotent and
    diffs from concurrent writers to disjoint ranges commute — the property
    the multiple-writer protocol relies on. *)

type run = { offset : int; data : Bytes.t }

type t

(** [create ~page ~twin ~current] encodes the differences of [current]
    relative to [twin].  Both must have equal length. *)
val create : page:int -> twin:Bytes.t -> current:Bytes.t -> t

(** Which coherent page this diff describes. *)
val page : t -> int

val runs : t -> run list

val is_empty : t -> bool

(** Overwrite the changed ranges of [target] with the diff's data. *)
val apply : t -> Bytes.t -> unit

(** [merge ds] collapses several diffs of the same page into one whose
    application is equivalent to applying [ds] in list order (later runs
    win on overlap; adjacent runs coalesce).  Raises [Invalid_argument] on
    an empty list or mixed pages. *)
val merge : t list -> t

(** Wire size in bytes: a small header plus, per run, a 4-byte descriptor
    and the run data. *)
val size_bytes : t -> int

(** Total number of changed bytes carried. *)
val changed_bytes : t -> int

val pp : Format.formatter -> t -> unit
