(** A single coherent page frame on one node.

    State machine (mirrors the mprotect-based states of TreadMarks):

    - [Invalid]: the local copy is stale; a read or write access must first
      bring it up to date (apply missing diffs or fetch the page).
    - [Read_only]: the local copy is current and clean ("all clean shared
      pages are marked read-only"); a write access traps.
    - [Read_write]: the page has been written locally since the last diff;
      a {e twin} snapshot exists for later diffing. *)

type state = Invalid | Read_only | Read_write

type t

(** Fresh zero-filled page in [Read_only] state. *)
val create : size:int -> t

val state : t -> state

val data : t -> Bytes.t

(** The page content as of the last interval boundary: the twin when the
    page is write-enabled (excluding unreleased modifications), the data
    otherwise.  This is the only sound base to hand to another node —
    run-length diffs assume the receiver's copy matches the writer's twin
    on unchanged bytes. *)
val clean_snapshot : t -> Bytes.t

(** Snapshot the current contents as the twin and move to [Read_write].
    Only legal from [Read_only]. *)
val make_twin : t -> unit

(** Encode modifications relative to the twin, drop the twin and return to
    [Read_only] (paper §4.2: "the twin is removed, and the page is marked
    read-only").  Only legal from [Read_write]. *)
val encode_diff : t -> page_index:int -> Diff.t

(** Mark the local copy stale.  Legal from any state; from [Read_write]
    the caller must have encoded the diff first (enforced). *)
val invalidate : t -> unit

(** Apply a diff from another writer to the local copy. *)
val apply_diff : t -> Diff.t -> unit

(** Apply a diff to both the live data and, when the page is
    [Read_write], the twin.  Update-style protocols that overwrite
    replicas in place (rather than invalidating) must use this form for
    foreign updates: patching only the data of a write-enabled page would
    make the local writer's next {!encode_diff} republish the foreign
    bytes as its own. *)
val apply_diff_to_twin : t -> Diff.t -> unit

(** Overwrite [offset..offset+len-1] with [src] in the live data and,
    when the page is [Read_write], in the twin — a single-run in-place
    update (the totally-ordered store's CAS push uses this). *)
val patch : t -> offset:int -> Bytes.t -> unit

(** Overwrite the whole page (a full-page fetch) and mark [Read_only]. *)
val install : t -> Bytes.t -> unit

(** Declare an [Invalid] page current again after its diffs were applied. *)
val validate : t -> unit
