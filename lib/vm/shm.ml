type t = {
  region : Region.t;
  page_table : Page_table.t;
  private_mem : Bytes.t;
  noncoherent : Bytes.t;
  (* Fast-path segment geometry, mirrored out of [region] so the typed
     accessors resolve an address with integer compares and shifts only.
     Every simulated memory access goes through here — the apps issue
     millions per run — so the hot path must not allocate: no
     [Region.location] variant, no [(bytes, offset)] tuple. *)
  pr_base : int;
  pr_limit : int;
  nc_base : int;
  nc_limit : int;
  co_base : int;
  co_limit : int;
  page_shift : int;
  page_mask : int;
}

let create ?obs ?node ~region ~noncoherent () =
  if Bytes.length noncoherent <> Region.noncoherent_bytes region then
    invalid_arg "Shm.create: noncoherent backing store has the wrong size";
  let page_size = Region.page_size region in
  (* page_size is a positive power of two (checked by Region.create). *)
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
  {
    region;
    page_table =
      Page_table.create ?obs ?node
        ~pages:(Region.coherent_pages region)
        ~page_size ();
    private_mem = Bytes.make (Region.private_bytes region) '\000';
    noncoherent;
    pr_base = Region.private_base region;
    pr_limit = Region.private_base region + Region.private_bytes region;
    nc_base = Region.noncoherent_base region;
    nc_limit = Region.noncoherent_base region + Region.noncoherent_bytes region;
    co_base = Region.coherent_base region;
    co_limit =
      Region.coherent_base region + (Region.coherent_pages region * page_size);
    page_shift = log2 page_size;
    page_mask = page_size - 1;
  }

let region t = t.region

let page_table t = t.page_table

(* Cold paths, kept out of line so the accessors stay small. *)
let[@inline never] segv addr =
  invalid_arg (Printf.sprintf "Shm: segmentation violation at 0x%x" addr)

let[@inline never] unaligned addr width =
  invalid_arg (Printf.sprintf "Shm: unaligned %d-byte access at 0x%x" width addr)

(* Resolve an access: returns the backing bytes and offset, taking
   coherent-region faults as needed.  Allocates a tuple — used by the
   bulk accessors only; the typed accessors below inline the segment
   walk instead. *)
let resolve_read t addr =
  match Region.locate t.region addr with
  | Region.Private off -> (t.private_mem, off)
  | Region.Noncoherent off -> (t.noncoherent, off)
  | Region.Coherent { page; offset } ->
    Page_table.ensure_readable t.page_table page;
    (Page.data (Page_table.page t.page_table page), offset)

let resolve_write t addr =
  match Region.locate t.region addr with
  | Region.Private off -> (t.private_mem, off)
  | Region.Noncoherent off -> (t.noncoherent, off)
  | Region.Coherent { page; offset } ->
    Page_table.ensure_writable t.page_table page;
    (Page.data (Page_table.page t.page_table page), offset)

(* The typed accessors share one shape: classify the address with three
   range checks (coherent first — it is by far the hottest segment),
   then read or write through the backing bytes directly.  The safe
   [Bytes.get_*]/[set_*] accessors keep the end-of-segment bounds check,
   so a multi-byte access overhanging a segment still raises exactly as
   the old [Bytes] path did.  Alignment guarantees a coherent access
   never crosses a page boundary. *)

let read_u8 t addr =
  if addr >= t.co_base then begin
    if addr >= t.co_limit then segv addr;
    let off = addr - t.co_base in
    let data = Page_table.read_data t.page_table (off lsr t.page_shift) in
    Char.code (Bytes.get data (off land t.page_mask))
  end
  else if addr >= t.nc_base && addr < t.nc_limit then
    Char.code (Bytes.get t.noncoherent (addr - t.nc_base))
  else if addr >= t.pr_base && addr < t.pr_limit then
    Char.code (Bytes.get t.private_mem (addr - t.pr_base))
  else segv addr

let write_u8 t addr v =
  if v < 0 || v > 0xff then invalid_arg "Shm.write_u8: out of range";
  if addr >= t.co_base then begin
    if addr >= t.co_limit then segv addr;
    let off = addr - t.co_base in
    let data = Page_table.write_data t.page_table (off lsr t.page_shift) in
    Bytes.set data (off land t.page_mask) (Char.unsafe_chr v)
  end
  else if addr >= t.nc_base && addr < t.nc_limit then
    Bytes.set t.noncoherent (addr - t.nc_base) (Char.unsafe_chr v)
  else if addr >= t.pr_base && addr < t.pr_limit then
    Bytes.set t.private_mem (addr - t.pr_base) (Char.unsafe_chr v)
  else segv addr

let read_i32 t addr =
  if addr land 3 <> 0 then unaligned addr 4;
  if addr >= t.co_base then begin
    if addr >= t.co_limit then segv addr;
    let off = addr - t.co_base in
    let data = Page_table.read_data t.page_table (off lsr t.page_shift) in
    Int32.to_int (Bytes.get_int32_le data (off land t.page_mask))
  end
  else if addr >= t.nc_base && addr < t.nc_limit then
    Int32.to_int (Bytes.get_int32_le t.noncoherent (addr - t.nc_base))
  else if addr >= t.pr_base && addr < t.pr_limit then
    Int32.to_int (Bytes.get_int32_le t.private_mem (addr - t.pr_base))
  else segv addr

let write_i32 t addr v =
  if addr land 3 <> 0 then unaligned addr 4;
  if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
    invalid_arg "Shm.write_i32: out of range";
  let v = Int32.of_int v in
  if addr >= t.co_base then begin
    if addr >= t.co_limit then segv addr;
    let off = addr - t.co_base in
    let data = Page_table.write_data t.page_table (off lsr t.page_shift) in
    Bytes.set_int32_le data (off land t.page_mask) v
  end
  else if addr >= t.nc_base && addr < t.nc_limit then
    Bytes.set_int32_le t.noncoherent (addr - t.nc_base) v
  else if addr >= t.pr_base && addr < t.pr_limit then
    Bytes.set_int32_le t.private_mem (addr - t.pr_base) v
  else segv addr

let read_i64 t addr =
  if addr land 7 <> 0 then unaligned addr 8;
  if addr >= t.co_base then begin
    if addr >= t.co_limit then segv addr;
    let off = addr - t.co_base in
    let data = Page_table.read_data t.page_table (off lsr t.page_shift) in
    Int64.to_int (Bytes.get_int64_le data (off land t.page_mask))
  end
  else if addr >= t.nc_base && addr < t.nc_limit then
    Int64.to_int (Bytes.get_int64_le t.noncoherent (addr - t.nc_base))
  else if addr >= t.pr_base && addr < t.pr_limit then
    Int64.to_int (Bytes.get_int64_le t.private_mem (addr - t.pr_base))
  else segv addr

let write_i64 t addr v =
  if addr land 7 <> 0 then unaligned addr 8;
  let v = Int64.of_int v in
  if addr >= t.co_base then begin
    if addr >= t.co_limit then segv addr;
    let off = addr - t.co_base in
    let data = Page_table.write_data t.page_table (off lsr t.page_shift) in
    Bytes.set_int64_le data (off land t.page_mask) v
  end
  else if addr >= t.nc_base && addr < t.nc_limit then
    Bytes.set_int64_le t.noncoherent (addr - t.nc_base) v
  else if addr >= t.pr_base && addr < t.pr_limit then
    Bytes.set_int64_le t.private_mem (addr - t.pr_base) v
  else segv addr

let read_f64 t addr =
  if addr land 7 <> 0 then unaligned addr 8;
  if addr >= t.co_base then begin
    if addr >= t.co_limit then segv addr;
    let off = addr - t.co_base in
    let data = Page_table.read_data t.page_table (off lsr t.page_shift) in
    Int64.float_of_bits (Bytes.get_int64_le data (off land t.page_mask))
  end
  else if addr >= t.nc_base && addr < t.nc_limit then
    Int64.float_of_bits (Bytes.get_int64_le t.noncoherent (addr - t.nc_base))
  else if addr >= t.pr_base && addr < t.pr_limit then
    Int64.float_of_bits (Bytes.get_int64_le t.private_mem (addr - t.pr_base))
  else segv addr

let write_f64 t addr v =
  if addr land 7 <> 0 then unaligned addr 8;
  let v = Int64.bits_of_float v in
  if addr >= t.co_base then begin
    if addr >= t.co_limit then segv addr;
    let off = addr - t.co_base in
    let data = Page_table.write_data t.page_table (off lsr t.page_shift) in
    Bytes.set_int64_le data (off land t.page_mask) v
  end
  else if addr >= t.nc_base && addr < t.nc_limit then
    Bytes.set_int64_le t.noncoherent (addr - t.nc_base) v
  else if addr >= t.pr_base && addr < t.pr_limit then
    Bytes.set_int64_le t.private_mem (addr - t.pr_base) v
  else segv addr

let check_span t addr len =
  match Region.locate t.region addr with
  | Region.Coherent { offset; _ } ->
    if offset + len > Region.page_size t.region then
      invalid_arg "Shm: bulk access crosses a page boundary"
  | Region.Private _ | Region.Noncoherent _ -> ()

let read_bytes t addr ~len =
  if len < 0 then invalid_arg "Shm.read_bytes: negative length";
  check_span t addr len;
  let bytes, off = resolve_read t addr in
  Bytes.sub bytes off len

let write_bytes t addr src =
  check_span t addr (Bytes.length src);
  let bytes, off = resolve_write t addr in
  Bytes.blit src 0 bytes off (Bytes.length src)
