type t = {
  region : Region.t;
  page_table : Page_table.t;
  private_mem : Bytes.t;
  noncoherent : Bytes.t;
}

let create ?obs ?node ~region ~noncoherent () =
  if Bytes.length noncoherent <> Region.noncoherent_bytes region then
    invalid_arg "Shm.create: noncoherent backing store has the wrong size";
  {
    region;
    page_table =
      Page_table.create ?obs ?node
        ~pages:(Region.coherent_pages region)
        ~page_size:(Region.page_size region)
        ();
    private_mem = Bytes.make (Region.private_bytes region) '\000';
    noncoherent;
  }

let region t = t.region

let page_table t = t.page_table

let check_aligned addr width =
  if addr mod width <> 0 then
    invalid_arg
      (Printf.sprintf "Shm: unaligned %d-byte access at 0x%x" width addr)

(* Resolve an access: returns the backing bytes and offset, taking
   coherent-region faults as needed. *)
let resolve_read t addr =
  match Region.locate t.region addr with
  | Region.Private off -> (t.private_mem, off)
  | Region.Noncoherent off -> (t.noncoherent, off)
  | Region.Coherent { page; offset } ->
    Page_table.ensure_readable t.page_table page;
    (Page.data (Page_table.page t.page_table page), offset)

let resolve_write t addr =
  match Region.locate t.region addr with
  | Region.Private off -> (t.private_mem, off)
  | Region.Noncoherent off -> (t.noncoherent, off)
  | Region.Coherent { page; offset } ->
    Page_table.ensure_writable t.page_table page;
    (Page.data (Page_table.page t.page_table page), offset)

let read_u8 t addr =
  let bytes, off = resolve_read t addr in
  Char.code (Bytes.get bytes off)

let write_u8 t addr v =
  if v < 0 || v > 0xff then invalid_arg "Shm.write_u8: out of range";
  let bytes, off = resolve_write t addr in
  Bytes.set bytes off (Char.chr v)

let read_i32 t addr =
  check_aligned addr 4;
  let bytes, off = resolve_read t addr in
  Int32.to_int (Bytes.get_int32_le bytes off)

let write_i32 t addr v =
  check_aligned addr 4;
  if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
    invalid_arg "Shm.write_i32: out of range";
  let bytes, off = resolve_write t addr in
  Bytes.set_int32_le bytes off (Int32.of_int v)

let read_i64 t addr =
  check_aligned addr 8;
  let bytes, off = resolve_read t addr in
  Int64.to_int (Bytes.get_int64_le bytes off)

let write_i64 t addr v =
  check_aligned addr 8;
  let bytes, off = resolve_write t addr in
  Bytes.set_int64_le bytes off (Int64.of_int v)

let read_f64 t addr =
  check_aligned addr 8;
  let bytes, off = resolve_read t addr in
  Int64.float_of_bits (Bytes.get_int64_le bytes off)

let write_f64 t addr v =
  check_aligned addr 8;
  let bytes, off = resolve_write t addr in
  Bytes.set_int64_le bytes off (Int64.bits_of_float v)

let check_span t addr len =
  match Region.locate t.region addr with
  | Region.Coherent { offset; _ } ->
    if offset + len > Region.page_size t.region then
      invalid_arg "Shm: bulk access crosses a page boundary"
  | Region.Private _ | Region.Noncoherent _ -> ()

let read_bytes t addr ~len =
  if len < 0 then invalid_arg "Shm.read_bytes: negative length";
  check_span t addr len;
  let bytes, off = resolve_read t addr in
  Bytes.sub bytes off len

let write_bytes t addr src =
  check_span t addr (Bytes.length src);
  let bytes, off = resolve_write t addr in
  Bytes.blit src 0 bytes off (Bytes.length src)
