type run = { offset : int; data : Bytes.t }

type t = { page : int; runs : run list }

let header_bytes = 8

let run_descriptor_bytes = 4

let create ~page ~twin ~current =
  let len = Bytes.length twin in
  if Bytes.length current <> len then
    invalid_arg "Diff.create: twin and current differ in length";
  (* Single left-to-right scan collecting maximal differing runs. *)
  let runs = ref [] in
  let i = ref 0 in
  while !i < len do
    if Bytes.unsafe_get twin !i <> Bytes.unsafe_get current !i then begin
      let start = !i in
      while
        !i < len && Bytes.unsafe_get twin !i <> Bytes.unsafe_get current !i
      do
        incr i
      done;
      let data = Bytes.sub current start (!i - start) in
      runs := { offset = start; data } :: !runs
    end
    else incr i
  done;
  { page; runs = List.rev !runs }

let page t = t.page

let runs t = t.runs

let is_empty t = t.runs = []

let apply t target =
  let len = Bytes.length target in
  let apply_run r =
    if r.offset < 0 || r.offset + Bytes.length r.data > len then
      invalid_arg "Diff.apply: run out of bounds";
    Bytes.blit r.data 0 target r.offset (Bytes.length r.data)
  in
  List.iter apply_run t.runs

let merge = function
  | [] -> invalid_arg "Diff.merge: empty"
  | [ d ] -> d
  | first :: _ as ds ->
    List.iter
      (fun d ->
        if d.page <> first.page then invalid_arg "Diff.merge: pages differ")
      ds;
    (* Replay the runs in order into a scratch copy of the touched extent:
       later runs overwrite earlier ones, exactly as sequential [apply]
       would, then re-extract maximal covered runs. *)
    let extent =
      List.fold_left
        (fun acc d ->
          List.fold_left
            (fun a r -> max a (r.offset + Bytes.length r.data))
            acc d.runs)
        0 ds
    in
    let buf = Bytes.create extent in
    let covered = Bytes.make extent '\000' in
    List.iter
      (fun d ->
        List.iter
          (fun r ->
            Bytes.blit r.data 0 buf r.offset (Bytes.length r.data);
            Bytes.fill covered r.offset (Bytes.length r.data) '\001')
          d.runs)
      ds;
    let runs = ref [] in
    let i = ref 0 in
    while !i < extent do
      if Bytes.unsafe_get covered !i = '\001' then begin
        let start = !i in
        while !i < extent && Bytes.unsafe_get covered !i = '\001' do
          incr i
        done;
        runs := { offset = start; data = Bytes.sub buf start (!i - start) }
                :: !runs
      end
      else incr i
    done;
    { page = first.page; runs = List.rev !runs }

let changed_bytes t =
  List.fold_left (fun acc r -> acc + Bytes.length r.data) 0 t.runs

let size_bytes t =
  header_bytes
  + List.fold_left
      (fun acc r -> acc + run_descriptor_bytes + Bytes.length r.data)
      0 t.runs

let pp ppf t =
  Format.fprintf ppf "@[<h>diff(page %d:" t.page;
  List.iter
    (fun r -> Format.fprintf ppf " [%d..%d)" r.offset
        (r.offset + Bytes.length r.data))
    t.runs;
  Format.fprintf ppf ")@]"
