module Obs = Carlos_obs.Obs
module Profile = Carlos_obs.Profile

type t = {
  table : Page.t array;
  page_size : int;
  mutable on_read_fault : int -> unit;
  mutable on_write_fault : int -> unit;
  read_faults_c : Obs.counter;
  write_faults_c : Obs.counter;
}

let no_handler _ = invalid_arg "Page_table: no fault handler installed"

let create ?obs ?node ~pages ~page_size () =
  if pages < 0 then invalid_arg "Page_table.create: pages";
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let node = match node with Some n -> n | None -> Obs.global_node in
  {
    table = Array.init pages (fun _ -> Page.create ~size:page_size);
    page_size;
    on_read_fault = no_handler;
    on_write_fault = no_handler;
    read_faults_c = Obs.counter obs ~node ~layer:Obs.Vm "read_faults";
    write_faults_c = Obs.counter obs ~node ~layer:Obs.Vm "write_faults";
  }

let pages t = Array.length t.table

let page_size t = t.page_size

let page t i =
  if i < 0 || i >= Array.length t.table then
    invalid_arg (Printf.sprintf "Page_table.page: bad page %d" i);
  t.table.(i)

let set_read_fault t f = t.on_read_fault <- f

let set_write_fault t f = t.on_write_fault <- f

(* Fault handlers may block, and while blocked the page can change state
   again (a write notice invalidating it, another thread's fault fixing
   it); retry like real hardware re-executing the trapping instruction.
   The attempt bound turns a broken handler into an error instead of a
   livelock. *)
let max_fault_retries = 1000

let ensure_readable t i =
  let rec attempt n =
    match Page.state (page t i) with
    | Page.Read_only | Page.Read_write -> ()
    | Page.Invalid ->
      if n >= max_fault_retries then
        invalid_arg "Page_table: read fault handler left page invalid";
      Obs.inc t.read_faults_c;
      (* Inclusive span: the handler may suspend, so this wall-clock
         extent also covers other fibers run meanwhile (see Profile). *)
      let p0 = Profile.start () in
      t.on_read_fault i;
      Profile.stop Profile.Vm_fault p0;
      attempt (n + 1)
  in
  attempt 0

let ensure_writable t i =
  let rec attempt n =
    if n >= max_fault_retries then
      invalid_arg "Page_table: write fault handler left page unwritable";
    match Page.state (page t i) with
    | Page.Read_write -> ()
    | Page.Invalid ->
      ensure_readable t i;
      attempt (n + 1)
    | Page.Read_only ->
      Obs.inc t.write_faults_c;
      let p0 = Profile.start () in
      t.on_write_fault i;
      Profile.stop Profile.Vm_fault p0;
      attempt (n + 1)
  in
  attempt 0

(* Fast-path accessors for {!Shm}: when the page is already accessible
   (the overwhelmingly common case) return its backing bytes with one
   state check and no allocation; otherwise fall into the full
   fault-and-retry logic above.  [i] must be a valid page index — Shm
   derives it from an address already validated against the coherent
   segment bounds. *)

let[@inline never] read_data_slow t i =
  ensure_readable t i;
  Page.data (page t i)

let[@inline] read_data t i =
  let p = Array.unsafe_get t.table i in
  match Page.state p with
  | Page.Read_only | Page.Read_write -> Page.data p
  | Page.Invalid -> read_data_slow t i

let[@inline never] write_data_slow t i =
  ensure_writable t i;
  Page.data (page t i)

let[@inline] write_data t i =
  let p = Array.unsafe_get t.table i in
  match Page.state p with
  | Page.Read_write -> Page.data p
  | Page.Invalid | Page.Read_only -> write_data_slow t i

let read_faults t = Obs.value t.read_faults_c

let write_faults t = Obs.value t.write_faults_c
