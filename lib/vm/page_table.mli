(** Per-node page table for the coherent shared region.

    Stands in for the Unix [mprotect]/[SIGSEGV] machinery: every access to
    the coherent region goes through {!Shm}, which consults the page table
    and invokes the installed fault handlers exactly where a hardware trap
    would fire.  The fault handlers (installed by the consistency protocol)
    may block the faulting fiber while they fetch pages or diffs. *)

type t

(** [create ?obs ?node ~pages ~page_size ()] — fault counters register in
    [obs] (a fresh private registry by default) under the [Vm] layer for
    [node] (default {!Carlos_obs.Obs.global_node}). *)
val create :
  ?obs:Carlos_obs.Obs.t -> ?node:int -> pages:int -> page_size:int -> unit -> t

val pages : t -> int

val page_size : t -> int

val page : t -> int -> Page.t

(** Install the handler run when a fiber reads an [Invalid] page.  On
    return the page must be readable. *)
val set_read_fault : t -> (int -> unit) -> unit

(** Install the handler run when a fiber writes a non-[Read_write] page.
    On return the page must be writable. *)
val set_write_fault : t -> (int -> unit) -> unit

(** Ensure the page may be read, faulting if needed. *)
val ensure_readable : t -> int -> unit

(** Ensure the page may be written, faulting if needed (a write to an
    [Invalid] page first takes the read fault, then the write fault, as
    with a real protection trap). *)
val ensure_writable : t -> int -> unit

(** [read_data t i] is the backing bytes of page [i], faulting first if
    the page is invalid.  Fast path for {!Shm}: one state check, no
    allocation when the page is already readable.  [i] must be a valid
    page index (unchecked). *)
val read_data : t -> int -> Bytes.t

(** [write_data t i] is the backing bytes of page [i], faulting first if
    the page is not writable.  Same contract as {!read_data}. *)
val write_data : t -> int -> Bytes.t

(** {1 Statistics}

    Counters [read_faults]/[write_faults] in the registry, cumulative
    since creation — snapshot/diff the registry to measure a phase. *)

val read_faults : t -> int

val write_faults : t -> int
