module Engine = Carlos_sim.Engine
module Rng = Carlos_sim.Rng
module Ivar = Carlos_sim.Resource.Ivar
module Medium = Carlos_net.Medium
module Datagram = Carlos_net.Datagram
module Sliding_window = Carlos_net.Sliding_window
module Region = Carlos_vm.Region
module Shm = Carlos_vm.Shm
module Page = Carlos_vm.Page
module Page_table = Carlos_vm.Page_table
module Alloc = Carlos_vm.Alloc
module Diff = Carlos_vm.Diff
module Vc = Carlos_dsm.Vc
module Interval = Carlos_dsm.Interval
module Cost = Carlos_dsm.Cost
module Lrc = Carlos_dsm.Lrc_backend
module Backend = Carlos_dsm.Backend
module Central = Carlos_dsm.Central_backend
module Seq = Carlos_dsm.Seq_backend
module Obs = Carlos_obs.Obs
module Wire_cost = Carlos_obs.Cost
module Audit = Carlos_audit.Audit

type config = {
  nodes : int;
  page_size : int;
  coherent_pages : int;
  private_bytes : int;
  noncoherent_bytes : int;
  latency : float;
  bandwidth : float;
  window : int;
  rto : float;
  loss : float;
  ack_every : int;
  ack_delay : float;
  legacy_rto : bool;
  rto_margin : float;
  costs : Cost.t;
  backend : Backend.kind;
  strategy : Lrc.strategy;
  seed : int;
  gc_threshold : int option;
  batch_fetch : bool;
  diff_cache : bool;
}

let default_config ~nodes =
  {
    nodes;
    page_size = 4096;
    coherent_pages = 512;
    private_bytes = 1 lsl 20;
    noncoherent_bytes = 1 lsl 20;
    latency = 1e-4;
    bandwidth = 1.25e6;
    window = 8;
    rto = 0.1;
    loss = 0.0;
    ack_every = 4;
    ack_delay = 0.005;
    legacy_rto = false;
    rto_margin = 2.0;
    costs = Cost.default;
    backend = Backend.Lrc;
    strategy = Lrc.Invalidate;
    seed = 42;
    gc_threshold = Some (512 * 1024);
    batch_fetch = true;
    diff_cache = true;
  }

(* The seed protocol's behaviour: ack-per-frame, fixed-RTO retransmission,
   serial per-(page, creator) demand fetching, no merged-diff cache.  Used
   as the "before" arm of benchmark comparisons and by [--no-batch]. *)
let legacy_config cfg =
  {
    cfg with
    ack_every = 1;
    ack_delay = 0.0;
    legacy_rto = true;
    batch_fetch = false;
    diff_cache = false;
  }

type node_report = {
  node : int;
  user : float;
  unix : float;
  carlos : float;
  idle : float;
  msgs_sent : int;
  bytes_sent : int;
}

type report = {
  wall : float;
  per_node : node_report array;
  messages : int;
  message_bytes : int;
  avg_message_bytes : float;
  net_utilization : float;
  gc_runs : int;
  diffs_created : int;
  diff_requests : int;
}

type gc_state = {
  mutable in_progress : bool;
  runs_c : Obs.counter;
  mutable requested : bool;
}

(* Per-node sampler for Backend.metadata_pressure: a (virtual-time, bytes)
   series fed at safe points, throttled so chatty apps don't bloat the
   metrics export.  Safe points fire at deterministic virtual times, so
   the series is deterministic. *)
type pressure_sampler = { series : Obs.series; mutable last : float }

type t = {
  cfg : config;
  engine : Engine.t;
  medium : Node.wire Sliding_window.frame Medium.t;
  sw : Node.wire Sliding_window.t;
  region : Region.t;
  nodes : Node.t array;
  coherent_alloc : Alloc.t;
  noncoherent_alloc : Alloc.t;
  rng : Rng.t;
  gc : gc_state;
  pressure : pressure_sampler array;
  obs : Obs.t;
  audit : Audit.t option;
}

exception Stalled of string

let config t = t.cfg

let engine t = t.engine

let node t i = t.nodes.(i)

let node_count t = t.cfg.nodes

let region t = t.region

let rng t = t.rng

let gc_runs t = Obs.value t.gc.runs_c

let obs t = t.obs

let auditor t = t.audit

(* The legacy trace view is the registry itself ([Trace.t = Obs.t]). *)
let trace t = t.obs

let set_tracing t enabled = Obs.set_tracing t.obs enabled

(* ------------------------------------------------------------------ *)
(* Shared-memory setup *)

let alloc t ?align n = Alloc.alloc t.coherent_alloc ?align n

let alloc_noncoherent t ?align n = Alloc.alloc t.noncoherent_alloc ?align n

(* Write directly into every node's page frame, bypassing fault handling:
   models identical input data loaded locally on every node. *)
let preload_bytes t addr src =
  Array.iter
    (fun node ->
      let shm = Node.shm node in
      match Region.locate t.region addr with
      | Region.Coherent { page; offset } ->
        let frame = Page.data (Page_table.page (Shm.page_table shm) page) in
        Bytes.blit src 0 frame offset (Bytes.length src)
      | Region.Private _ | Region.Noncoherent _ ->
        invalid_arg "System.preload: address not in the coherent region")
    t.nodes

let preload_i64 t addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  preload_bytes t addr b

let preload_f64 t addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  preload_bytes t addr b

(* ------------------------------------------------------------------ *)
(* LRC transport over the message layer *)

let diff_request_bytes req =
  8
  + List.fold_left
      (fun acc (_, ids) -> acc + 4 + (8 * List.length ids))
      0 req

let diff_reply_bytes reply =
  (* A physical diff aliased under several reply entries crosses the wire
     once; each later entry carries only a small back-reference. *)
  let billed = ref [] in
  let diff_bytes d =
    if List.memq d !billed then 4
    else begin
      billed := d :: !billed;
      Diff.size_bytes d
    end
  in
  8
  + List.fold_left
      (fun acc (_, _, ds) ->
        acc + 8 + List.fold_left (fun a d -> a + diff_bytes d) 0 ds)
      0 reply

let interval_reply_bytes intervals =
  8 + List.fold_left (fun acc i -> acc + Interval.size_bytes i) 0 intervals

let page_reply_bytes cfg = function
  | None -> 8
  | Some (_ : Lrc.page_reply) ->
    8 + cfg.page_size + (Vc.entry_bytes * cfg.nodes)

let wire_transport t node =
  let me = Node.id node in
  {
    Lrc.fetch_diffs =
      (fun ~dst req ->
        Node.rpc node ~dst ~cost:Wire_cost.Diff_payload
          ~request_bytes:(diff_request_bytes req)
          ~service:(fun remote -> Lrc.serve_diffs (Node.lrc remote) req)
          ~reply_bytes:diff_reply_bytes);
    fetch_intervals =
      (fun ~dst ~have ->
        (* The request body is a vector clock; the reply is interval
           descriptions (ids + VCs + write notices — billed as the
           write-notice component, its dominant term). *)
        Node.rpc node ~dst ~cost:Wire_cost.Vc_entries
          ~reply_cost:Wire_cost.Write_notices
          ~request_bytes:(8 + (Vc.entry_bytes * t.cfg.nodes))
          ~service:(fun remote ->
            let lrc = Node.lrc remote in
            Lrc.note_peer_vc lrc ~peer:me have;
            Lrc.serve_intervals lrc ~have)
          ~reply_bytes:interval_reply_bytes);
    fetch_page =
      (fun ~dst ~page ->
        Node.rpc node ~dst ~cost:Wire_cost.Diff_payload ~request_bytes:12
          ~service:(fun remote -> Lrc.serve_page (Node.lrc remote) ~page)
          ~reply_bytes:(page_reply_bytes t.cfg));
  }

(* ------------------------------------------------------------------ *)
(* Central- and sequencer-backend transports over the message layer *)

let central_of node =
  match Node.backend node with
  | Backend.Central_b b -> b
  | Backend.Lrc_b _ | Backend.Seq_b _ ->
    invalid_arg "System: node does not run the central backend"

let seq_of node =
  match Node.backend node with
  | Backend.Seq_b b -> b
  | Backend.Lrc_b _ | Backend.Central_b _ ->
    invalid_arg "System: node does not run the sequencer backend"

let diff_list_bytes diffs =
  8 + List.fold_left (fun acc d -> acc + Diff.size_bytes d) 0 diffs

let central_transport cfg node =
  let me = Node.id node in
  let home = Central.home (central_of node) in
  {
    Central.fetch_page =
      (fun ~page ->
        Node.rpc node ~dst:home ~cost:Wire_cost.Diff_payload ~request_bytes:12
          ~service:(fun remote -> Central.serve_page (central_of remote) ~page)
          ~reply_bytes:(fun (_, _) -> 12 + cfg.page_size));
    flush =
      (fun diffs ->
        Node.rpc node ~dst:home ~cost:Wire_cost.Diff_payload
          ~request_bytes:(diff_list_bytes diffs)
          ~service:(fun remote ->
            Central.serve_flush (central_of remote) ~origin:me diffs)
          ~reply_bytes:(fun () -> 8));
  }

let seq_transport node =
  let me = Node.id node in
  let sequencer = Seq.sequencer (seq_of node) in
  {
    Seq.sequence =
      (fun diffs ->
        Node.rpc node ~dst:sequencer ~cost:Wire_cost.Diff_payload
          ~request_bytes:(diff_list_bytes diffs)
          ~service:(fun remote ->
            Seq.serve_sequence (seq_of remote) ~origin:me diffs)
          ~reply_bytes:(fun (_ : int) -> 12));
    cas =
      (fun ~page ~offset ~expected ~desired ->
        (* CAS is a synchronization primitive: same axis as locks. *)
        Node.rpc node ~dst:sequencer ~cost:Wire_cost.Lock_proto
          ~request_bytes:32
          ~service:(fun remote ->
            Seq.serve_cas (seq_of remote) ~origin:me ~page ~offset ~expected
              ~desired)
          ~reply_bytes:(fun (_, _) -> 16));
  }

(* The sequencer's stamped updates ride one-way system-lane posts; the
   per-pair FIFO of the sliding window turns send order (= stamp order,
   under the sequencer mutex) into apply order at each replica. *)
let seq_push sequencer_node ~dst entries =
  Node.post sequencer_node ~dst ~cost:Wire_cost.Diff_payload
    ~payload_bytes:(Seq.push_size_bytes entries)
    ~handler:(fun remote d ->
      Node.accept d;
      Seq.apply_push (seq_of remote) entries)

(* ------------------------------------------------------------------ *)
(* Global garbage collection of consistency metadata.

   A rendezvous with the same shape as a TreadMarks barrier-time GC:

   1. the coordinator (node 0) collects a RELEASE_NT-style contribution
      from every node (each node's own intervals) and accepts their union;
   2. it sends every node a tailored RELEASE departure; on acceptance each
      node validates all of its invalid pages (forcing every outstanding
      diff to be encoded and transferred — "thereby forcing more messages
      to be sent");
   3. when all nodes have validated, everyone discards interval records
      and diffs covered by the snapshot.

   Applications keep running throughout; anything they write during the
   rendezvous belongs to open or post-snapshot intervals, which survive. *)

let run_gc t =
 Obs.span t.obs ~node:0 ~layer:Obs.Carlos "gc.rendezvous" @@ fun () ->
  let coord = t.nodes.(0) in
  let n = t.cfg.nodes in
  (* 1. Collect contributions. *)
  let arrivals =
    List.map
      (fun i ->
        Node.rpc coord ~dst:i ~cost:Wire_cost.Gc_proto ~request_bytes:8
          ~service:(fun remote ->
            Lrc.make_piggyback (Node.lrc remote) ~receiver:0
              ~nontransitive:true)
          ~reply_bytes:Lrc.piggyback_size_bytes)
      (List.init (n - 1) (fun i -> i + 1))
  in
  Lrc.accept (Node.lrc coord) arrivals;
  let snapshot = Vc.copy (Lrc.vc (Node.lrc coord)) in
  (* 2. Departures: tailored RELEASE; each node validates everything. *)
  let validated =
    List.map
      (fun i ->
        let done_ = Ivar.create () in
        Node.send coord ~dst:i ~cost:Wire_cost.Gc_proto
          ~annotation:Annotation.Release ~payload_bytes:16
          ~handler:(fun remote d ->
            Node.accept d;
            Lrc.validate_all (Node.lrc remote);
            Node.send remote ~dst:0 ~cost:Wire_cost.Gc_proto
              ~annotation:Annotation.None_ ~payload_bytes:8
              ~handler:(fun _ d2 ->
                Node.accept d2;
                Ivar.fill done_ ()));
        done_)
      (List.init (n - 1) (fun i -> i + 1))
  in
  Lrc.validate_all (Node.lrc coord);
  List.iter (fun iv -> Node.await coord iv) validated;
  (* 3. Discard everywhere. *)
  let discarded =
    List.map
      (fun i ->
        let done_ = Ivar.create () in
        Node.send coord ~dst:i ~cost:Wire_cost.Gc_proto
          ~annotation:Annotation.None_ ~payload_bytes:16
          ~handler:(fun remote d ->
            Node.accept d;
            Lrc.discard_before (Node.lrc remote) snapshot;
            Node.send remote ~dst:0 ~cost:Wire_cost.Gc_proto
              ~annotation:Annotation.None_ ~payload_bytes:8
              ~handler:(fun _ d2 ->
                Node.accept d2;
                Ivar.fill done_ ()));
        done_)
      (List.init (n - 1) (fun i -> i + 1))
  in
  Lrc.discard_before (Node.lrc coord) snapshot;
  List.iter (fun iv -> Node.await coord iv) discarded;
  Obs.inc t.gc.runs_c;
  t.gc.in_progress <- false;
  t.gc.requested <- false

let request_gc t =
  if not t.gc.in_progress then begin
    t.gc.in_progress <- true;
    Engine.spawn t.engine (fun () -> run_gc t)
  end

(* Minimum virtual-time spacing between two metadata-pressure samples of
   one node. *)
let pressure_interval = 0.25

let sample_pressure ?(force = false) t node =
  let s = t.pressure.(Node.id node) in
  let now = Engine.now t.engine in
  if force || now -. s.last >= pressure_interval then begin
    s.last <- now;
    Obs.series_observe s.series ~ts:now
      (float_of_int (Backend.metadata_pressure (Node.backend node)))
  end

(* Safe-point hook installed on every node: sample the backend's metadata
   pressure, and ask for a GC when this node's consistency metadata
   exceeds the threshold.  Only the LRC backend accumulates lazy
   metadata; the other models report zero pressure and never trigger the
   rendezvous (which is LRC-specific). *)
let safe_point_check t node =
  sample_pressure t node;
  match (t.cfg.gc_threshold, t.cfg.backend) with
  | Some threshold, Backend.Lrc ->
    if
      (not t.gc.in_progress)
      && Backend.metadata_pressure (Node.backend node) > threshold
    then request_gc t
  | _ -> ()

(* ------------------------------------------------------------------ *)

let create ?(audit = false) (cfg : config) =
  if cfg.nodes <= 0 then invalid_arg "System.create: nodes";
  let engine = Engine.create () in
  (* One registry for the whole cluster, clocked by the engine: every
     layer below registers its instruments here. *)
  let obs = Obs.create ~clock:(fun () -> Engine.now engine) () in
  let medium =
    Medium.create ~obs engine ~nodes:cfg.nodes ~latency:cfg.latency
      ~bandwidth:cfg.bandwidth
  in
  let rng = Rng.create ~seed:cfg.seed in
  let datagram =
    if cfg.loss > 0.0 then
      Datagram.create medium ~loss:cfg.loss ~rng:(Rng.split rng) ()
    else Datagram.create medium ()
  in
  let sw =
    Sliding_window.create ~ack_every:cfg.ack_every ~ack_delay:cfg.ack_delay
      ~legacy_rto:cfg.legacy_rto ~rto_margin:cfg.rto_margin engine datagram
      ~window:cfg.window ~rto:cfg.rto
  in
  let region =
    Region.create ~page_size:cfg.page_size ~private_bytes:cfg.private_bytes
      ~noncoherent_bytes:cfg.noncoherent_bytes ~coherent_pages:cfg.coherent_pages
      ()
  in
  let noncoherent = Bytes.make cfg.noncoherent_bytes '\000' in
  let nodes =
    Array.init cfg.nodes (fun id ->
        let shm = Shm.create ~obs ~node:id ~region ~noncoherent () in
        Node.make ~obs ~id ~nodes:cfg.nodes ~engine ~shm ~costs:cfg.costs
          ~backend:cfg.backend ~strategy:cfg.strategy
          ~batch_fetch:cfg.batch_fetch ~diff_cache:cfg.diff_cache ())
  in
  let auditor =
    if audit then Some (Audit.create ~obs ~nodes:cfg.nodes ()) else None
  in
  let t =
    {
      cfg;
      engine;
      medium;
      sw;
      region;
      nodes;
      coherent_alloc =
        Alloc.create ~base:(Region.coherent_base region)
          ~size:(cfg.coherent_pages * cfg.page_size);
      noncoherent_alloc =
        Alloc.create
          ~base:(Region.noncoherent_base region)
          ~size:cfg.noncoherent_bytes;
      rng;
      gc =
        {
          in_progress = false;
          runs_c =
            Obs.counter obs ~node:Obs.global_node ~layer:Obs.Carlos "gc.runs";
          requested = false;
        };
      pressure =
        Array.init cfg.nodes (fun id ->
            {
              series =
                Obs.series obs ~node:id ~layer:Obs.Dsm "metadata_pressure";
              (* Negative sentinel: the first safe point always samples. *)
              last = -1.0;
            });
      obs;
      audit = auditor;
    }
  in
  Array.iter
    (fun node ->
      let id = Node.id node in
      Node.set_transport_send node (fun ~dst ~wire_bytes msg ->
          Sliding_window.send sw ~src:id ~dst ~payload_bytes:wire_bytes msg);
      Sliding_window.set_handler sw ~node:id (fun ~src ~size:_ msg ->
          Node.deliver node ~src msg);
      (match Node.backend node with
      | Backend.Lrc_b lrc -> Lrc.set_transport lrc (wire_transport t node)
      | Backend.Central_b cb ->
        if id <> Central.home cb then
          Central.set_transport cb (central_transport cfg node)
      | Backend.Seq_b sb ->
        if id <> Seq.sequencer sb then Seq.set_transport sb (seq_transport node)
        else Seq.set_push sb (seq_push node));
      (match auditor with
      | Some a ->
        Node.set_audit node (Some a);
        (match Node.backend node with
        | Backend.Lrc_b lrc -> Lrc.set_hooks lrc (Audit.lrc_hooks a)
        | Backend.Central_b cb -> Central.set_hooks cb (Audit.central_hooks a)
        | Backend.Seq_b sb -> Seq.set_hooks sb (Audit.seq_hooks a))
      | None -> ());
      Node.set_safe_point_hook node (fun n -> safe_point_check t n);
      Node.start_dispatcher node)
    t.nodes;
  t

let run t app =
  let start = Engine.now t.engine in
  let finished = Array.make t.cfg.nodes None in
  Array.iter
    (fun node ->
      Engine.spawn t.engine (fun () ->
          app node;
          Node.flush_compute node;
          finished.(Node.id node) <- Some (Engine.now t.engine)))
    t.nodes;
  Engine.run t.engine;
  (* Close out the telemetry: one final pressure sample per node (so the
     series always covers the whole run) and the wire-byte conservation
     invariant, if an auditor is attached. *)
  Array.iter (fun node -> sample_pressure ~force:true t node) t.nodes;
  (match t.audit with Some a -> Audit.check_conservation a | None -> ());
  let finish_times =
    Array.mapi
      (fun i f ->
        match f with
        | Some time -> time
        | None -> raise (Stalled (Printf.sprintf "node %d never finished" i)))
      finished
  in
  let wall = Array.fold_left Float.max 0.0 finish_times -. start in
  let per_node =
    Array.map
      (fun node ->
        let b = Node.breakdown node in
        let s = Node.msg_stats node in
        {
          node = Node.id node;
          user = Breakdown.user b;
          unix = Breakdown.unix b;
          carlos = Breakdown.carlos b;
          idle = Breakdown.idle b ~wall;
          msgs_sent = s.Node.sent;
          bytes_sent = s.Node.bytes;
        })
      t.nodes
  in
  let messages = Array.fold_left (fun a r -> a + r.msgs_sent) 0 per_node in
  let message_bytes =
    Array.fold_left (fun a r -> a + r.bytes_sent) 0 per_node
  in
  let diffs_created =
    Array.fold_left
      (fun a node ->
        a
        + (Backend.backend_stats (Node.backend node))
            .Carlos_dsm.Backend_intf.diffs_created)
      0 t.nodes
  in
  let diff_requests =
    Array.fold_left
      (fun a node ->
        a
        + (Backend.backend_stats (Node.backend node))
            .Carlos_dsm.Backend_intf.data_fetches)
      0 t.nodes
  in
  {
    wall;
    per_node;
    messages;
    message_bytes;
    avg_message_bytes =
      (if messages = 0 then 0.0
       else float_of_int message_bytes /. float_of_int messages);
    net_utilization =
      (if wall <= 0.0 then 0.0
       else float_of_int message_bytes *. 8.0 /. (1.0e7 *. wall));
    gc_runs = gc_runs t;
    diffs_created;
    diff_requests;
  }
