module Ivar = Carlos_sim.Resource.Ivar
module Obs = Carlos_obs.Obs

type arrival = {
  client : int;
  gate : unit Ivar.t;
  stored : Node.delivery option; (* None for the manager's own arrival *)
}

type t = {
  manager : int;
  name : string;
  transitive : bool;
  nodes : int;
  mutable arrivals : arrival list;
  mutable episodes : int;
  mutable first_arrival_at : float;
  obs : Obs.t;
  skew_h : Obs.Hist.t; (* first-to-last arrival spread per episode *)
}

let create system ~manager ~name ?(transitive = false) () =
  let nodes = System.node_count system in
  if manager < 0 || manager >= nodes then
    invalid_arg "Msg_barrier.create: manager";
  let obs = System.obs system in
  {
    manager;
    name;
    transitive;
    nodes;
    arrivals = [];
    episodes = 0;
    first_arrival_at = 0.0;
    obs;
    skew_h =
      Obs.histogram obs ~node:Obs.global_node ~layer:Obs.Carlos
        ("barrier.skew:" ^ name);
  }

let arrival_bytes = 8

let departure_bytes = 8

(* Runs at the manager when the last node arrives: accept the union of
   stored arrivals, then release everyone. *)
let fall t manager_node =
  let arrivals = List.rev t.arrivals in
  t.arrivals <- [];
  Obs.Hist.observe t.skew_h (Node.time manager_node -. t.first_arrival_at);
  Obs.event t.obs ~node:t.manager ~layer:Obs.Carlos "barrier.fall"
    ~args:[ ("name", Obs.Str t.name); ("episode", Obs.Int t.episodes) ];
  t.episodes <- t.episodes + 1;
  Node.accept_batch manager_node
    (List.filter_map (fun a -> a.stored) arrivals);
  List.iter
    (fun a ->
      if a.client = t.manager then Ivar.fill a.gate ()
      else
        Node.send ~cost:Carlos_obs.Cost.Barrier_proto manager_node ~dst:a.client ~annotation:Annotation.Release
          ~payload_bytes:departure_bytes
          ~handler:(fun _client_node d ->
            Node.accept d;
            Ivar.fill a.gate ()))
    arrivals

let note_arrival t manager_node arrival =
  if t.arrivals = [] then t.first_arrival_at <- Node.time manager_node;
  t.arrivals <- arrival :: t.arrivals;
  if List.length t.arrivals = t.nodes then fall t manager_node

let wait t node =
  Node.flush_compute node;
  let me = Node.id node in
  Obs.event t.obs ~node:me ~layer:Obs.Carlos "barrier.arrive"
    ~args:[ ("name", Obs.Str t.name); ("episode", Obs.Int t.episodes) ];
  let gate = Ivar.create () in
  if me = t.manager then begin
    (* The manager's own arrival: no message, but it participates in the
       count.  Its consistency contribution is its own memory. *)
    note_arrival t node { client = me; gate; stored = None };
    Node.await node gate
  end
  else begin
    let annotation =
      if t.transitive then Annotation.Release else Annotation.Release_nt
    in
    Node.send ~cost:Carlos_obs.Cost.Barrier_proto node ~dst:t.manager ~annotation ~payload_bytes:arrival_bytes
      ~handler:(fun manager_node d ->
        Node.store d;
        note_arrival t manager_node { client = me; gate; stored = Some d });
    Node.await node gate
  end

let episodes t = t.episodes
