(** Centralized shared work queue with a fixed manager (paper §2.2, §3).

    Enqueue messages are marked [RELEASE] and are {e stored} at the
    manager: "the manager code acts as a forwarding agent for the messages
    in the queue; it never accepts any RELEASE messages".  A dequeue
    request ([REQUEST]) causes the stored enqueue message to be forwarded
    to the requester, which accepts it — so the dequeuer becomes
    memory-consistent with the node that created the item, and only with
    it.  Enqueues are completely asynchronous; dequeues block.

    The two degraded modes measured in §5.2 are also provided:
    - [All_release]: dequeue requests are full [RELEASE] messages
      (the paper's Quicksort "Hybrid-2");
    - [No_forwarding]: the manager accepts enqueues and answers dequeues
      with fresh [RELEASE] replies, putting itself in every causal chain
      (performance "nearly identical to Hybrid-2"). *)

type mode = Forwarding | All_release | No_forwarding

type 'a t

val create :
  System.t -> manager:int -> name:string -> ?mode:mode -> unit -> 'a t

(** [enqueue t node ~bytes item] — [bytes] is the marshalled size of
    [item] on the wire.  Asynchronous. *)
val enqueue : 'a t -> Node.t -> bytes:int -> 'a -> unit

(** Blocks until an item is available; [None] once the queue has been
    closed and emptied. *)
val dequeue : 'a t -> Node.t -> 'a option

(** Close the queue: pending and future dequeues beyond the remaining
    items return [None]. *)
val close : 'a t -> Node.t -> unit

(** Items currently stored at the manager (diagnostic). *)
val length : 'a t -> int

(** Test-only corruption: arm a one-shot fault that makes the manager
    {e accept} the next enqueue message instead of relaying it (it then
    re-publishes the item itself, as in [No_forwarding] mode).  Violates
    the manager's never-becomes-consistent property, which the online
    auditor must report against the enqueue's trace id.  Never used in
    production code. *)
val chaos_accept_once : 'a t -> unit
