(** Per-node CarlOS runtime: the annotated active-message interface
    (paper §2.1–§2.2, §4.3) wired to the node's LRC engine, CPU and
    address space.

    Sending a message is asynchronous.  On delivery, the message's handler
    runs as "an extension to an interrupt-handling function": it must not
    block, and before returning it must dispose of the message by
    {!accept}ing it, {!forward}ing it to another node, or {!store}ing it
    for later disposition (the three actions of §2.2).  Only [accept]
    performs the memory-consistency actions of the message's annotation;
    a manager that only stores and forwards never becomes consistent with
    the senders — the property the centralized work queue exploits.

    Two delivery lanes exist.  User messages are dispatched in order by a
    per-node dispatcher fiber, so handler execution is serialized with
    respect to other user messages ("critical sections between the message
    handlers and higher-level code are handled by blocking the delivery of
    incoming messages").  Internal consistency traffic (diff, interval and
    page fetches) is serviced directly at interrupt level so that it can
    never deadlock behind a blocked user handler. *)

type t

(** A message in the hands of its receiver. *)
type delivery

(** A message in flight (opaque; instantiate the network layers at this
    type). *)
type wire

type handler = t -> delivery -> unit

exception Handler_error of string

(** {1 Identity and components} *)

val id : t -> int

val node_count : t -> int

val engine : t -> Carlos_sim.Engine.t

val shm : t -> Carlos_vm.Shm.t

(** The node's consistency backend. *)
val backend : t -> Carlos_dsm.Backend.t

(** The LRC instance of a node running the LRC backend.  Raises
    [Handler_error] on other backends. *)
val lrc : t -> Carlos_dsm.Lrc_backend.t

val breakdown : t -> Breakdown.t

(** The observability registry this node reports into. *)
val obs : t -> Carlos_obs.Obs.t

val costs : t -> Carlos_dsm.Cost.t

(** {1 Sending} *)

(** [send t ~dst ~annotation ~payload_bytes ~handler] transmits a user
    message.  For [Release]/[Release_nt] the consistency piggyback is
    computed and appended here (closing the current interval); for
    [Request] the sender's vector timestamp is appended.

    [?cost] classifies the payload bytes in the wire-byte taxonomy
    (default [App_payload]); headers, clocks and piggybacks are
    attributed automatically — see {!Carlos_obs.Cost}. *)
val send :
  ?cost:Carlos_obs.Cost.component ->
  t ->
  dst:int ->
  annotation:Annotation.t ->
  payload_bytes:int ->
  handler:handler ->
  unit

(** One-way system-lane control message with no consistency annotation:
    the handler runs at the destination's interrupt level and must not
    block (the sequencer backend's update pushes use this). *)
val post :
  ?cost:Carlos_obs.Cost.component ->
  t ->
  dst:int ->
  payload_bytes:int ->
  handler:handler ->
  unit

(** {1 Disposition (called from handlers)} *)

val accept : delivery -> unit

(** Accept several stored messages at once, merging their consistency
    information (the barrier manager's union of RELEASE_NT arrivals). *)
val accept_batch : t -> delivery list -> unit

val forward : delivery -> dst:int -> unit

(** Defer the disposition; the handler keeps the [delivery] value and must
    eventually [accept] or [forward] it. *)
val store : delivery -> unit

val delivery_src : delivery -> int

val delivery_annotation : delivery -> Annotation.t

(** Stable causal trace id of the message (allocated at send, preserved
    across forwarding hops; the id used for Perfetto flow arrows and
    auditor reports). *)
val delivery_trace_id : delivery -> int

(** The sender's vector timestamp piggybacked on a REQUEST message.
    Raises [Handler_error] for other annotations. *)
val delivery_sender_vc : delivery -> Carlos_dsm.Vc.t

(** {1 Application CPU} *)

(** Record [dt] seconds of application computation.  Accumulated and
    charged against the node CPU lazily (at the next message operation or
    {!flush_compute}), so tight loops do not flood the event queue. *)
val compute : t -> float -> unit

(** Charge any accumulated computation now; also a GC safe point. *)
val flush_compute : t -> unit

(** Charge [dt] to a bucket through the node CPU immediately. *)
val charge : t -> Breakdown.bucket -> float -> unit

(** Virtual time now. *)
val time : t -> float

(** {1 Blocking helpers (app/dispatcher fibers only)} *)

(** [rpc t ~dst ~request_bytes ~service ~reply_bytes] performs a blocking
    internal request-reply exchange on the system lane: [service] runs at
    interrupt level on the destination node and must not block;
    [reply_bytes] sizes the reply message for the wire.

    [?cost] classifies the request payload in the wire-byte taxonomy
    (default [App_payload]); [?reply_cost] classifies the reply payload
    (defaults to [cost]). *)
val rpc :
  ?cost:Carlos_obs.Cost.component ->
  ?reply_cost:Carlos_obs.Cost.component ->
  t ->
  dst:int ->
  request_bytes:int ->
  service:(t -> 'reply) ->
  reply_bytes:('reply -> int) ->
  'reply

(** Wait on an ivar (flushes pending computation first). *)
val await : t -> 'a Carlos_sim.Resource.Ivar.t -> 'a

(** {1 Statistics} *)

(** Immutable read-back of this node's message counters.  The live values
    are the [msgs.*] counters in the observability registry ([Carlos]
    layer); this is a convenience aggregate. *)
type msg_stats = {
  sent : int; (* user + system messages, including forwards *)
  bytes : int; (* wire payload bytes of those messages *)
  sent_release : int;
  sent_release_nt : int;
  sent_request : int;
  sent_none : int;
  stored : int;
  forwarded : int;
}

val msg_stats : t -> msg_stats

(** {1 Construction and wiring (used by System)} *)

(** [make ?obs ~id ...] — all accounting (message counters, Figure 2 time
    gauges, LRC protocol counters, page-fault counters are registered by
    the respective owners) lands in [obs]; a fresh private registry
    clocked by [engine] is created when omitted. *)
val make :
  ?obs:Carlos_obs.Obs.t ->
  id:int ->
  nodes:int ->
  engine:Carlos_sim.Engine.t ->
  shm:Carlos_vm.Shm.t ->
  costs:Carlos_dsm.Cost.t ->
  ?backend:Carlos_dsm.Backend.kind ->
  ?strategy:Carlos_dsm.Lrc_backend.strategy ->
  ?batch_fetch:bool ->
  ?diff_cache:bool ->
  unit ->
  t

(** Install the online consistency auditor.  When set, the node reports
    every send / accept / forward / store to it (see
    {!Carlos_audit.Audit}); installing the matching {!Carlos_dsm.Lrc_backend}
    hooks is the caller's job ([System.create ~audit:true] does both). *)
val set_audit : t -> Carlos_audit.Audit.t option -> unit

val audit : t -> Carlos_audit.Audit.t option

(** Install the wire-send function (the sliding-window layer). *)
val set_transport_send :
  t -> (dst:int -> wire_bytes:int -> wire -> unit) -> unit

(** Install the hook run at safe points (GC rendezvous checks).  The hook
    runs in the fiber that reached the safe point and may block. *)
val set_safe_point_hook : t -> (t -> unit) -> unit

(** Deliver an incoming wire message (the sliding-window receive upcall).
    Non-blocking: enqueues for the node's interrupt fiber, preserving
    per-sender order. *)
val deliver : t -> src:int -> wire -> unit

(** Start the node's interrupt and user-dispatcher fibers. *)
val start_dispatcher : t -> unit
