module Engine = Carlos_sim.Engine
module Resource = Carlos_sim.Resource
module Ivar = Resource.Ivar
module Mailbox = Resource.Mailbox
module Shm = Carlos_vm.Shm
module Lrc = Carlos_dsm.Lrc_backend
module Backend = Carlos_dsm.Backend
module Vc = Carlos_dsm.Vc
module Interval = Carlos_dsm.Interval
module Diff = Carlos_vm.Diff
module Cost = Carlos_dsm.Cost
module Wire_cost = Carlos_obs.Cost
module Trace = Carlos_sim.Trace
module Obs = Carlos_obs.Obs
module Audit = Carlos_audit.Audit

exception Handler_error of string

let am_header_bytes = 16

type lane = User_lane | System_lane

type msg_stats = {
  sent : int;
  bytes : int;
  sent_release : int;
  sent_release_nt : int;
  sent_request : int;
  sent_none : int;
  stored : int;
  forwarded : int;
}

(* Registry handles behind {!msg_stats}. *)
type instruments = {
  sent_c : Obs.counter;
  bytes_c : Obs.counter;
  release_c : Obs.counter;
  release_nt_c : Obs.counter;
  request_c : Obs.counter;
  none_c : Obs.counter;
  stored_c : Obs.counter;
  forwarded_c : Obs.counter;
}

type t = {
  id : int;
  nodes : int;
  engine : Engine.t;
  shm : Shm.t;
  backend : Backend.t;
  (* Preemptible CPU model: application computation occupies the CPU up to
     [cpu_busy_until]; message-handler and consistency work runs at
     interrupt level (SIGIO/SIGSEGV in the real system), preempting the
     application by pushing its completion time back. *)
  mutable cpu_busy_until : float;
  costs : Cost.t;
  breakdown : Breakdown.t;
  (* Arrival order from the reliable transport; drained by the interrupt
     fiber, which must never block on anything but the CPU. *)
  rx : delivery Mailbox.t;
  user_lane : delivery Mailbox.t;
  mutable transport_send : dst:int -> wire_bytes:int -> wire -> unit;
  mutable safe_point_hook : t -> unit;
  obs : Obs.t;
  wire_cost : Wire_cost.t;
  mutable pending_compute : float;
  ins : instruments;
  mutable audit : Audit.t option;
}

and wire = {
  origin : int; (* original sender; forwarding preserves it *)
  annotation : Annotation.t;
  lane : lane;
  payload_bytes : int;
  handler : handler;
  piggyback : Backend.piggyback option; (* RELEASE / RELEASE_NT *)
  sender_vc : Vc.t option; (* REQUEST *)
  cost : Wire_cost.component; (* taxonomy class of the payload bytes *)
  trace_id : int; (* stable causal trace id, from Obs.next_flow_id *)
  mutable hops : int; (* transmissions so far (0 = not yet sent) *)
}

and delivery = {
  message : wire;
  src : int; (* immediate sender (differs from origin after forwarding) *)
  target : t;
  mutable disposition : disposition;
}

and disposition = Undecided | Stored | Accepted | Forwarded

and handler = t -> delivery -> unit

let id t = t.id

let node_count t = t.nodes

let engine t = t.engine

let shm t = t.shm

let backend t = t.backend

let lrc t =
  match t.backend with
  | Backend.Lrc_b b -> b
  | Backend.Central_b _ | Backend.Seq_b _ ->
    raise (Handler_error "Node.lrc: node does not run the LRC backend")

let breakdown t = t.breakdown

let costs t = t.costs

let msg_stats t =
  {
    sent = Obs.value t.ins.sent_c;
    bytes = Obs.value t.ins.bytes_c;
    sent_release = Obs.value t.ins.release_c;
    sent_release_nt = Obs.value t.ins.release_nt_c;
    sent_request = Obs.value t.ins.request_c;
    sent_none = Obs.value t.ins.none_c;
    stored = Obs.value t.ins.stored_c;
    forwarded = Obs.value t.ins.forwarded_c;
  }

let obs t = t.obs

let set_audit t a = t.audit <- a

let audit t = t.audit

let audit_annotation = function
  | Annotation.Release -> Audit.Release
  | Annotation.Release_nt -> Audit.Release_nt
  | Annotation.Request -> Audit.Request
  | Annotation.None_ -> Audit.None_

let time t = Engine.now t.engine

(* ------------------------------------------------------------------ *)
(* CPU accounting *)

let charge t bucket dt =
  if dt > 0.0 then begin
    Breakdown.add t.breakdown bucket dt;
    match bucket with
    | Breakdown.User ->
      (* Base-load computation: runs after any earlier reservation and is
         preempted (pushed back) by interrupt-level work that arrives
         while it executes. *)
      let start = Float.max (Engine.now t.engine) t.cpu_busy_until in
      t.cpu_busy_until <- start +. dt;
      let rec wait () =
        let now = Engine.now t.engine in
        if now < t.cpu_busy_until then begin
          Engine.delay (t.cpu_busy_until -. now);
          wait ()
        end
      in
      wait ()
    | Breakdown.Unix | Breakdown.Carlos ->
      (* Interrupt-level work: executes immediately and delays the
         application's pending computation. *)
      t.cpu_busy_until <- t.cpu_busy_until +. dt;
      Engine.delay dt
  end

let compute t dt =
  if dt < 0.0 then invalid_arg "Node.compute: negative time";
  t.pending_compute <- t.pending_compute +. dt

let flush_compute t =
  if t.pending_compute > 0.0 then begin
    let dt = t.pending_compute in
    t.pending_compute <- 0.0;
    charge t Breakdown.User dt
  end;
  t.safe_point_hook t

(* ------------------------------------------------------------------ *)
(* Sending *)

let wire_size message =
  am_header_bytes + message.payload_bytes
  + (match message.piggyback with
    | Some pb -> Backend.piggyback_size_bytes pb
    | None -> 0)
  + match message.sender_vc with Some vc -> Vc.size_bytes vc | None -> 0

(* Split one transmission's wire size into taxonomy components (per hop:
   a forwarded message's bytes cross the wire again).  Together with the
   sliding-window (acks, retransmits) and datagram (frame headers, drops)
   attributions this accounts for every wire byte — see Carlos_obs.Cost. *)
let attribute_wire t message =
  Wire_cost.add t.wire_cost message.cost message.payload_bytes;
  Wire_cost.add t.wire_cost Wire_cost.Am_header am_header_bytes;
  (match message.sender_vc with
  | Some vc ->
    Wire_cost.add t.wire_cost Wire_cost.Vc_entries (Vc.size_bytes vc)
  | None -> ());
  match message.piggyback with
  | Some pb ->
    List.iter
      (fun (c, n) -> Wire_cost.add t.wire_cost c n)
      (Backend.piggyback_cost pb)
  | None -> ()

let count_send t message size =
  Obs.inc t.ins.sent_c;
  Obs.add t.ins.bytes_c size;
  match message.annotation with
  | Annotation.Release -> Obs.inc t.ins.release_c
  | Annotation.Release_nt -> Obs.inc t.ins.release_nt_c
  | Annotation.Request -> Obs.inc t.ins.request_c
  | Annotation.None_ -> Obs.inc t.ins.none_c

(* Auditor notification for the first transmission of a message.  Must run
   before any CPU charge: charges yield the fiber, and a nested handler
   could move the node's peer-knowledge mirror out from under the
   tailoring check. *)
let audit_send t ~dst message =
  match t.audit with
  | Some a when message.hops = 0 ->
    let required_vc, nontransitive, intervals =
      match message.piggyback with
      | Some (Backend.Lrc_pb pb) ->
        ( Some pb.Lrc.required_vc,
          pb.Lrc.nontransitive,
          List.map
            (fun (i : Interval.t) ->
              (i.Interval.id.Interval.creator, i.Interval.id.Interval.index))
            pb.Lrc.intervals )
      | Some (Backend.Central_pb _ | Backend.Seq_pb _) | None ->
        (* Non-LRC piggybacks carry no clock; the LRC-specific send
           invariants self-gate on [required_vc = None]. *)
        (None, false, [])
    in
    Audit.on_send a ~trace_id:message.trace_id ~src:t.id ~dst
      ~annotation:(audit_annotation message.annotation)
      ~vc:(Backend.vc t.backend) ~required_vc ~nontransitive ~intervals
      ~sender_vc:message.sender_vc
  | _ -> ()

(* The sender half of a causality arrow: a "send" complete slice covering
   the transmission cost, with the flow event (start for a first
   transmission, step for a forwarding hop) anchored inside it so
   Perfetto draws the arrow from this slice. *)
let trace_send t ~dst message ~duration =
  if Obs.tracing t.obs then begin
    let annot = Annotation.to_string message.annotation in
    Obs.complete_at t.obs ~ts:(Engine.now t.engine) ~duration ~node:t.id
      ~layer:Obs.Carlos "send"
      ~args:
        [
          ("id", Obs.Int message.trace_id);
          ("dst", Obs.Int dst);
          ("annot", Obs.Str annot);
        ];
    (if message.hops = 0 then Obs.flow_start else Obs.flow_step)
      t.obs ~id:message.trace_id ~node:t.id ~layer:Obs.Carlos annot
      ~args:[ ("dst", Obs.Int dst) ]
  end

let transmit t ~dst message =
  audit_send t ~dst message;
  if dst = t.id then begin
    (* Local delivery: protocol hops that land on the sending node (a
       manager forwarding to itself, a manager dequeuing from its own
       queue) never touch the wire; they cost one dispatch and are not
       counted as network messages. *)
    trace_send t ~dst message ~duration:t.costs.Cost.handler_dispatch;
    message.hops <- message.hops + 1;
    charge t Breakdown.Carlos t.costs.Cost.handler_dispatch;
    Mailbox.send t.rx { message; src = t.id; target = t; disposition = Undecided }
  end
  else begin
    let size = wire_size message in
    count_send t message size;
    attribute_wire t message;
    trace_send t ~dst message ~duration:t.costs.Cost.send_syscall;
    message.hops <- message.hops + 1;
    charge t Breakdown.Unix t.costs.Cost.send_syscall;
    t.transport_send ~dst ~wire_bytes:size message
  end

let send_internal ?(cost = Wire_cost.App_payload) t ~dst ~lane ~annotation
    ~payload_bytes ~handler =
  flush_compute t;
  let piggyback, sender_vc =
    match annotation with
    | Annotation.Release ->
      ( Some (Backend.make_piggyback t.backend ~receiver:dst
            ~nontransitive:false),
        None )
    | Annotation.Release_nt ->
      ( Some (Backend.make_piggyback t.backend ~receiver:dst
            ~nontransitive:true),
        None )
    | Annotation.Request -> (
      (* Models without vector time send a bare REQUEST: no clock bytes
         on the wire and no piggyback charge on either side. *)
      match Backend.request_vc t.backend with
      | Some vc ->
        charge t Breakdown.Carlos t.costs.Cost.vc_piggyback;
        (None, Some vc)
      | None -> (None, None))
    | Annotation.None_ -> (None, None)
  in
  let message =
    { origin = t.id; annotation; lane; payload_bytes; handler; piggyback;
      sender_vc; cost; trace_id = Obs.next_flow_id t.obs; hops = 0 }
  in
  transmit t ~dst message

let send ?cost t ~dst ~annotation ~payload_bytes ~handler =
  send_internal ?cost t ~dst ~lane:User_lane ~annotation ~payload_bytes
    ~handler

(* One-way system-lane control message: runs at the destination's
   interrupt level with no reply (the sequencer backend's update pushes
   use this). *)
let post ?cost t ~dst ~payload_bytes ~handler =
  send_internal ?cost t ~dst ~lane:System_lane ~annotation:Annotation.None_
    ~payload_bytes ~handler

(* ------------------------------------------------------------------ *)
(* Disposition *)

let delivery_src d = d.src

let delivery_annotation d = d.message.annotation

let delivery_trace_id d = d.message.trace_id

let delivery_sender_vc d =
  match d.message.sender_vc with
  | Some vc -> vc
  | None ->
    raise (Handler_error "delivery_sender_vc: not a REQUEST message")

let check_disposable d op =
  match d.disposition with
  | Undecided | Stored -> ()
  | Accepted | Forwarded ->
    raise (Handler_error (op ^ ": message already disposed of"))

let accept_batch t deliveries =
  let vc_before =
    match t.audit with
    | Some _ -> Some (Vc.copy (Backend.vc t.backend))
    | None -> None
  in
  Obs.span t.obs ~node:t.id ~layer:Obs.Carlos "accept" @@ fun () ->
  if Obs.tracing t.obs then
    List.iter
      (fun d ->
        (* Arrow terminus: binds to this accept slice (or, for an accept
           called directly from a handler, the enclosing deliver slice). *)
        Obs.flow_finish t.obs ~id:d.message.trace_id ~node:t.id
          ~layer:Obs.Carlos
          (Annotation.to_string d.message.annotation))
      deliveries;
  let piggybacks =
    List.filter_map
      (fun d ->
        check_disposable d "accept";
        d.disposition <- Accepted;
        match d.message.annotation with
        | Annotation.Release | Annotation.Release_nt ->
          charge t Breakdown.Carlos t.costs.Cost.release_fixed;
          d.message.piggyback
        | Annotation.Request | Annotation.None_ -> None)
      deliveries
  in
  if piggybacks <> [] then Backend.accept t.backend piggybacks;
  match (t.audit, vc_before) with
  | Some a, Some before ->
    Audit.on_accept a ~node:t.id ~vc_before:before
      ~vc_after:(Vc.copy (Backend.vc t.backend))
      (List.map
         (fun d ->
           {
             Audit.acc_trace_id = d.message.trace_id;
             acc_annotation = audit_annotation d.message.annotation;
             acc_origin = d.message.origin;
             acc_required_vc =
               (match d.message.piggyback with
               | Some (Backend.Lrc_pb pb) -> Some pb.Lrc.required_vc
               | Some (Backend.Central_pb _ | Backend.Seq_pb _) | None ->
                 None);
           })
         deliveries)
  | _ -> ()

let accept d = accept_batch d.target [ d ]

let forward d ~dst =
  check_disposable d "forward";
  let t = d.target in
  (match t.audit with
  | Some a ->
    let vc_before = Vc.copy (Backend.vc t.backend) in
    d.disposition <- Forwarded;
    Obs.inc t.ins.forwarded_c;
    Audit.on_forward a ~trace_id:d.message.trace_id ~node:t.id ~dst
      ~vc_before ~vc_after:(Backend.vc t.backend)
  | None ->
    d.disposition <- Forwarded;
    Obs.inc t.ins.forwarded_c);
  transmit t ~dst d.message

let store d =
  (match d.disposition with
  | Undecided -> ()
  | Stored | Accepted | Forwarded ->
    raise (Handler_error "store: message already disposed of"));
  let t = d.target in
  (match t.audit with
  | Some a ->
    let vc_before = Vc.copy (Backend.vc t.backend) in
    d.disposition <- Stored;
    Obs.inc t.ins.stored_c;
    Audit.on_store a ~trace_id:d.message.trace_id ~node:t.id ~vc_before
      ~vc_after:(Backend.vc t.backend)
  | None ->
    d.disposition <- Stored;
    Obs.inc t.ins.stored_c)

(* ------------------------------------------------------------------ *)
(* Receiving *)

let run_handler t d =
  let annot = Annotation.to_string d.message.annotation in
  Obs.span t.obs ~node:t.id ~layer:Obs.Carlos "deliver"
    ~args:
      [
        ("id", Obs.Int d.message.trace_id);
        ("src", Obs.Int d.src);
        ("annot", Obs.Str annot);
      ]
  @@ fun () ->
  if Obs.tracing t.obs then
    (* Intermediate hop of the causality arrow: binds to this deliver
       slice.  The arrow terminates at the accept (flow_finish). *)
    Obs.flow_step t.obs ~id:d.message.trace_id ~node:t.id ~layer:Obs.Carlos
      annot;
  charge t Breakdown.Carlos t.costs.Cost.handler_dispatch;
  (match d.message.annotation with
  | Annotation.Request -> (
    match d.message.sender_vc with
    | Some vc ->
      charge t Breakdown.Carlos t.costs.Cost.vc_piggyback;
      Backend.note_peer_vc t.backend ~peer:d.message.origin vc
    | None -> ())
  | Annotation.Release | Annotation.Release_nt | Annotation.None_ -> ());
  d.message.handler t d;
  match d.disposition with
  | Undecided ->
    raise
      (Handler_error
         "handler returned without accepting, forwarding or storing")
  | Stored | Accepted | Forwarded -> ()

(* Non-blocking: called directly by the sliding-window layer, which relies
   on its upcall returning promptly to keep per-pair delivery in order. *)
let deliver t ~src message =
  Mailbox.send t.rx { message; src; target = t; disposition = Undecided }

let start_dispatcher t =
  (* Interrupt fiber: receive-side system costs and system-lane handlers
     (which are non-blocking by construction: protocol services and RPC
     reply continuations). *)
  Engine.spawn t.engine (fun () ->
      let rec loop () =
        let d = Mailbox.recv t.rx in
        (* Locally delivered messages (src = self) never crossed the wire
           and pay no receive syscall. *)
        if d.src <> t.id then
          charge t Breakdown.Unix t.costs.Cost.recv_syscall;
        (match d.message.lane with
        | System_lane -> run_handler t d
        | User_lane -> Mailbox.send t.user_lane d);
        loop ()
      in
      loop ());
  (* User dispatcher fiber: runs user-message handlers one at a time; these
     may block (e.g. the acquire side of an accepted RELEASE fetching
     missing consistency information), which simply delays later user
     messages, as in the paper's model. *)
  Engine.spawn t.engine (fun () ->
      let rec loop () =
        let d = Mailbox.recv t.user_lane in
        run_handler t d;
        loop ()
      in
      loop ())

(* ------------------------------------------------------------------ *)
(* Blocking helpers *)

let await t ivar =
  flush_compute t;
  Ivar.read ivar

let rpc ?cost ?reply_cost t ~dst ~request_bytes ~service ~reply_bytes =
  flush_compute t;
  let result = Ivar.create () in
  let me = t.id in
  let reply_cost = match reply_cost with Some c -> Some c | None -> cost in
  send_internal ?cost t ~dst ~lane:System_lane ~annotation:Annotation.None_
    ~payload_bytes:request_bytes ~handler:(fun remote d ->
      accept d;
      let reply = service remote in
      send_internal ?cost:reply_cost remote ~dst:me ~lane:System_lane
        ~annotation:Annotation.None_
        ~payload_bytes:(reply_bytes reply)
        ~handler:(fun _local d2 ->
          accept d2;
          Ivar.fill result reply));
  Ivar.read result

(* ------------------------------------------------------------------ *)
(* Construction *)

let make ?obs ~id ~nodes ~engine ~shm ~costs ?(backend = Backend.Lrc)
    ?strategy ?batch_fetch ?diff_cache () =
  let obs =
    match obs with
    | Some o -> o
    | None ->
      (* Standalone node (unit tests): private registry, clocked by the
         engine so spans and events still carry virtual time. *)
      let o = Obs.create ~clock:(fun () -> Engine.now engine) () in
      o
  in
  (* The consistency backend charges its work to this node's CPU; tie the
     knot with a forward reference. *)
  let charge_consistency = ref (fun (_ : float) -> ()) in
  let charge_dsm dt = !charge_consistency dt in
  let backend =
    match backend with
    | Backend.Lrc ->
      Backend.Lrc_b
        (Lrc.create ~obs ~nodes ~me:id ~page_table:(Shm.page_table shm)
           ~costs ~charge:charge_dsm ?strategy ?batch_fetch ?diff_cache ())
    | Backend.Central ->
      Backend.Central_b
        (Carlos_dsm.Central_backend.create ~obs ~nodes ~me:id ~home:0
           ~page_table:(Shm.page_table shm) ~costs ~charge:charge_dsm ())
    | Backend.Seq ->
      Backend.Seq_b
        (Carlos_dsm.Seq_backend.create ~obs ~nodes ~me:id ~sequencer:0
           ~page_table:(Shm.page_table shm) ~costs ~charge:charge_dsm ())
  in
  let counter name = Obs.counter obs ~node:id ~layer:Obs.Carlos name in
  let t =
    {
      id;
      nodes;
      engine;
      shm;
      backend;
      cpu_busy_until = 0.0;
      costs;
      breakdown = Breakdown.create ~obs ~node:id ();
      rx = Mailbox.create ();
      user_lane = Mailbox.create ();
      transport_send =
        (fun ~dst:_ ~wire_bytes:_ _ ->
          invalid_arg "Node: transport not installed");
      safe_point_hook = (fun _ -> ());
      obs;
      wire_cost = Wire_cost.create obs;
      pending_compute = 0.0;
      audit = None;
      ins =
        {
          sent_c = counter "msgs.sent";
          bytes_c = counter "msgs.bytes";
          release_c = counter "msgs.release";
          release_nt_c = counter "msgs.release_nt";
          request_c = counter "msgs.request";
          none_c = counter "msgs.none";
          stored_c = counter "msgs.stored";
          forwarded_c = counter "msgs.forwarded";
        };
    }
  in
  charge_consistency := (fun dt -> charge t Breakdown.Carlos dt);
  t

let set_transport_send t f = t.transport_send <- f

let set_safe_point_hook t f = t.safe_point_hook <- f
