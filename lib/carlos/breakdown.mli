(** Per-node execution-time breakdown, as in the paper's Figure 2.

    Every virtual second of CPU consumed on a node is attributed to one of
    three buckets; idle time is what remains of wall-clock time:

    - [User]: application computation;
    - [Unix]: operating-system costs (system calls, protocol stack);
    - [Carlos]: CarlOS message handling and shared-memory consistency
      machinery.

    The buckets count CPU {e demand}; contention for the node CPU shows up
    as idle time, exactly as it would under a profiler.

    The three totals live in the observability registry as the [Carlos]
    layer gauges [time.user], [time.unix] and [time.carlos]; this module
    is a typed handle over them.  Measure a phase by snapshot/diff of the
    registry rather than resetting. *)

type bucket = User | Unix | Carlos

type t

(** [create ?obs ?node ()] registers the three gauges in [obs] (a fresh
    private registry by default) for [node]
    (default {!Carlos_obs.Obs.global_node}). *)
val create : ?obs:Carlos_obs.Obs.t -> ?node:int -> unit -> t

val add : t -> bucket -> float -> unit

val user : t -> float

val unix : t -> float

val carlos : t -> float

val busy : t -> float

(** [idle t ~wall] = [wall - busy t] (never negative). *)
val idle : t -> wall:float -> float

val pp : Format.formatter -> t -> unit
