(** Cluster bring-up and experiment harness.

    A [System.t] is one simulated CarlOS cluster: the virtual-time engine,
    the shared Ethernet segment with the UDP-like datagram service and the
    sliding-window reliable transport, one {!Node.t} per workstation with
    its LRC engine wired to the transport, a shared-region allocator, and
    the global garbage collector for consistency metadata (paper §5.2
    footnote 5).

    Typical use:
    {[
      let sys = System.create (System.default_config ~nodes:4) in
      let counter = System.alloc sys 8 in
      let report = System.run sys (fun node -> ...app code...) in
      Format.printf "%.1fs" report.wall
    ]} *)

type config = {
  nodes : int;
  page_size : int;
  coherent_pages : int;
  private_bytes : int;
  noncoherent_bytes : int;
  latency : float; (* seconds, wire propagation + interrupt *)
  bandwidth : float; (* bytes per second (10 Mbit/s Ethernet = 1.25e6) *)
  window : int; (* sliding-window size *)
  rto : float; (* retransmission timeout, seconds *)
  loss : float; (* datagram loss probability *)
  ack_every : int;
      (* cumulative ack after this many in-order frames (1 = ack each) *)
  ack_delay : float;
      (* ...or after this many seconds, whichever comes first; must stay
         below [rto] when [ack_every > 1] *)
  legacy_rto : bool;
      (* true restores the pre-ARQ fixed-RTO, reset-on-ack retransmission
         scheme (see {!Carlos_net.Sliding_window}) for A/B runs *)
  rto_margin : float;
      (* safety factor on the adaptive RTO's in-flight serialization
         floor; ignored under [legacy_rto] *)
  costs : Carlos_dsm.Cost.t;
  backend : Carlos_dsm.Backend.kind;
      (* consistency model: Lrc (the paper's protocol), Central
         (one-home-node sequential consistency) or Seq (sequencer-stamped
         total order) *)
  strategy : Carlos_dsm.Lrc_backend.strategy;
      (* LRC only — coherence strategy: invalidate (paper's measured
         configuration), update, or hybrid (paper §4.3) *)
  seed : int;
  gc_threshold : int option;
      (* consistency-metadata bytes per node that trigger a global GC;
         None disables GC *)
  batch_fetch : bool;
      (* coalesce a fault's fetches into one diff request per creator,
         issued in parallel, with other missing previously-accessed pages
         riding along *)
  diff_cache : bool;
      (* creator-side merged-diff cache for multi-interval requests *)
}

(** Paper-like defaults: 4 KB pages, 10 Mbit/s shared Ethernet, 100 us
    latency, no loss, default cost table, GC at 512 KB of metadata;
    batched fetching, merged-diff cache and delayed acks (4 frames /
    5 ms) on. *)
val default_config : nodes:int -> config

(** [legacy_config cfg] turns off everything batched: ack-per-frame,
    fixed-RTO retransmission ([legacy_rto = true]), serial
    per-(page, creator) demand fetching, no merged-diff cache — the seed
    protocol's behaviour, kept as the baseline arm for benchmark
    comparisons. *)
val legacy_config : config -> config

type node_report = {
  node : int;
  user : float;
  unix : float;
  carlos : float;
  idle : float;
  msgs_sent : int;
  bytes_sent : int;
}

type report = {
  wall : float; (* start of run to last application exit *)
  per_node : node_report array;
  messages : int; (* CarlOS messages sent, forwards included *)
  message_bytes : int; (* their wire bytes (headers + piggybacks) *)
  avg_message_bytes : float;
  net_utilization : float; (* fraction of the raw 10 Mbit/s, as in Tables 1-3 *)
  gc_runs : int;
  diffs_created : int;
  diff_requests : int;
}

type t

(** [create ?audit cfg] — with [~audit:true], an online consistency
    auditor ({!Carlos_audit.Audit}) observes the whole cluster: every
    node reports sends/accepts/dispositions and the LRC engines fire its
    shadow-state hooks.  Retrieve it with {!auditor}. *)
val create : ?audit:bool -> config -> t

val config : t -> config

val engine : t -> Carlos_sim.Engine.t

val node : t -> int -> Node.t

val node_count : t -> int

val region : t -> Carlos_vm.Region.t

(** Deterministic per-system random stream (seeded from [config.seed]). *)
val rng : t -> Carlos_sim.Rng.t

(** The cluster-wide observability registry: every instrument of every
    layer (network, VM, consistency protocol, message layer) and the typed
    event trace.  Snapshot/diff it to measure a phase; export it with the
    [Obs] Chrome-trace/JSONL printers. *)
val obs : t -> Carlos_obs.Obs.t

(** The online consistency auditor, when the system was created with
    [~audit:true]. *)
val auditor : t -> Carlos_audit.Audit.t option

(** Legacy flat view of the same registry ([Trace.t = Obs.t]): sends and
    handler dispatches as tagged events, off by default; enable with
    {!set_tracing}. *)
val trace : t -> Carlos_sim.Trace.t

val set_tracing : t -> bool -> unit

(** {1 Shared-memory setup} *)

(** Allocate in the coherent shared region (setup-time, deterministic). *)
val alloc : t -> ?align:int -> int -> int

(** Allocate in the non-coherent shared region. *)
val alloc_noncoherent : t -> ?align:int -> int -> int

(** Write the same value into every node's copy of coherent memory without
    taking faults — for input data every node would load from disk. *)
val preload_i64 : t -> int -> int -> unit

val preload_f64 : t -> int -> float -> unit

(** {1 Running} *)

exception Stalled of string

(** [run t app] spawns [app node] on every node, runs the cluster to
    quiescence and reports.  Raises {!Stalled} if some application fiber
    never finished (protocol deadlock). *)
val run : t -> (Node.t -> unit) -> report

(** Number of global metadata GCs so far. *)
val gc_runs : t -> int

(** Ask for a GC at the next opportunity (for tests). *)
val request_gc : t -> unit
