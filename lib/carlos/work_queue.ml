module Ivar = Carlos_sim.Resource.Ivar
module Obs = Carlos_obs.Obs
module Audit = Carlos_audit.Audit

type mode = Forwarding | All_release | No_forwarding

(* An item held at the manager: either the stored enqueue message itself
   (forwarding modes) or just the accepted value (No_forwarding). *)
type 'a held =
  | Stored of Node.delivery
  | Value of { item : 'a; bytes : int }

type 'a t = {
  manager : int;
  name : string;
  mode : mode;
  items : 'a held Queue.t;
  waiters : int Queue.t;
  mutable closed : bool;
  gates : 'a option Ivar.t Queue.t array; (* per node, parked dequeues *)
  obs : Obs.t;
  wait_h : Obs.Hist.t; (* per-dequeue blocked time, [wq.wait:<name>] *)
  (* Test-only corruption: the manager accepts the next enqueue instead of
     relaying it (see {!chaos_accept_once}). *)
  mutable chaos_accept : bool;
}

let create system ~manager ~name ?(mode = Forwarding) () =
  let nodes = System.node_count system in
  if manager < 0 || manager >= nodes then
    invalid_arg "Work_queue.create: manager";
  let obs = System.obs system in
  {
    manager;
    name;
    mode;
    items = Queue.create ();
    waiters = Queue.create ();
    closed = false;
    gates = Array.init nodes (fun _ -> Queue.create ());
    obs;
    wait_h =
      Obs.histogram obs ~node:Obs.global_node ~layer:Obs.Carlos
        ("wq.wait:" ^ name);
    chaos_accept = false;
  }

let chaos_accept_once t = t.chaos_accept <- true

let deliver_local t here result =
  let q = t.gates.(Node.id here) in
  if Queue.is_empty q then
    raise (Node.Handler_error (t.name ^ ": reply with no parked dequeue"))
  else Ivar.fill (Queue.pop q) result

(* Answer a waiting dequeuer with [held] (runs at the manager). *)
let hand_over t manager_node ~dst held =
  match held with
  | Stored d -> Node.forward d ~dst
  | Value { item; bytes } ->
    Node.send manager_node ~dst ~annotation:Annotation.Release
      ~payload_bytes:(8 + bytes)
      ~handler:(fun here reply ->
        Node.accept reply;
        deliver_local t here (Some item))

let answer_closed t manager_node ~dst =
  Node.send manager_node ~dst ~annotation:Annotation.None_ ~payload_bytes:8
    ~handler:(fun here reply ->
      Node.accept reply;
      deliver_local t here None)

let enqueue t node ~bytes item =
  Obs.event t.obs ~node:(Node.id node) ~layer:Obs.Carlos "wq.enqueue"
    ~args:[ ("name", Obs.Str t.name) ];
  (* The enqueue handler travels with the message.  At the manager it is
     stored (or accepted in No_forwarding mode); when forwarded onward, it
     runs again at the dequeuer and completes the hand-off. *)
  let hop = ref `At_manager in
  Node.send node ~dst:t.manager ~annotation:Annotation.Release
    ~payload_bytes:(8 + bytes)
    ~handler:(fun here d ->
      match !hop with
      | `At_manager -> (
        (* In the forwarding modes the manager is a pure relay for enqueue
           messages: declare that to the auditor before disposing, so an
           accept here (the chaos hook, or a future protocol bug) is
           reported against this message's trace id. *)
        (match (t.mode, Node.audit here) with
        | (Forwarding | All_release), Some a ->
          Audit.expect_relay a ~trace_id:(Node.delivery_trace_id d)
            ~node:(Node.id here)
        | _ -> ());
        (match t.mode with
        | Forwarding | All_release -> ()
        | No_forwarding -> Node.accept d);
        hop := `At_dequeuer;
        let held =
          match t.mode with
          | Forwarding | All_release ->
            if t.chaos_accept then begin
              (* Corrupted manager: becomes consistent with the producer
                 and re-publishes the item itself. *)
              t.chaos_accept <- false;
              Node.accept d;
              Value { item; bytes }
            end
            else begin
              Node.store d;
              Stored d
            end
          | No_forwarding -> Value { item; bytes }
        in
        if Queue.is_empty t.waiters then Queue.add held t.items
        else hand_over t here ~dst:(Queue.pop t.waiters) held)
      | `At_dequeuer ->
        Node.accept d;
        deliver_local t here (Some item))

let dequeue t node =
  let me = Node.id node in
  let gate = Ivar.create () in
  Queue.add gate t.gates.(me);
  let requested_at = Node.time node in
  let annotation =
    match t.mode with
    | Forwarding | No_forwarding -> Annotation.Request
    | All_release -> Annotation.Release
  in
  Node.send node ~dst:t.manager ~annotation ~payload_bytes:16
    ~handler:(fun manager_node d ->
      Node.accept d;
      if not (Queue.is_empty t.items) then
        hand_over t manager_node ~dst:me (Queue.pop t.items)
      else if t.closed then answer_closed t manager_node ~dst:me
      else Queue.add me t.waiters);
  let result = Node.await node gate in
  let wait = Node.time node -. requested_at in
  Obs.Hist.observe t.wait_h wait;
  Obs.event t.obs ~node:me ~layer:Obs.Carlos "wq.dequeue"
    ~args:[ ("name", Obs.Str t.name); ("wait", Obs.F wait) ];
  result

let close t node =
  Node.send node ~dst:t.manager ~annotation:Annotation.None_ ~payload_bytes:8
    ~handler:(fun manager_node d ->
      Node.accept d;
      t.closed <- true;
      while not (Queue.is_empty t.waiters) do
        answer_closed t manager_node ~dst:(Queue.pop t.waiters)
      done)

let length t = Queue.length t.items
