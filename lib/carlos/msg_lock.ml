module Ivar = Carlos_sim.Resource.Ivar
module Obs = Carlos_obs.Obs

type status = Released | Acquiring | Holding

type per_node = {
  mutable status : status;
  (* The lock token rests at the last holder after a release until a
     forwarded request claims it.  A node can be [Acquiring] while still
     holding the dormant token (it released and immediately re-requested);
     a forwarded request arriving in that window was ordered ahead of the
     re-request by the manager and must be granted at once — chaining it
     instead creates a two-node cycle. *)
  mutable token : bool;
  mutable next : int option; (* successor to grant to on release *)
  mutable gate : unit Ivar.t option; (* filled when the grant arrives *)
}

type t = {
  manager : int;
  name : string;
  mutable tail : int; (* last requester, as known at the manager *)
  per_node : per_node array;
  mutable acquisitions : int;
  mutable wait_time : float; (* cumulative time spent blocked in acquire *)
  mutable held_time : float; (* cumulative time the lock was held *)
  mutable acquired_at : float;
  obs : Obs.t;
  wait_h : Obs.Hist.t; (* per-acquisition wait, [lock.wait:<name>] *)
}

let create system ~manager ~name =
  let n = System.node_count system in
  if manager < 0 || manager >= n then invalid_arg "Msg_lock.create: manager";
  let obs = System.obs system in
  {
    manager;
    name;
    tail = manager;
    per_node =
      Array.init n (fun i ->
          { status = Released; token = i = manager; next = None; gate = None });
    acquisitions = 0;
    wait_time = 0.0;
    held_time = 0.0;
    acquired_at = 0.0;
    obs;
    wait_h =
      Obs.histogram obs ~node:Obs.global_node ~layer:Obs.Carlos
        ("lock.wait:" ^ name);
  }

let request_bytes = 16

let grant_bytes = 8

(* Send the RELEASE grant that hands the lock to [requester]; accepting it
   fills the gate the requester parked on. *)
let grant t node ~requester =
  Obs.event t.obs ~node:(Node.id node) ~layer:Obs.Carlos "lock.handoff"
    ~args:[ ("name", Obs.Str t.name); ("to", Obs.Int requester) ];
  Node.send ~cost:Carlos_obs.Cost.Lock_proto node ~dst:requester ~annotation:Annotation.Release
    ~payload_bytes:grant_bytes
    ~handler:(fun here d ->
      Node.accept d;
      t.acquisitions <- t.acquisitions + 1;
      let st = t.per_node.(Node.id here) in
      st.token <- true;
      match st.gate with
      | Some gate ->
        st.gate <- None;
        Ivar.fill gate ()
      | None ->
        raise (Node.Handler_error (t.name ^ ": grant with nobody waiting")))

let acquire t node =
  let me = Node.id node in
  let st = t.per_node.(me) in
  (match st.status with
  | Released -> ()
  | Acquiring | Holding ->
    invalid_arg
      (Printf.sprintf "Msg_lock.acquire(%s): node %d already has it" t.name me));
  st.status <- Acquiring;
  let gate = Ivar.create () in
  st.gate <- Some gate;
  (* The handler travels with the message: first hop runs at the manager
     (update the tail, forward to the previous tail), second hop at the
     previous tail (grant now or chain the requester behind it). *)
  let requested_at = Node.time node in
  let hop = ref `At_manager in
  Node.send ~cost:Carlos_obs.Cost.Lock_proto node ~dst:t.manager ~annotation:Annotation.Request
    ~payload_bytes:request_bytes
    ~handler:(fun here d ->
      match !hop with
      | `At_manager ->
        hop := `At_tail;
        let prev = t.tail in
        t.tail <- me;
        Node.forward d ~dst:prev
      | `At_tail ->
        Node.accept d;
        let tail_state = t.per_node.(Node.id here) in
        if tail_state.token && tail_state.status <> Holding then begin
          (* Dormant token (covers self-handoff, where the manager routed
             our own request back to us). *)
          tail_state.token <- false;
          grant t here ~requester:me
        end
        else begin
          match tail_state.next with
          | None -> tail_state.next <- Some me
          | Some _ ->
            raise
              (Node.Handler_error (t.name ^ ": tail already has a successor"))
        end);
  Node.await node gate;
  let wait = Node.time node -. requested_at in
  t.wait_time <- t.wait_time +. wait;
  Obs.Hist.observe t.wait_h wait;
  Obs.event t.obs ~node:me ~layer:Obs.Carlos "lock.acquired"
    ~args:[ ("name", Obs.Str t.name); ("wait", Obs.F wait) ];
  t.acquired_at <- Node.time node;
  st.status <- Holding

let release t node =
  let me = Node.id node in
  let st = t.per_node.(me) in
  (match st.status with
  | Holding -> ()
  | Released | Acquiring ->
    invalid_arg
      (Printf.sprintf "Msg_lock.release(%s): node %d does not hold it" t.name
         me));
  Node.flush_compute node;
  t.held_time <- t.held_time +. (Node.time node -. t.acquired_at);
  st.status <- Released;
  match st.next with
  | None -> () (* the token rests here until a forwarded request claims it *)
  | Some successor ->
    st.next <- None;
    st.token <- false;
    grant t node ~requester:successor

let held t node = t.per_node.(Node.id node).status = Holding

let wait_time t = t.wait_time

let held_time t = t.held_time

let acquisitions t = t.acquisitions

let with_lock t node f =
  acquire t node;
  match f () with
  | v ->
    release t node;
    v
  | exception e ->
    (* The body may already have released (or [release] itself may be what
       raised): releasing again would turn [e] into an [Invalid_argument]
       about not holding the lock.  Release only when still holding, and
       always re-raise the original exception. *)
    (if t.per_node.(Node.id node).status = Holding then
       try release t node with _ -> ());
    raise e
