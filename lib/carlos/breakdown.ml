module Obs = Carlos_obs.Obs

type bucket = User | Unix | Carlos

type t = { user_g : Obs.gauge; unix_g : Obs.gauge; carlos_g : Obs.gauge }

let create ?obs ?node () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let node = match node with Some n -> n | None -> Obs.global_node in
  {
    user_g = Obs.gauge obs ~node ~layer:Obs.Carlos "time.user";
    unix_g = Obs.gauge obs ~node ~layer:Obs.Carlos "time.unix";
    carlos_g = Obs.gauge obs ~node ~layer:Obs.Carlos "time.carlos";
  }

let add t bucket dt =
  if dt < 0.0 then invalid_arg "Breakdown.add: negative time";
  match bucket with
  | User -> Obs.add_gauge t.user_g dt
  | Unix -> Obs.add_gauge t.unix_g dt
  | Carlos -> Obs.add_gauge t.carlos_g dt

let user t = Obs.gauge_value t.user_g

let unix t = Obs.gauge_value t.unix_g

let carlos t = Obs.gauge_value t.carlos_g

let busy t = user t +. unix t +. carlos t

let idle t ~wall = Float.max 0.0 (wall -. busy t)

let pp ppf t =
  Format.fprintf ppf "user=%.3fs unix=%.3fs carlos=%.3fs" (user t) (unix t)
    (carlos t)
