module Ivar = Carlos_sim.Resource.Ivar
module Obs = Carlos_obs.Obs

module Semaphore = struct
  type t = {
    manager : int;
    name : string;
    mutable count : int;
    waiters : int Queue.t; (* node ids in arrival order *)
    gates : unit Ivar.t Queue.t array; (* per node, FIFO of parked P's *)
    obs : Obs.t;
    wait_h : Obs.Hist.t; (* per-P blocked time, [sem.wait:<name>] *)
  }

  let create system ~manager ~name ~initial =
    if initial < 0 then invalid_arg "Semaphore.create: negative count";
    let nodes = System.node_count system in
    let obs = System.obs system in
    {
      manager;
      name;
      count = initial;
      waiters = Queue.create ();
      gates = Array.init nodes (fun _ -> Queue.create ());
      obs;
      wait_h =
        Obs.histogram obs ~node:Obs.global_node ~layer:Obs.Carlos
          ("sem.wait:" ^ name);
    }

  let grant t manager_node ~dst =
    Node.send ~cost:Carlos_obs.Cost.Lock_proto manager_node ~dst ~annotation:Annotation.Release
      ~payload_bytes:8
      ~handler:(fun here d ->
        Node.accept d;
        let q = t.gates.(Node.id here) in
        if Queue.is_empty q then
          raise (Node.Handler_error (t.name ^ ": grant with no waiter"))
        else Ivar.fill (Queue.pop q) ())

  let wait t node =
    let me = Node.id node in
    let gate = Ivar.create () in
    Queue.add gate t.gates.(me);
    let requested_at = Node.time node in
    Node.send ~cost:Carlos_obs.Cost.Lock_proto node ~dst:t.manager ~annotation:Annotation.Request
      ~payload_bytes:16
      ~handler:(fun manager_node d ->
        Node.accept d;
        if t.count > 0 then begin
          t.count <- t.count - 1;
          grant t manager_node ~dst:me
        end
        else Queue.add me t.waiters);
    Node.await node gate;
    let wait = Node.time node -. requested_at in
    Obs.Hist.observe t.wait_h wait;
    Obs.event t.obs ~node:me ~layer:Obs.Carlos "sem.acquired"
      ~args:[ ("name", Obs.Str t.name); ("wait", Obs.F wait) ]

  let signal t node =
    Node.send ~cost:Carlos_obs.Cost.Lock_proto node ~dst:t.manager ~annotation:Annotation.Release
      ~payload_bytes:8
      ~handler:(fun manager_node d ->
        (* The manager accepts the V, becoming consistent with the
           signaller; a grant then carries that consistency onward. *)
        Node.accept d;
        if Queue.is_empty t.waiters then t.count <- t.count + 1
        else grant t manager_node ~dst:(Queue.pop t.waiters))

  let value t = t.count
end

module Condition = struct
  type t = {
    manager : int;
    name : string;
    waiters : int Queue.t;
    gates : unit Ivar.t Queue.t array;
  }

  let create system ~manager ~name =
    let nodes = System.node_count system in
    {
      manager;
      name;
      waiters = Queue.create ();
      gates = Array.init nodes (fun _ -> Queue.create ());
    }

  let fill_one t here =
    let q = t.gates.(Node.id here) in
    if Queue.is_empty q then
      raise (Node.Handler_error (t.name ^ ": signal with no parked waiter"))
    else Ivar.fill (Queue.pop q) ()

  let wait t node ~lock =
    let me = Node.id node in
    let gate = Ivar.create () in
    Queue.add gate t.gates.(me);
    (* Register at the manager, then drop the lock. *)
    Node.send ~cost:Carlos_obs.Cost.Lock_proto node ~dst:t.manager ~annotation:Annotation.Request
      ~payload_bytes:16
      ~handler:(fun _manager_node d ->
        Node.accept d;
        Queue.add me t.waiters);
    Msg_lock.release lock node;
    Node.await node gate;
    Msg_lock.acquire lock node

  let signal t node =
    (* The signal is a RELEASE relayed through the manager with the
       forwarding mechanism: the manager inspects, picks a waiter and
       forwards without accepting, so it stays out of the causal chain. *)
    let hop = ref `At_manager in
    Node.send ~cost:Carlos_obs.Cost.Lock_proto node ~dst:t.manager ~annotation:Annotation.Release
      ~payload_bytes:8
      ~handler:(fun here d ->
        match !hop with
        | `At_manager ->
          if Queue.is_empty t.waiters then
            (* Nobody waiting: the signal is lost (Mesa semantics); the
               manager absorbs it. *)
            Node.accept d
          else begin
            hop := `At_waiter;
            Node.forward d ~dst:(Queue.pop t.waiters)
          end
        | `At_waiter ->
          Node.accept d;
          fill_one t here)

  let broadcast t node =
    (* Forwarding cannot duplicate a message, so broadcast is
       manager-mediated: accept once, then re-release to every waiter. *)
    Node.send ~cost:Carlos_obs.Cost.Lock_proto node ~dst:t.manager ~annotation:Annotation.Release
      ~payload_bytes:8
      ~handler:(fun manager_node d ->
        Node.accept d;
        while not (Queue.is_empty t.waiters) do
          let waiter = Queue.pop t.waiters in
          Node.send ~cost:Carlos_obs.Cost.Lock_proto manager_node ~dst:waiter ~annotation:Annotation.Release
            ~payload_bytes:8
            ~handler:(fun here d2 ->
              Node.accept d2;
              fill_one t here)
        done)
end
