module Rng = Carlos_sim.Rng
module Resource = Carlos_sim.Resource
module Shm = Carlos_vm.Shm
module System = Carlos.System
module Node = Carlos.Node
module Annotation = Carlos.Annotation
module Msg_barrier = Carlos.Msg_barrier

type variant = Barrier | Hybrid

let variant_name = function Barrier -> "barrier" | Hybrid -> "hybrid"

type params = {
  size : int;
  iterations : int;
  seed : int;
  cell_cost : float;
}

let default_params =
  { size = 96; iterations = 24; seed = 11; cell_cost = 20e-6 }

type result = { checksum : float; exact : bool; report : System.report }

let config ?(nodes = 4) ?(strategy = Carlos_dsm.Lrc_backend.Invalidate) p =
  let grid_pages = ((p.size * p.size * 8) + 4095) / 4096 in
  {
    (System.default_config ~nodes) with
    System.coherent_pages = (2 * grid_pages) + 32;
    strategy;
  }

(* ------------------------------------------------------------------ *)
(* Sequential reference: double-buffered Jacobi is bit-reproducible, so
   the parallel run must match it exactly. *)

let init_cell rng = Rng.float rng *. 100.0

let reference p =
  let n = p.size in
  let rng = Rng.create ~seed:p.seed in
  let a = Array.init n (fun _ -> Array.init n (fun _ -> init_cell rng)) in
  let b = Array.map Array.copy a in
  let bufs = [| a; b |] in
  for gen = 0 to p.iterations - 1 do
    let src = bufs.(gen mod 2) and dst = bufs.((gen + 1) mod 2) in
    for r = 1 to n - 2 do
      for c = 1 to n - 2 do
        dst.(r).(c) <-
          0.25
          *. (src.(r - 1).(c) +. src.(r + 1).(c) +. src.(r).(c - 1)
             +. src.(r).(c + 1))
      done
    done
  done;
  let final = bufs.(p.iterations mod 2) in
  Array.fold_left
    (fun acc row -> Array.fold_left ( +. ) acc row)
    0.0 final

(* ------------------------------------------------------------------ *)

(* Row-partition the interior rows [1, n-2] into contiguous chunks. *)
let rows_of p ~nodes me =
  let interior = p.size - 2 in
  let per = interior / nodes and extra = interior mod nodes in
  let lo = 1 + (me * per) + min me extra in
  let count = per + if me < extra then 1 else 0 in
  (lo, lo + count - 1)

let run sys variant p =
  let n = p.size in
  let nodes = System.node_count sys in
  let grid_bytes = n * n * 8 in
  let base_a = System.alloc sys ~align:4096 grid_bytes in
  let base_b = System.alloc sys ~align:4096 grid_bytes in
  let addr base r c = base + (8 * ((r * n) + c)) in
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"grid" () in
  (* Hybrid: per node, one semaphore per neighbour counting "finished
     generation" notifications. *)
  let notif =
    Array.init nodes (fun _ ->
        Array.init nodes (fun _ -> Resource.Semaphore.create 0))
  in
  let checksum = ref nan in
  let app node =
    let me = Node.id node in
    let shm = Node.shm node in
    let lo, hi = rows_of p ~nodes me in
    if me = 0 then begin
      (* Materialize the initial grids (both buffers share the boundary
         and the initial interior). *)
      let rng = Rng.create ~seed:p.seed in
      for r = 0 to n - 1 do
        for c = 0 to n - 1 do
          let v = init_cell rng in
          Shm.write_f64 shm (addr base_a r c) v;
          Shm.write_f64 shm (addr base_b r c) v
        done
      done;
      Node.compute node (float_of_int (n * n) *. 0.2e-6)
    end;
    Msg_barrier.wait barrier node;
    let neighbours =
      List.filter
        (fun p -> p >= 0 && p < nodes && p <> me)
        [ me - 1; me + 1 ]
    in
    for gen = 0 to p.iterations - 1 do
      let src = if gen mod 2 = 0 then base_a else base_b in
      let dst = if gen mod 2 = 0 then base_b else base_a in
      for r = lo to hi do
        for c = 1 to n - 2 do
          let v =
            0.25
            *. (Shm.read_f64 shm (addr src (r - 1) c)
               +. Shm.read_f64 shm (addr src (r + 1) c)
               +. Shm.read_f64 shm (addr src (r) (c - 1))
               +. Shm.read_f64 shm (addr src (r) (c + 1)))
          in
          Shm.write_f64 shm (addr dst r c) v;
          Node.compute node p.cell_cost
        done
      done;
      match variant with
      | Barrier -> Msg_barrier.wait barrier node
      | Hybrid ->
        (* §3: the data stays in shared memory; a notification marked
           RELEASE tells each neighbour this generation's rows are
           published.  Under the update strategy the boundary-row diffs
           ride along with it. *)
        List.iter
          (fun nb ->
            Node.send node ~dst:nb ~annotation:Annotation.Release
              ~payload_bytes:16
              ~handler:(fun here d ->
                Node.accept d;
                Resource.Semaphore.signal notif.(Node.id here).(me)))
          neighbours;
        List.iter
          (fun nb -> Resource.Semaphore.wait notif.(me).(nb))
          neighbours
    done;
    (* Collect the final answer at node 0. *)
    Msg_barrier.wait barrier node;
    if me = 0 then begin
      let final = if p.iterations mod 2 = 0 then base_a else base_b in
      let sum = ref 0.0 in
      for r = 0 to n - 1 do
        for c = 0 to n - 1 do
          sum := !sum +. Shm.read_f64 shm (addr final r c)
        done
      done;
      Node.compute node (float_of_int (n * n) *. 0.05e-6);
      checksum := !sum
    end
  in
  let report = System.run sys app in
  { checksum = !checksum; exact = !checksum = reference p; report }
