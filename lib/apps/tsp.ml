module Rng = Carlos_sim.Rng
module Shm = Carlos_vm.Shm
module System = Carlos.System
module Node = Carlos.Node
module Annotation = Carlos.Annotation
module Msg_lock = Carlos.Msg_lock
module Msg_barrier = Carlos.Msg_barrier
module Work_queue = Carlos.Work_queue

type variant = Lock | Hybrid | Hybrid_all_release

let variant_name = function
  | Lock -> "lock"
  | Hybrid -> "hybrid"
  | Hybrid_all_release -> "hybrid-all-release"

type params = {
  cities : int;
  seed : int;
  prefix_depth : int;
  expand_frac : float;
      (* a prefix is split further only while its length is below this
         fraction of the initial bound: promising subtrees become fine
         tasks, hopeless ones stay coarse (they prune immediately) *)
  visit_cost : float;
  bound_check_period : int;
}

let default_params =
  {
    cities = 19;
    seed = 1994;
    prefix_depth = 4;
    expand_frac = 0.18;
    visit_cost = 38.5e-6;
    bound_check_period = 200;
  }

type result = {
  best : int;
  visited : int;
  report : System.report;
  lock_stats : (string * int * float * float) list;
}

(* ------------------------------------------------------------------ *)
(* Instance *)

type instance = {
  cities : int;
  dist : int array array; (* scaled integer distances *)
  sorted_neighbors : int array array; (* per city, others by distance *)
  min_edge : int array; (* cheapest edge out of each city *)
  nn_bound : int; (* nearest-neighbour tour length *)
}

let make_instance p =
  let rng = Rng.create ~seed:p.seed in
  let xs = Array.init p.cities (fun _ -> Rng.float rng *. 1000.0) in
  let ys = Array.init p.cities (fun _ -> Rng.float rng *. 1000.0) in
  let dist =
    Array.init p.cities (fun i ->
        Array.init p.cities (fun j ->
            let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
            int_of_float (sqrt ((dx *. dx) +. (dy *. dy)) *. 100.0)))
  in
  let sorted_neighbors =
    Array.init p.cities (fun i ->
        let others =
          Array.of_list
            (List.filter (fun j -> j <> i) (List.init p.cities Fun.id))
        in
        Array.sort (fun a b -> compare dist.(i).(a) dist.(i).(b)) others;
        others)
  in
  let min_edge =
    Array.init p.cities (fun i -> dist.(i).(sorted_neighbors.(i).(0)))
  in
  (* Nearest-neighbour tour for the initial bound. *)
  let visited = Array.make p.cities false in
  visited.(0) <- true;
  let total = ref 0 and current = ref 0 in
  for _ = 1 to p.cities - 1 do
    let next =
      Array.fold_left
        (fun acc j ->
          if visited.(j) then acc
          else
            match acc with
            | None -> Some j
            | Some b -> if dist.(!current).(j) < dist.(!current).(b) then Some j else acc)
        None
        (Array.init p.cities Fun.id)
    in
    match next with
    | Some j ->
      total := !total + dist.(!current).(j);
      visited.(j) <- true;
      current := j
    | None ->
      raise
        (Node.Handler_error
           (Printf.sprintf
              "Tsp.make_instance: nearest-neighbour tour found no unvisited \
               city among %d"
              p.cities))
  done;
  total := !total + dist.(!current).(0);
  (* Improve the initial tour with 2-opt so the search effort is dominated
     by verification and stays stable across schedules. *)
  let tour = Array.make p.cities 0 in
  let seen = Array.make p.cities false in
  seen.(0) <- true;
  let cur = ref 0 in
  for i = 1 to p.cities - 1 do
    let best = ref (-1) in
    for j = 0 to p.cities - 1 do
      if (not seen.(j))
         && (!best < 0 || dist.(!cur).(j) < dist.(!cur).(!best))
      then best := j
    done;
    tour.(i) <- !best;
    seen.(!best) <- true;
    cur := !best
  done;
  let improved = ref true in
  while !improved do
    improved := false;
    for i = 0 to p.cities - 2 do
      for j = i + 2 to p.cities - 1 do
        let a = tour.(i)
        and b = tour.(i + 1)
        and c = tour.(j)
        and d = tour.((j + 1) mod p.cities) in
        if dist.(a).(c) + dist.(b).(d) < dist.(a).(b) + dist.(c).(d) then begin
          let lo = ref (i + 1) and hi = ref j in
          while !lo < !hi do
            let tmp = tour.(!lo) in
            tour.(!lo) <- tour.(!hi);
            tour.(!hi) <- tmp;
            incr lo;
            decr hi
          done;
          improved := true
        end
      done
    done
  done;
  let two_opt = ref 0 in
  for i = 0 to p.cities - 1 do
    two_opt := !two_opt + dist.(tour.(i)).(tour.((i + 1) mod p.cities))
  done;
  (* +1 keeps a tour equal to the heuristic bound acceptable to the
     branch-and-bound (strict < pruning). *)
  let bound = min !total !two_opt + 1 in
  { cities = p.cities; dist; sorted_neighbors; min_edge; nn_bound = bound }

(* ------------------------------------------------------------------ *)
(* Search core, shared by the reference solver and the workers.

   A prefix is a partial tour starting at city 0.  [remaining_min] is the
   sum of the cheapest outgoing edges of the cities not on the path (plus
   the last city's), a cheap admissible-ish lower bound on the rest. *)

type search_ctx = {
  inst : instance;
  get_bound : unit -> int;
  offer_bound : int -> unit;
  on_visit : unit -> unit;
  mutable local_bound : int; (* cached copy of the global bound *)
  mutable visits : int;
}

let rec dfs ctx ~mask ~last ~len ~depth ~remaining_min =
  ctx.visits <- ctx.visits + 1;
  ctx.on_visit ();
  let inst = ctx.inst in
  if depth = inst.cities then begin
    let total = len + inst.dist.(last).(0) in
    if total < ctx.local_bound then begin
      ctx.local_bound <- total;
      ctx.offer_bound total
    end
  end
  else
    let neighbors = inst.sorted_neighbors.(last) in
    Array.iter
      (fun next ->
        if mask land (1 lsl next) = 0 then begin
          let len' = len + inst.dist.(last).(next) in
          let optimistic =
            len' + remaining_min - inst.min_edge.(last)
          in
          if optimistic < ctx.local_bound then
            dfs ctx ~mask:(mask lor (1 lsl next)) ~last:next ~len:len'
              ~depth:(depth + 1)
              ~remaining_min:(remaining_min - inst.min_edge.(last))
        end)
      neighbors

(* Solve the subproblem rooted at [prefix] (array of cities, starting with
   0). *)
let solve_prefix ctx prefix =
  let inst = ctx.inst in
  let mask = Array.fold_left (fun m c -> m lor (1 lsl c)) 0 prefix in
  let len = ref 0 in
  for i = 0 to Array.length prefix - 2 do
    len := !len + inst.dist.(prefix.(i)).(prefix.(i + 1))
  done;
  let remaining_min = ref 0 in
  for c = 0 to inst.cities - 1 do
    if mask land (1 lsl c) = 0 then
      remaining_min := !remaining_min + inst.min_edge.(c)
  done;
  let last = prefix.(Array.length prefix - 1) in
  ctx.local_bound <- ctx.get_bound ();
  dfs ctx ~mask ~last ~len:!len ~depth:(Array.length prefix)
    ~remaining_min:(!remaining_min + inst.min_edge.(last))

(* Split policy shared by the generator (hybrid) and the stack expansion
   (lock variant): descend while short and promising. *)
let should_expand p inst ~depth ~len =
  depth < p.prefix_depth
  && float_of_int len < p.expand_frac *. float_of_int inst.nn_bound

(* All task prefixes under the static nearest-neighbour bound.  Identical
   for every variant and node count. *)
let generate_prefixes p inst =
  let out = ref [] in
  let rec go prefix mask len depth =
    if not (should_expand p inst ~depth ~len) then
      out := Array.of_list (List.rev prefix) :: !out
    else
      let last = List.hd prefix in
      Array.iter
        (fun next ->
          if mask land (1 lsl next) = 0 then begin
            let len' = len + inst.dist.(last).(next) in
            if len' < inst.nn_bound then
              go (next :: prefix) (mask lor (1 lsl next)) len' (depth + 1)
          end)
        inst.sorted_neighbors.(last)
  in
  go [ 0 ] 1 0 1;
  List.rev !out

let solve_reference p =
  let inst = make_instance p in
  let best = ref inst.nn_bound in
  let ctx =
    {
      inst;
      get_bound = (fun () -> !best);
      offer_bound = (fun b -> if b < !best then best := b);
      on_visit = ignore;
      local_bound = !best;
      visits = 0;
    }
  in
  List.iter (fun prefix -> solve_prefix ctx prefix) (generate_prefixes p inst);
  !best

let task_count p =
  let inst = make_instance p in
  List.length (generate_prefixes p inst)

(* ------------------------------------------------------------------ *)
(* Shared-memory layout *)

type layout = {
  bound_addr : int;
  descriptors : int; (* base of descriptor slots *)
  slot_bytes : int;
  stack_top : int; (* lock variant: stack of descriptor indices *)
  stack_unfinished : int; (* items pushed but not yet completed *)
  stack_next_slot : int; (* descriptor slot allocator *)
  stack_slots : int;
}

let make_layout sys p ~max_descriptors =
  let slot_bytes = 32 in
  assert (p.prefix_depth < slot_bytes);
  {
    bound_addr = System.alloc sys ~align:8 8;
    descriptors = System.alloc sys ~align:4096 (max_descriptors * slot_bytes);
    slot_bytes;
    stack_top = System.alloc sys ~align:4096 8;
    stack_unfinished = System.alloc sys 8;
    stack_next_slot = System.alloc sys 8;
    stack_slots = System.alloc sys (8 * max_descriptors);
  }

let write_descriptor shm layout ~index prefix =
  let base = layout.descriptors + (index * layout.slot_bytes) in
  Shm.write_u8 shm base (Array.length prefix);
  Array.iteri (fun i c -> Shm.write_u8 shm (base + 1 + i) c) prefix

let read_descriptor shm layout ~index =
  let base = layout.descriptors + (index * layout.slot_bytes) in
  let len = Shm.read_u8 shm base in
  Array.init len (fun i -> Shm.read_u8 shm (base + 1 + i))

(* ------------------------------------------------------------------ *)

(* Worker context: charging, periodic bound refresh from shared memory. *)
let worker_ctx p inst node layout ~offer_bound =
  let counter = ref 0 in
  let rec ctx =
    {
      inst;
      get_bound = (fun () -> Shm.read_i64 (Node.shm node) layout.bound_addr);
      offer_bound = (fun b -> offer_bound ctx b);
      on_visit =
        (fun () ->
          Node.compute node p.visit_cost;
          incr counter;
          if !counter >= p.bound_check_period then begin
            counter := 0;
            let g = Shm.read_i64 (Node.shm node) layout.bound_addr in
            if g < ctx.local_bound then ctx.local_bound <- g
          end);
      local_bound = max_int;
      visits = 0;
    }
  in
  ctx

(* Upper bound on descriptor slots: every prefix of depth <= prefix_depth
   (the lock variant allocates slots for interior prefixes too). *)
let max_descriptors p =
  let rec go depth count total =
    if depth >= p.prefix_depth then total
    else
      let count = count * (p.cities - depth) in
      go (depth + 1) count (total + count)
  in
  go 1 1 1

let run sys variant p =
  let inst = make_instance p in
  let prefixes = generate_prefixes p inst in
  let layout = make_layout sys p ~max_descriptors:(max_descriptors p) in
  System.preload_i64 sys layout.bound_addr inst.nn_bound;
  (* The root task is accounted for before any worker can peek at the
     stack: a worker that wins the very first lock race must spin, not
     conclude the search is over. *)
  System.preload_i64 sys layout.stack_unfinished 1;
  let barrier = Msg_barrier.create sys ~manager:0 ~name:"tsp-end" () in
  let total_visits = ref 0 in
  let final_best = ref max_int in
  let queue = Work_queue.create sys ~manager:0 ~name:"tsp-q"
      ~mode:(match variant with
        | Lock | Hybrid -> Work_queue.Forwarding
        | Hybrid_all_release -> Work_queue.All_release)
      ()
  in
  let bound_lock = Msg_lock.create sys ~manager:0 ~name:"tsp-bound" in
  let stack_lock = Msg_lock.create sys ~manager:0 ~name:"tsp-stack" in
  let offer_bound_lock node _ctx b =
    Msg_lock.with_lock bound_lock node (fun () ->
        let shm = Node.shm node in
        if b < Shm.read_i64 shm layout.bound_addr then
          Shm.write_i64 shm layout.bound_addr b)
  in
  let post_annotation =
    match variant with
    | Hybrid_all_release -> Annotation.Release
    | Lock | Hybrid -> Annotation.Request
  in
  (* Hybrid: post the bound to the master, which writes shared memory and
     answers with a RELEASE (asynchronous at the poster). *)
  let offer_bound_hybrid node _ctx b =
    Node.send node ~dst:0 ~annotation:post_annotation ~payload_bytes:16
      ~handler:(fun master d ->
        Node.accept d;
        let shm = Node.shm master in
        if b < Shm.read_i64 shm layout.bound_addr then
          Shm.write_i64 shm layout.bound_addr b;
        Node.send master ~dst:(Node.delivery_src d)
          ~annotation:Annotation.Release ~payload_bytes:8
          ~handler:(fun _ d2 -> Node.accept d2))
  in
  let app node =
    let me = Node.id node in
    let shm = Node.shm node in
    let offer node' =
      match variant with
      | Lock -> offer_bound_lock node'
      | Hybrid | Hybrid_all_release -> offer_bound_hybrid node'
    in
    let ctx = worker_ctx p inst node layout ~offer_bound:(fun c b -> (offer node) c b) in
    (match variant with
    | Lock ->
      (* The original shared-memory program: a work stack of tour
         descriptors in coherent memory, protected by a lock.  Workers pop
         a descriptor; short prefixes are expanded one level and the
         children pushed back; full prefixes are solved recursively.
         Termination: the count of incomplete items reaches zero. *)
      if me = 0 then begin
        write_descriptor shm layout ~index:0 [| 0 |];
        Msg_lock.with_lock stack_lock node (fun () ->
            Shm.write_i64 shm layout.stack_slots 0;
            Shm.write_i64 shm layout.stack_top 1;
            Shm.write_i64 shm layout.stack_next_slot 1)
      end;
      let pending_done = ref 0 in
      let push_children children =
        Msg_lock.with_lock stack_lock node (fun () ->
            let base = Shm.read_i64 shm layout.stack_next_slot in
            Shm.write_i64 shm layout.stack_next_slot
              (base + List.length children);
            List.iteri
              (fun i prefix ->
                write_descriptor shm layout ~index:(base + i) prefix)
              children;
            let top = Shm.read_i64 shm layout.stack_top in
            List.iteri
              (fun i _ ->
                Shm.write_i64 shm (layout.stack_slots + (8 * (top + i)))
                  (base + i))
              children;
            Shm.write_i64 shm layout.stack_top (top + List.length children);
            let u = Shm.read_i64 shm layout.stack_unfinished in
            Shm.write_i64 shm layout.stack_unfinished
              (u + List.length children - 1))
      in
      let rec consume () =
        let action =
          Msg_lock.with_lock stack_lock node (fun () ->
              let u =
                Shm.read_i64 shm layout.stack_unfinished - !pending_done
              in
              if !pending_done > 0 then begin
                Shm.write_i64 shm layout.stack_unfinished u;
                pending_done := 0
              end;
              let top = Shm.read_i64 shm layout.stack_top in
              if top > 0 then begin
                Shm.write_i64 shm layout.stack_top (top - 1);
                `Work
                  (Shm.read_i64 shm (layout.stack_slots + (8 * (top - 1))))
              end
              else if u = 0 then `Done
              else `Retry)
        in
        match action with
        | `Work index ->
          let prefix = read_descriptor shm layout ~index in
          let plen = ref 0 in
          for i = 0 to Array.length prefix - 2 do
            plen := !plen + inst.dist.(prefix.(i)).(prefix.(i + 1))
          done;
          if should_expand p inst ~depth:(Array.length prefix) ~len:!plen
          then begin
            (* Expand one level, pruning against the current bound. *)
            let bound = Shm.read_i64 shm layout.bound_addr in
            let mask = Array.fold_left (fun m c -> m lor (1 lsl c)) 0 prefix in
            let last = prefix.(Array.length prefix - 1) in
            let len = ref 0 in
            for i = 0 to Array.length prefix - 2 do
              len := !len + inst.dist.(prefix.(i)).(prefix.(i + 1))
            done;
            let children = ref [] in
            Array.iter
              (fun next ->
                if mask land (1 lsl next) = 0 then begin
                  Node.compute node 2e-6;
                  if !len + inst.dist.(last).(next) < bound then
                    children := Array.append prefix [| next |] :: !children
                end)
              inst.sorted_neighbors.(last);
            (match !children with
            | [] -> pending_done := !pending_done + 1
            | children -> push_children children)
          end
          else begin
            solve_prefix ctx prefix;
            pending_done := !pending_done + 1
          end;
          consume ()
        | `Retry ->
          Node.compute node 1e-3;
          Node.flush_compute node;
          consume ()
        | `Done -> ()
      in
      consume ()
    | Hybrid | Hybrid_all_release ->
      (* The manager generates the queued tours (paper: "the manager node
         on which the queue is located is responsible for generating the
         queued tours") and also searches. *)
      if me = 0 then begin
        List.iteri
          (fun index prefix ->
            write_descriptor shm layout ~index prefix;
            Node.compute node 2e-6;
            Work_queue.enqueue queue node ~bytes:8 index)
          prefixes;
        Work_queue.close queue node
      end;
      let rec consume () =
        match Work_queue.dequeue queue node with
        | Some index ->
          solve_prefix ctx (read_descriptor shm layout ~index);
          consume ()
        | None -> ()
      in
      consume ());
    total_visits := !total_visits + ctx.visits;
    Msg_barrier.wait barrier node;
    if me = 0 then final_best := Shm.read_i64 shm layout.bound_addr
  in
  let report = System.run sys app in
  let lock_stats =
    List.map
      (fun l ->
        ( "tsp",
          Msg_lock.acquisitions l,
          Msg_lock.wait_time l,
          Msg_lock.held_time l ))
      [ stack_lock; bound_lock ]
  in
  { best = !final_best; visited = !total_visits; report; lock_stats }
