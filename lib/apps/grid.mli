(** Iterative grid relaxation (Jacobi), the paper's §3 motif: "Many
    numerical applications have communication patterns amenable to
    message-passing.  Prominent examples include hydrodynamics and
    engineering codes that iteratively solve partial differential
    equations using finite difference ... techniques."

    A square grid is row-partitioned across the nodes; every iteration
    each node recomputes its rows from the previous generation and needs
    its neighbours' boundary rows.

    Variants:
    - [Barrier]: pure shared memory.  A global barrier separates
      generations; boundary rows move through demand faults and diffs.
    - [Hybrid]: the §3 pattern — data stays in coherent shared memory,
      and after writing its boundary rows each node sends each neighbour
      a notification message marked RELEASE; neighbours wait for their
      two notifications instead of a global barrier.  "If the underlying
      memory coherence mechanism uses update rather than invalidation,
      the actual data transmission occurs eagerly and asynchronously when
      the notification message is sent" — run it under
      [Carlos_dsm.Lrc_backend.Update] to see exactly that. *)

type variant = Barrier | Hybrid

val variant_name : variant -> string

type params = {
  size : int; (* grid side; size*size doubles *)
  iterations : int;
  seed : int;
  cell_cost : float; (* virtual seconds per stencil evaluation *)
}

val default_params : params

type result = {
  checksum : float; (* sum of the final grid *)
  exact : bool; (* bit-exact equality with the sequential reference *)
  report : Carlos.System.report;
}

(** Sequential reference checksum (Jacobi is double-buffered, so the
    parallel schedule is bit-reproducible). *)
val reference : params -> float

val run : Carlos.System.t -> variant -> params -> result

(** A system configuration with a coherent region sized for the grid. *)
val config :
  ?nodes:int ->
  ?strategy:Carlos_dsm.Lrc_backend.strategy ->
  params ->
  Carlos.System.config
