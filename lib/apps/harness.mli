(** Table-row plumbing shared by the benchmark drivers: runs application
    variants across node counts and renders rows in the format of the
    paper's Tables 1-3 (time, speedup, message count, average message
    size, network utilization). *)

type row = {
  label : string;
  nodes : int;
  time : float;
  speedup : float;
  messages : int;
  avg_bytes : float;
  utilization : float;
  gc_runs : int;
  ok : bool; (* application-level correctness check *)
}

(** ["App/variant@backend"] — the one labelling convention for
    backend-qualified rows (driver output, bench matrix). *)
val backend_label : string -> Carlos_dsm.Backend.kind -> string

(** [row ~label ~nodes ~base ~ok report] — [base] is the matching one-node
    time used for the speedup column. *)
val row :
  label:string ->
  nodes:int ->
  base:float ->
  ok:bool ->
  Carlos.System.report ->
  row

val pp_header : Format.formatter -> unit -> unit

val pp_row : Format.formatter -> row -> unit

(** Render the paper's Figure 2: per-node average execution breakdown
    (User / Unix / CarlOS / Idle) for a set of labelled runs. *)
val pp_breakdown :
  Format.formatter -> (string * Carlos.System.report) list -> unit
