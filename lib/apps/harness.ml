module System = Carlos.System

type row = {
  label : string;
  nodes : int;
  time : float;
  speedup : float;
  messages : int;
  avg_bytes : float;
  utilization : float;
  gc_runs : int;
  ok : bool;
}

(* One labelling convention for backend-qualified rows everywhere
   (driver output, bench matrix): "App/variant@backend". *)
let backend_label label kind =
  label ^ "@" ^ Carlos_dsm.Backend.kind_to_string kind

let row ~label ~nodes ~base ~ok (report : System.report) =
  {
    label;
    nodes;
    time = report.System.wall;
    speedup = (if report.System.wall > 0.0 then base /. report.System.wall else 0.0);
    messages = report.System.messages;
    avg_bytes = report.System.avg_message_bytes;
    utilization = report.System.net_utilization;
    gc_runs = report.System.gc_runs;
    ok;
  }

let pp_header ppf () =
  Format.fprintf ppf "%-22s %2s | %8s %8s | %8s %6s | %5s %3s %s@."
    "Version" "N" "Time(s)" "Speedup" "Msgs" "Size" "Util" "GC" "ok"

let pp_row ppf r =
  Format.fprintf ppf "%-22s %2d | %8.1f %8.2f | %8d %6.0f | %4.0f%% %3d %s@."
    r.label r.nodes r.time r.speedup r.messages r.avg_bytes
    (100.0 *. r.utilization) r.gc_runs
    (if r.ok then "ok" else "FAIL")

let pp_breakdown ppf runs =
  Format.fprintf ppf "%-22s | %8s %8s %8s %8s | %8s@." "Version" "User"
    "Unix" "CarlOS" "Idle" "Total";
  List.iter
    (fun (label, (report : System.report)) ->
      let n = float_of_int (Array.length report.System.per_node) in
      let avg f =
        Array.fold_left (fun acc r -> acc +. f r) 0.0 report.System.per_node
        /. n
      in
      Format.fprintf ppf "%-22s | %8.2f %8.2f %8.2f %8.2f | %8.2f@." label
        (avg (fun r -> r.System.user))
        (avg (fun r -> r.System.unix))
        (avg (fun r -> r.System.carlos))
        (avg (fun r -> r.System.idle))
        report.System.wall)
    runs
