(** Legacy structured event trace, now a thin shim over {!Carlos_obs.Obs}.

    Historically each [Trace.t] was a private list of stringly-typed
    events; today it {e is} the typed observability registry
    ([type t = Obs.t]), and these functions translate between the old
    [tag]/[detail] view and typed [Obs] events.  Tracing is off by
    default and costs one branch per event when disabled.

    New code should use [Obs.event]/[Obs.span] directly; this interface
    remains for tests and tooling that consume the flat view. *)

type t = Carlos_obs.Obs.t

type event = { time : float; node : int; tag : string; detail : string }

(** A fresh private registry with tracing switched per [enabled].
    Production code shares the system-wide registry instead. *)
val create : ?enabled:bool -> unit -> t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** Record an event at virtual time [time] (pass [Engine.now]).  Recorded
    as a typed [Obs] instant event under the [Sim] layer with the detail
    string as an argument. *)
val record : t -> time:float -> node:int -> tag:string -> detail:string -> unit

(** All recorded events, oldest first.  Typed events recorded directly
    through [Obs] appear too: [tag] is the event name and [detail] is the
    rendered argument list. *)
val events : t -> event list

(** Events whose [tag] equals the argument, oldest first. *)
val events_with_tag : t -> string -> event list

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
