module Obs = Carlos_obs.Obs

type t = Obs.t

type event = { time : float; node : int; tag : string; detail : string }

let create ?(enabled = false) () =
  let o = Obs.create () in
  Obs.set_tracing o enabled;
  o

let enabled = Obs.tracing

let set_enabled = Obs.set_tracing

let record t ~time ~node ~tag ~detail =
  Obs.event_at t ~args:[ ("detail", Obs.Str detail) ] ~ts:time ~node
    ~layer:Obs.Sim tag

let render_arg = function
  | Obs.Str s -> s
  | Obs.Int i -> string_of_int i
  | Obs.F f -> Printf.sprintf "%g" f

(* The flat view of an argument list: a lone "detail" string round-trips
   [record] exactly; anything else renders as "k=v" pairs. *)
let detail_of_args = function
  | [] -> ""
  | [ ("detail", Obs.Str s) ] -> s
  | args ->
    String.concat " "
      (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (render_arg v)) args)

let of_obs (e : Obs.event) =
  { time = e.ts; node = e.node; tag = e.name; detail = detail_of_args e.args }

let events t = List.map of_obs (Obs.events t)

let events_with_tag t tag =
  List.filter (fun e -> String.equal e.tag tag) (events t)

let clear = Obs.clear_events

let pp_event ppf e =
  Format.fprintf ppf "[%.6f] n%d %s: %s" e.time e.node e.tag e.detail
