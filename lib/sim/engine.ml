module Profile = Carlos_obs.Profile

(* Queue payloads are a small variant instead of uniform [unit -> unit]
   thunks: resuming a parked fiber or starting a forked one schedules the
   continuation/body directly, so the steady state allocates no wrapper
   closure per event.  [Ev_none] is the heap's dummy filler for vacated
   slots — it never reaches [exec]. *)
type event =
  | Ev_none
  | Ev_thunk of (unit -> unit)
  | Ev_fiber of (unit -> unit)
  | Ev_resume of (unit, unit) Effect.Deep.continuation

type t = {
  mutable clock : float;
  queue : event Heap.t;
  mutable next_seq : int;
  mutable executed : int;
  mutable failure : exn option;
  (* Failures of fibers that died after [failure] was already recorded
     (newest first).  Surfaced by [run] as [Multiple_failures]. *)
  mutable secondary : exn list;
}

exception Multiple_failures of exn list

type _ Effect.t +=
  | Delay : (t * float) -> unit Effect.t
  | Time : float Effect.t
  | Fork : (unit -> unit) -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

(* The engine currently executing; used only to give fiber-level operations
   ([delay], [time], ...) an implicit engine argument.  Domain-local so
   independent simulations may run concurrently in separate domains (the
   parallel bench harness) without seeing each other's engine. *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create () =
  { clock = 0.0; queue = Heap.create ~dummy:Ev_none (); next_seq = 0;
    executed = 0; failure = None; secondary = [] }

let failures t =
  match t.failure with
  | None -> []
  | Some e -> e :: List.rev t.secondary

let now t = t.clock

let events_executed t = t.executed

let schedule_ev t ~time ev =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now %g" time t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if Profile.enabled () then begin
    let p0 = Profile.start () in
    Heap.add t.queue ~time ~seq ev;
    Profile.stop Profile.Heap_push p0
  end
  else Heap.add t.queue ~time ~seq ev

let schedule t ~time thunk = schedule_ev t ~time (Ev_thunk thunk)

let at t ~time f = schedule t ~time f

(* Runs [f] as a fiber body under the effect handler that implements the
   blocking operations.  Continuations are always resumed via the event
   queue so that fibers only ever run from the engine loop. *)
let rec start_fiber eng f =
  let open Effect.Deep in
  Profile.tick Profile.Fiber_spawn;
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match eng.failure with
          | None -> eng.failure <- Some e
          | Some _ -> eng.secondary <- e :: eng.secondary);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (t, dt) ->
            Some
              (fun (k : (a, _) continuation) ->
                if dt < 0.0 then
                  discontinue k (Invalid_argument "Engine.delay: negative")
                else schedule_ev t ~time:(t.clock +. dt) (Ev_resume k))
          | Time -> Some (fun k -> continue k eng.clock)
          | Fork g ->
            Some
              (fun k ->
                schedule_ev eng ~time:eng.clock (Ev_fiber g);
                continue k ())
          | Suspend register ->
            Some
              (fun k ->
                let resumed = ref false in
                let resume () =
                  if !resumed then
                    invalid_arg "Engine.suspend: resume invoked twice";
                  resumed := true;
                  schedule_ev eng ~time:eng.clock (Ev_resume k)
                in
                register resume)
          | _ -> None);
    }

and exec eng = function
  | Ev_none -> ()
  | Ev_thunk f -> f ()
  | Ev_fiber f -> start_fiber eng f
  | Ev_resume k ->
    if Profile.enabled () then begin
      let p0 = Profile.start () in
      Effect.Deep.continue k ();
      Profile.stop Profile.Fiber_resume p0
    end
    else Effect.Deep.continue k ()

let spawn t f = schedule_ev t ~time:t.clock (Ev_fiber f)

let run t =
  let saved = Domain.DLS.get current_key in
  Domain.DLS.set current_key (Some t);
  let run0 = Profile.start () in
  let finish () =
    Profile.stop Profile.Run run0;
    Domain.DLS.set current_key saved
  in
  (* After a failure, keep draining events already due at the current
     virtual instant: fibers that failed simultaneously get to record
     their exceptions instead of being silently dropped with the queue.
     The first strictly-later timestamp (or an empty queue) stops the
     run.  [Heap.min_time] is [infinity] on an empty queue, so the
     comparison is allocation-free either way. *)
  let overdue () = Heap.min_time t.queue <= t.clock in
  let rec loop () =
    match t.failure with
    | Some e when not (overdue ()) ->
      finish ();
      (match t.secondary with
      | [] -> raise e
      | rest -> raise (Multiple_failures (e :: List.rev rest)))
    | _ ->
      if Heap.is_empty t.queue then finish ()
      else begin
        let time = Heap.min_time t.queue in
        let ev =
          if Profile.enabled () then begin
            let p0 = Profile.start () in
            let ev = Heap.pop t.queue in
            Profile.stop Profile.Heap_pop p0;
            ev
          end
          else Heap.pop t.queue
        in
        t.clock <- time;
        t.executed <- t.executed + 1;
        (* An event returns when its fiber suspends (the effect handler
           captures the continuation), so this span is the exact host
           time of one event — no virtual-time inclusion. *)
        if Profile.enabled () then begin
          let e0 = Profile.start () in
          exec t ev;
          Profile.stop Profile.Event e0
        end
        else exec t ev;
        loop ()
      end
  in
  loop ()

let delay dt =
  match Domain.DLS.get current_key with
  | None -> invalid_arg "Engine.delay: not inside a running engine"
  | Some eng -> Effect.perform (Delay (eng, dt))

let time () = Effect.perform Time

let fork f = Effect.perform (Fork f)

let in_fiber () =
  match Effect.perform Time with
  | (_ : float) -> true
  | exception Effect.Unhandled _ -> false

let suspend register = Effect.perform (Suspend register)
