module Profile = Carlos_obs.Profile

type t = {
  mutable clock : float;
  queue : (unit -> unit) Heap.t;
  mutable next_seq : int;
  mutable executed : int;
  mutable failure : exn option;
  (* Failures of fibers that died after [failure] was already recorded
     (newest first).  Surfaced by [run] as [Multiple_failures]. *)
  mutable secondary : exn list;
}

exception Multiple_failures of exn list

type _ Effect.t +=
  | Delay : (t * float) -> unit Effect.t
  | Time : float Effect.t
  | Fork : (unit -> unit) -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

(* The engine currently executing; used only to give fiber-level operations
   ([delay], [time], ...) an implicit engine argument.  The simulator is
   single-domain, so a plain ref is safe. *)
let current : t option ref = ref None

let create () =
  { clock = 0.0; queue = Heap.create (); next_seq = 0; executed = 0;
    failure = None; secondary = [] }

let failures t =
  match t.failure with
  | None -> []
  | Some e -> e :: List.rev t.secondary

let now t = t.clock

let events_executed t = t.executed

let schedule t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now %g" time t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let p0 = Profile.start () in
  Heap.add t.queue ~time ~seq thunk;
  Profile.stop Profile.Heap_push p0

let at t ~time f = schedule t ~time f

(* Runs [f] as a fiber body under the effect handler that implements the
   blocking operations.  Continuations are always resumed via the event
   queue so that fibers only ever run from the engine loop. *)
let rec start_fiber eng f =
  let open Effect.Deep in
  Profile.tick Profile.Fiber_spawn;
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match eng.failure with
          | None -> eng.failure <- Some e
          | Some _ -> eng.secondary <- e :: eng.secondary);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (t, dt) ->
            Some
              (fun (k : (a, _) continuation) ->
                if dt < 0.0 then
                  discontinue k (Invalid_argument "Engine.delay: negative")
                else
                  schedule t ~time:(t.clock +. dt) (fun () ->
                      let p0 = Profile.start () in
                      continue k ();
                      Profile.stop Profile.Fiber_resume p0))
          | Time -> Some (fun k -> continue k eng.clock)
          | Fork g ->
            Some
              (fun k ->
                schedule eng ~time:eng.clock (fun () -> start_fiber eng g);
                continue k ())
          | Suspend register ->
            Some
              (fun k ->
                let resumed = ref false in
                let resume () =
                  if !resumed then
                    invalid_arg "Engine.suspend: resume invoked twice";
                  resumed := true;
                  schedule eng ~time:eng.clock (fun () ->
                      let p0 = Profile.start () in
                      continue k ();
                      Profile.stop Profile.Fiber_resume p0)
                in
                register resume)
          | _ -> None);
    }

let spawn t f = schedule t ~time:t.clock (fun () -> start_fiber t f)

let run t =
  let saved = !current in
  current := Some t;
  let run0 = Profile.start () in
  let finish () =
    Profile.stop Profile.Run run0;
    current := saved
  in
  (* After a failure, keep draining events already due at the current
     virtual instant: fibers that failed simultaneously get to record
     their exceptions instead of being silently dropped with the queue.
     The first strictly-later timestamp (or an empty queue) stops the
     run. *)
  let overdue () =
    match Heap.min_key t.queue with
    | Some (time, _) -> time <= t.clock
    | None -> false
  in
  let rec loop () =
    match t.failure with
    | Some e when not (overdue ()) ->
      finish ();
      (match t.secondary with
      | [] -> raise e
      | rest -> raise (Multiple_failures (e :: List.rev rest)))
    | _ -> (
      let p0 = Profile.start () in
      let next = Heap.pop_min t.queue in
      Profile.stop Profile.Heap_pop p0;
      match next with
      | None -> finish ()
      | Some (time, _, thunk) ->
        t.clock <- time;
        t.executed <- t.executed + 1;
        (* A thunk returns when its fiber suspends (the effect handler
           captures the continuation), so this span is the exact host
           time of one event — no virtual-time inclusion. *)
        let e0 = Profile.start () in
        thunk ();
        Profile.stop Profile.Event e0;
        loop ())
  in
  loop ()

let delay dt =
  match !current with
  | None -> invalid_arg "Engine.delay: not inside a running engine"
  | Some eng -> Effect.perform (Delay (eng, dt))

let time () = Effect.perform Time

let fork f = Effect.perform (Fork f)

let in_fiber () =
  match Effect.perform Time with
  | (_ : float) -> true
  | exception Effect.Unhandled _ -> false

let suspend register = Effect.perform (Suspend register)
