(* Flat 4-ary min-heap over parallel arrays.

   The event queue is the innermost data structure of the engine, so the
   layout is chosen for the mutator and the GC, not for elegance:

   - [times] is a plain [float array], which OCaml stores unboxed, so key
     comparisons never chase a pointer or allocate; [seqs] carries the
     deterministic tie-break; [values] carries the payload.  The previous
     representation boxed every entry as [Some {time; seq; value}] — two
     blocks plus a boxed float per event.
   - 4-ary rather than binary: half the tree depth for the same size, so
     fewer cache lines touched per sift; the wider child scan stays inside
     one or two lines of the parallel arrays.
   - Sifts move a hole instead of swapping, writing each slot once.

   Slots at or beyond [len] in [values] hold [dummy] so that popped
   entries — and the closures/continuations they capture — are released
   to the GC as soon as they leave the heap (the PR 8 leak fix, preserved
   here). *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy () =
  { times = [||]; seqs = [||]; values = [||]; len = 0; dummy }

let size h = h.len

let is_empty h = h.len = 0

let grow h =
  let cap = Array.length h.times in
  let cap' = if cap = 0 then 16 else cap * 2 in
  let times' = Array.make cap' 0.0 in
  let seqs' = Array.make cap' 0 in
  let values' = Array.make cap' h.dummy in
  Array.blit h.times 0 times' 0 h.len;
  Array.blit h.seqs 0 seqs' 0 h.len;
  Array.blit h.values 0 values' 0 h.len;
  h.times <- times';
  h.seqs <- seqs';
  h.values <- values'

let add h ~time ~seq value =
  if h.len = Array.length h.times then grow h;
  (* Sift the hole up from the new last slot. *)
  let i = ref h.len in
  h.len <- h.len + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 4 in
    let pt = Array.unsafe_get h.times p in
    if time < pt || (time = pt && seq < Array.unsafe_get h.seqs p) then begin
      Array.unsafe_set h.times !i pt;
      Array.unsafe_set h.seqs !i (Array.unsafe_get h.seqs p);
      Array.unsafe_set h.values !i (Array.unsafe_get h.values p);
      i := p
    end
    else moving := false
  done;
  Array.unsafe_set h.times !i time;
  Array.unsafe_set h.seqs !i seq;
  Array.unsafe_set h.values !i value

let min_time h = if h.len = 0 then infinity else Array.unsafe_get h.times 0

let pop h =
  if h.len = 0 then invalid_arg "Heap.pop: empty";
  let v0 = Array.unsafe_get h.values 0 in
  let last = h.len - 1 in
  h.len <- last;
  if last = 0 then Array.unsafe_set h.values 0 h.dummy
  else begin
    (* Re-insert the former last entry by sifting a hole down from the
       root; the vacated slot is cleared so the value can be collected. *)
    let time = Array.unsafe_get h.times last in
    let seq = Array.unsafe_get h.seqs last in
    let value = Array.unsafe_get h.values last in
    Array.unsafe_set h.values last h.dummy;
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let c0 = (4 * !i) + 1 in
      if c0 >= last then moving := false
      else begin
        let m = ref c0 in
        let hi = if c0 + 3 < last - 1 then c0 + 3 else last - 1 in
        for c = c0 + 1 to hi do
          let ct = Array.unsafe_get h.times c in
          let mt = Array.unsafe_get h.times !m in
          if
            ct < mt
            || ct = mt && Array.unsafe_get h.seqs c < Array.unsafe_get h.seqs !m
          then m := c
        done;
        let mt = Array.unsafe_get h.times !m in
        if mt < time || (mt = time && Array.unsafe_get h.seqs !m < seq) then begin
          Array.unsafe_set h.times !i mt;
          Array.unsafe_set h.seqs !i (Array.unsafe_get h.seqs !m);
          Array.unsafe_set h.values !i (Array.unsafe_get h.values !m);
          i := !m
        end
        else moving := false
      end
    done;
    Array.unsafe_set h.times !i time;
    Array.unsafe_set h.seqs !i seq;
    Array.unsafe_set h.values !i value
  end;
  v0

(* Compat layer: the option/tuple forms the engine used before the flat
   layout.  Kept for tests and any cold caller; the engine's hot loop uses
   [min_time]/[pop] directly. *)

let min_key h = if h.len = 0 then None else Some (h.times.(0), h.seqs.(0))

let pop_min h =
  if h.len = 0 then None
  else begin
    let time = h.times.(0) and seq = h.seqs.(0) in
    let v = pop h in
    Some (time, seq, v)
  end
