type 'a entry = { time : float; seq : int; value : 'a }

(* Slots at or beyond [len] hold [None] so that popped entries — and the
   thunk closures they capture, including blocked continuations — are
   released to the GC as soon as they leave the heap.  A plain
   ['a entry array] backing store would retain the moved last entry in
   [data.(len)] (and [grow]'s fill element in every spare slot)
   indefinitely. *)
type 'a t = { mutable data : 'a entry option array; mutable len : int }

let create () = { data = [||]; len = 0 }

let size h = h.len

let is_empty h = h.len = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get h i =
  match h.data.(i) with
  | Some e -> e
  | None -> assert false (* slots below [len] are always populated *)

let grow h =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let cap' = if cap = 0 then 16 else cap * 2 in
    let data' = Array.make cap' None in
    Array.blit h.data 0 data' 0 h.len;
    h.data <- data'
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt (get h i) (get h parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.len && lt (get h left) (get h !smallest) then smallest := left;
  if right < h.len && lt (get h right) (get h !smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h ~time ~seq value =
  grow h;
  h.data.(h.len) <- Some { time; seq; value };
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let min_key h =
  if h.len = 0 then None
  else
    let e = get h 0 in
    Some (e.time, e.seq)

let pop_min h =
  if h.len = 0 then None
  else begin
    let e = get h 0 in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      h.data.(h.len) <- None;
      sift_down h 0
    end
    else h.data.(0) <- None;
    Some (e.time, e.seq, e.value)
  end
