(** Deterministic discrete-event simulation engine with cooperative fibers.

    The engine owns a virtual clock and an event queue.  Code running inside
    the engine is organized as {e fibers}: lightweight cooperative threads
    implemented with OCaml effect handlers, so that protocol and application
    code can be written in direct style ([delay], blocking receives, RPCs)
    while the engine interleaves them deterministically in virtual time.

    Ties between simultaneous events are broken by a global sequence number,
    so a given program always produces the same schedule. *)

type t

(** Raised by {!run} when more than one fiber failed before the engine
    noticed: the primary (first) failure heads the list, later ones follow
    in the order they were recorded. *)
exception Multiple_failures of exn list

val create : unit -> t

(** Current virtual time, in seconds. *)
val now : t -> float

(** Number of events executed so far (diagnostic). *)
val events_executed : t -> int

(** [spawn t f] schedules fiber [f] to start at the current virtual time. *)
val spawn : t -> (unit -> unit) -> unit

(** [at t ~time f] runs callback [f] (not a fiber; it must not block) at
    virtual time [time].  [time] must not be in the past. *)
val at : t -> time:float -> (unit -> unit) -> unit

(** Run until the event queue drains.  If exactly one fiber raised, that
    exception is re-raised here after the queue stops; if several fibers
    raised, {!Multiple_failures} carries all of them (primary first) so no
    failure is silently dropped. *)
val run : t -> unit

(** Every fiber failure recorded so far, primary first ([[]] if none).
    Useful after [run] raised to inspect secondary failures. *)
val failures : t -> exn list

(** {1 Operations available inside a fiber} *)

(** Advance this fiber's virtual time by [dt] seconds (dt >= 0). *)
val delay : float -> unit

(** Virtual time as seen from inside a fiber. *)
val time : unit -> float

(** Start a sibling fiber from inside a fiber. *)
val fork : (unit -> unit) -> unit

(** Whether the caller is running inside an engine fiber (so {!fork},
    {!delay} and blocking reads are available).  Protocol code uses this to
    fall back to serial execution when driven directly from a unit test
    outside any engine. *)
val in_fiber : unit -> bool

(** [suspend register] parks the calling fiber.  [register] receives a
    [resume] thunk that, when invoked (from any other fiber or callback),
    reschedules the parked fiber at the then-current virtual time.  Invoking
    [resume] more than once is an error. *)
val suspend : ((unit -> unit) -> unit) -> unit
