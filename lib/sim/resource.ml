module Ivar = struct
  type 'a state = Empty of (unit -> unit) Queue.t | Full of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty (Queue.create ()) }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      t.state <- Full v;
      if Carlos_obs.Profile.enabled () then begin
        let p0 = Carlos_obs.Profile.start () in
        Queue.iter (fun resume -> resume ()) waiters;
        Carlos_obs.Profile.stop Carlos_obs.Profile.Ivar_wakeup p0
      end
      else Queue.iter (fun resume -> resume ()) waiters

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false

  let read t =
    match t.state with
    | Full v -> v
    | Empty waiters ->
      Engine.suspend (fun resume -> Queue.add resume waiters);
      (match t.state with
      | Full v -> v
      | Empty _ -> assert false)
end

module Mailbox = struct
  type 'a t = {
    messages : 'a Queue.t;
    receivers : (unit -> unit) Queue.t;
  }

  let create () = { messages = Queue.create (); receivers = Queue.create () }

  let send t v =
    Queue.add v t.messages;
    if not (Queue.is_empty t.receivers) then (Queue.pop t.receivers) ()

  let rec recv t =
    if Queue.is_empty t.messages then begin
      Engine.suspend (fun resume -> Queue.add resume t.receivers);
      (* A competing receiver woken at the same instant may have consumed
         the message; loop until we actually get one. *)
      recv t
    end
    else Queue.pop t.messages

  let length t = Queue.length t.messages
end

module Fifo = struct
  type t = {
    mutable held : bool;
    waiters : (unit -> unit) Queue.t;
    mutable busy : float;
    mutable acquired_at : float;
  }

  let create () =
    { held = false; waiters = Queue.create (); busy = 0.0; acquired_at = 0.0 }

  let acquire t =
    if not t.held then begin
      t.held <- true;
      t.acquired_at <- Engine.time ()
    end
    else begin
      Engine.suspend (fun resume -> Queue.add resume t.waiters);
      (* Ownership was handed to us by [release]. *)
      t.acquired_at <- Engine.time ()
    end

  let release t =
    if not t.held then invalid_arg "Fifo.release: not held";
    t.busy <- t.busy +. (Engine.time () -. t.acquired_at);
    t.acquired_at <- Engine.time ();
    if Queue.is_empty t.waiters then t.held <- false
    else (Queue.pop t.waiters) ()

  let use t dt =
    let requested = Engine.time () in
    acquire t;
    let waited = Engine.time () -. requested in
    Engine.delay dt;
    release t;
    waited

  let busy_time t = t.busy
end

module Semaphore = struct
  type t = { mutable count : int; waiters : (unit -> unit) Queue.t }

  let create count =
    if count < 0 then invalid_arg "Semaphore.create: negative";
    { count; waiters = Queue.create () }

  let wait t =
    if t.count > 0 then t.count <- t.count - 1
    else Engine.suspend (fun resume -> Queue.add resume t.waiters)

  let signal t =
    if Queue.is_empty t.waiters then t.count <- t.count + 1
    else (Queue.pop t.waiters) ()

  let value t = t.count
end

module Gate = struct
  type t = { mutable opened : bool; waiters : (unit -> unit) Queue.t }

  let create () = { opened = false; waiters = Queue.create () }

  let await t =
    if not t.opened then
      Engine.suspend (fun resume -> Queue.add resume t.waiters)

  let open_gate t =
    if not t.opened then begin
      t.opened <- true;
      Queue.iter (fun resume -> resume ()) t.waiters;
      Queue.clear t.waiters
    end

  let is_open t = t.opened
end
