(** Flat 4-ary min-heap keyed by [(time, seq)] pairs.

    The heap is the event queue of the simulation engine.  Keys are compared
    lexicographically: earlier virtual time first, and among simultaneous
    events the lower sequence number first, which gives the engine a total,
    deterministic order.

    Keys live in parallel unboxed [float]/[int] arrays and payloads in a
    plain ['a array], so pushes and pops allocate nothing (see heap.ml for
    the layout rationale).  Vacated payload slots are overwritten with
    [dummy] so popped values — thunk closures, blocked continuations — are
    released to the GC immediately. *)

type 'a t

(** [create ~dummy ()] — [dummy] fills unused payload slots; it must be a
    value that may safely outlive every real entry (e.g. [fun () -> ()]
    for a thunk heap). *)
val create : dummy:'a -> unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

(** [add h ~time ~seq v] inserts [v] with key [(time, seq)]. *)
val add : 'a t -> time:float -> seq:int -> 'a -> unit

(** Time of the smallest key, or [infinity] when the heap is empty.
    Allocation-free poll for the engine loop. *)
val min_time : 'a t -> float

(** Remove and return the payload with the smallest key.
    @raise Invalid_argument when the heap is empty. *)
val pop : 'a t -> 'a

(** {1 Boxed compatibility API} *)

(** Smallest key currently in the heap, if any. *)
val min_key : 'a t -> (float * int) option

(** Remove and return the entry with the smallest key. *)
val pop_min : 'a t -> (float * int * 'a) option
