(* Host-time (wall-clock) profiler for the engine hot path.

   Numbers here are real seconds measured with [Unix.gettimeofday], not
   virtual time — they are nondeterministic by nature, so they must NEVER
   enter the Obs metrics registry (whose exports are required to be
   byte-identical across identical runs).  The profile is kept in global
   mutable state, sampled around the engine/resource/vm hot paths, and
   exported as a separate opt-in section by the drivers.

   Categories nest (an [Event] span encloses the [Fiber_resume] and
   [Ivar_wakeup] work it triggers, and [Vm_fault] is inclusive of the
   virtual time the faulting fiber spends suspended), so summing across
   categories double-counts; compare each category against [Run]. *)

type category =
  | Run
  | Event
  | Heap_push
  | Heap_pop
  | Fiber_spawn
  | Fiber_resume
  | Ivar_wakeup
  | Vm_fault

let all =
  [ Run; Event; Heap_push; Heap_pop; Fiber_spawn; Fiber_resume; Ivar_wakeup;
    Vm_fault ]

let index = function
  | Run -> 0
  | Event -> 1
  | Heap_push -> 2
  | Heap_pop -> 3
  | Fiber_spawn -> 4
  | Fiber_resume -> 5
  | Ivar_wakeup -> 6
  | Vm_fault -> 7

let categories = List.length all

let name = function
  | Run -> "run"
  | Event -> "event"
  | Heap_push -> "heap_push"
  | Heap_pop -> "heap_pop"
  | Fiber_spawn -> "fiber_spawn"
  | Fiber_resume -> "fiber_resume"
  | Ivar_wakeup -> "ivar_wakeup"
  | Vm_fault -> "vm_fault"

(* Inclusive categories overlap other spans; don't sum them with anything. *)
let inclusive = function Vm_fault -> true | _ -> false

(* Profiler state is domain-local so concurrent simulations in separate
   domains (the parallel bench harness) never race on the accumulators:
   each domain profiles — or, normally, ignores — its own runs. *)
type state = { mutable on : bool; counts : int array; times : float array }

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { on = false;
        counts = Array.make categories 0;
        times = Array.make categories 0.0 })

let[@inline] state () = Domain.DLS.get state_key

let set_enabled b = (state ()).on <- b

let[@inline] enabled () = (state ()).on

let reset () =
  let s = state () in
  Array.fill s.counts 0 categories 0;
  Array.fill s.times 0 categories 0.0

(* Hot path: one DLS read and one branch when disabled — no allocation,
   no syscall; one gettimeofday each side of a span when enabled.
   Callers with work to do only-when-profiling (building a span around a
   resume, say) should branch on [enabled] themselves so the disabled
   path stays allocation-free. *)
let[@inline] start () =
  let s = state () in
  if s.on then Unix.gettimeofday () else 0.0

let[@inline] stop cat t0 =
  let s = state () in
  if s.on then begin
    let i = index cat in
    s.counts.(i) <- s.counts.(i) + 1;
    s.times.(i) <- s.times.(i) +. (Unix.gettimeofday () -. t0)
  end

let[@inline] tick cat =
  let s = state () in
  if s.on then s.counts.(index cat) <- s.counts.(index cat) + 1

type sample = { category : string; count : int; seconds : float }

let snapshot () =
  let s = state () in
  List.map
    (fun c ->
      { category = name c;
        count = s.counts.(index c);
        seconds = s.times.(index c) })
    all

let pp ppf () =
  let s = state () in
  Format.fprintf ppf "%-14s %10s %12s@." "category" "count" "host(s)";
  List.iter
    (fun c ->
      let i = index c in
      if s.counts.(i) > 0 then
        Format.fprintf ppf "%-14s %10d %12.6f%s@." (name c) s.counts.(i)
          s.times.(i)
          (if inclusive c then " (inclusive)" else ""))
    all

(* One JSONL line per category, shaped like (but distinct from) the Obs
   metrics lines, so --metrics-json consumers can filter on
   "type":"profile".  Uses %.9g like Obs.json_float; values are real
   wall-clock seconds and thus nondeterministic. *)
let pp_jsonl ppf () =
  let s = state () in
  List.iter
    (fun c ->
      let i = index c in
      Format.fprintf ppf
        "{\"node\":%d,\"layer\":\"sim\",\"name\":\"profile.%s\",\"type\":\"profile\",\"count\":%d,\"seconds\":%.9g,\"inclusive\":%b}\n"
        Obs.profile_node (name c) s.counts.(i) s.times.(i) (inclusive c))
    all

(* Mirror the profile into the trace buffer as Complete slices on the
   host-profile pseudo-process, laid out sequentially so Perfetto shows
   one bar per category (lengths are the aggregate host seconds). *)
let to_obs obs =
  let s = state () in
  let t = ref 0.0 in
  List.iter
    (fun c ->
      let i = index c in
      if s.times.(i) > 0.0 then begin
        Obs.complete_at obs ~ts:!t ~duration:s.times.(i)
          ~node:Obs.profile_node ~layer:Obs.Sim
          ("profile." ^ name c)
          ~args:[ ("count", Obs.Int s.counts.(i)) ];
        t := !t +. s.times.(i)
      end)
    all
