(** Typed observability layer: one metrics registry and one trace buffer
    for the whole simulated cluster.

    Every layer of the system (sim, net, vm, dsm, carlos, apps) registers
    its instruments here instead of keeping private mutable counters, so
    that the paper's entire evaluation — Figure 2's execution breakdown,
    the message/volume/utilisation columns of Tables 1–3, the §5.4
    annotation-cost study — derives from a single, uniformly exported set
    of numbers.

    Instruments are keyed by [node × layer × name].  Four kinds exist:

    - {e counters}: monotone integer event counts;
    - {e gauges}: float accumulators (virtual-time totals, stored bytes);
    - {e byte accumulators}: a count plus a byte total (messages + volume);
    - {e histograms}: virtual-time / size distributions with power-of-two
      buckets.

    Reading is explicit: benchmarks take {!snapshot}s and {!diff} them
    across phases rather than resetting hidden global state, so phases can
    never double-count.

    The registry also owns the typed event/span trace (off by default, one
    branch per event when disabled) with Chrome [trace_event] JSON and
    JSONL exporters.  All exports are deterministically ordered: two
    identical simulation runs emit byte-identical dumps. *)

(** {1 Keys} *)

type layer = Sim | Net | Vm | Dsm | Carlos | App

val layer_name : layer -> string

(** Pseudo-node for cluster-wide instruments (the shared wire, the
    datagram service): no single node owns them. *)
val global_node : int

(** Pseudo-node (-2) under which {!Profile.to_obs} records host-time
    slices; named "host-profile" in the Chrome trace. *)
val profile_node : int

type key = { node : int; layer : layer; name : string }

(** Total order used by every exporter and snapshot. *)
val compare_key : key -> key -> int

(** {1 Histograms} *)

module Hist : sig
  (** Mutable histogram: count, sum, min, max plus power-of-two buckets
      (bucket [i] counts observations with exponent [i - 40], covering
      roughly 1e-12 .. 1e7 — enough for virtual-time durations in seconds
      and object sizes in bytes). *)

  type t

  val bucket_count : int

  val create : unit -> t

  val observe : t -> float -> unit

  (** Immutable summary.  [min]/[max] are [infinity]/[neg_infinity] when
      [count = 0]. *)
  type snap = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : int array;
  }

  val snap : t -> snap

  val empty : snap

  (** Pointwise sum.  Commutative, and associative whenever the sums are
      exactly representable (e.g. integer-valued observations). *)
  val merge : snap -> snap -> snap

  val mean : snap -> float

  (** [percentile s p] estimates the [p]-th percentile ([0. <= p <= 100.])
      by linear interpolation inside the power-of-two bucket holding the
      rank [p/100 * count], with the bucket's bounds clamped to the
      observed [\[min, max\]] — so a single-valued histogram answers
      exactly, [percentile s 0. = s.min] and [percentile s 100. = s.max].

      Degenerate snaps have one defined answer: if [count <= 0] (the empty
      histogram, or a {!Obs.diff} that subtracted everything away) the
      result is [0.] for {e every} [p] — never the [infinity] /
      [neg_infinity] sentinels stored as the empty extrema.  A NaN [p]
      returns NaN. *)
  val percentile : snap -> float -> float
end

(** {1 Registry} *)

type t

(** [create ()] builds an empty registry.  The clock (used to timestamp
    span/trace events) defaults to a constant [0.0]; wire it to the
    simulation engine with {!set_clock}. *)
val create : ?clock:(unit -> float) -> unit -> t

val set_clock : t -> (unit -> float) -> unit

val now : t -> float

(** {1 Instruments}

    Registration is idempotent: asking twice for the same key returns the
    same instrument.  Asking for an existing key with a different kind
    raises [Invalid_argument]. *)

type counter

type gauge

type byte_acc

(** Explicit (virtual-time, value) sample list, append-only.  Used for
    quantities whose trajectory over virtual time matters (e.g. backend
    metadata pressure), not just their final value. *)
type series

val counter : t -> node:int -> layer:layer -> string -> counter

val gauge : t -> node:int -> layer:layer -> string -> gauge

val byte_acc : t -> node:int -> layer:layer -> string -> byte_acc

val histogram : t -> node:int -> layer:layer -> string -> Hist.t

val series : t -> node:int -> layer:layer -> string -> series

val inc : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

val set_gauge : gauge -> float -> unit

val add_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

(** [acc_bytes a n] records one event of [n] bytes. *)
val acc_bytes : byte_acc -> int -> unit

val acc_count : byte_acc -> int

val acc_total : byte_acc -> int

(** [series_observe s ~ts v] appends one sample.  Timestamps are expected
    (but not required) to be monotone; {!diff} relies only on
    append-only-ness. *)
val series_observe : series -> ts:float -> float -> unit

val series_length : series -> int

(** {1 Queries} *)

(** Current value of a counter registered under the key, or 0. *)
val counter_value : t -> node:int -> layer:layer -> string -> int

(** Sum of one named counter over every node (layer-wide totals, e.g. all
    messages sent by any node). *)
val sum_counters : t -> layer:layer -> string -> int

val sum_gauges : t -> layer:layer -> string -> float

(** {1 Snapshots} *)

type value_v =
  | Counter_v of int
  | Gauge_v of float
  | Bytes_v of { count : int; bytes : int }
  | Hist_v of Hist.snap
  | Series_v of (float * float) array
      (** (virtual-time, value) samples in insertion order *)

(** An immutable, deterministically ordered copy of every instrument. *)
type snapshot

val snapshot : t -> snapshot

(** [diff ~earlier later] subtracts instrument-wise: what happened between
    the two snapshots.  Keys missing from [earlier] pass through.  A
    histogram diff subtracts counts, sums and buckets but keeps the later
    [min]/[max] (extrema are not invertible).  A series diff keeps the
    samples appended after [earlier]; a merge interleaves samples by
    timestamp (stable). *)
val diff : earlier:snapshot -> snapshot -> snapshot

(** Instrument-wise sum of two snapshots (cluster-level aggregation). *)
val merge_snapshots : snapshot -> snapshot -> snapshot

val find : snapshot -> node:int -> layer:layer -> string -> value_v option

val bindings : snapshot -> (key * value_v) list

(** Zero every instrument and drop all trace events.  For test isolation
    only — production code must use {!snapshot}/{!diff} instead. *)
val reset : t -> unit

(** {1 Tracing} *)

type arg = Str of string | Int of int | F of float

type phase =
  | Instant
  | Complete of float  (** duration in virtual seconds *)
  | Flow_start of int  (** begin of causality arrow; payload is the flow id *)
  | Flow_step of int  (** intermediate hop of an existing flow *)
  | Flow_finish of int  (** end of causality arrow (binds to the enclosing slice) *)

type event = {
  ts : float;
  node : int;
  layer : layer;
  name : string;
  phase : phase;
  args : (string * arg) list;
}

val set_tracing : t -> bool -> unit

val tracing : t -> bool

(** Fresh flow (trace) id, unique within the registry, monotonically
    increasing from 1.  Allocated unconditionally (also when tracing is
    off) so that ids are stable whether or not a trace is captured. *)
val next_flow_id : t -> int

(** Record an instant event at the clock's current time.  One branch when
    tracing is disabled. *)
val event : ?args:(string * arg) list -> t -> node:int -> layer:layer -> string -> unit

(** Record an instant event at an explicit virtual time. *)
val event_at :
  ?args:(string * arg) list ->
  t -> ts:float -> node:int -> layer:layer -> string -> unit

(** Record a complete (begin/end) event spanning [duration] starting at
    [ts]. *)
val complete_at :
  ?args:(string * arg) list ->
  t -> ts:float -> duration:float -> node:int -> layer:layer -> string -> unit

(** Record a flow event (a causality arrow endpoint) at the clock's
    current time.  Chrome/Perfetto bind each flow event to the smallest
    duration slice enclosing its timestamp on the same [node × layer]
    lane, so record these inside a {!span} or {!complete_at} slice.  All
    events of one flow share the id (from {!next_flow_id}); give them the
    same [name] so the arrow is labelled consistently. *)
val flow_start :
  ?args:(string * arg) list ->
  t -> id:int -> node:int -> layer:layer -> string -> unit

val flow_step :
  ?args:(string * arg) list ->
  t -> id:int -> node:int -> layer:layer -> string -> unit

val flow_finish :
  ?args:(string * arg) list ->
  t -> id:int -> node:int -> layer:layer -> string -> unit

(** [span t ~node ~layer name f] runs [f ()]; when tracing, a complete
    event covering [f]'s virtual-time extent is recorded (also when [f]
    raises).  The clock must be wired for the extent to be meaningful. *)
val span :
  ?args:(string * arg) list ->
  t -> node:int -> layer:layer -> string -> (unit -> 'a) -> 'a

(** Recorded events, oldest first (insertion order; a span is inserted at
    its end time). *)
val events : t -> event list

val clear_events : t -> unit

(** {1 Exporters}

    All exporters print in a deterministic order (events in insertion
    order, metrics in {!compare_key} order) with fixed float formatting,
    so identical runs produce byte-identical output. *)

(** Chrome [trace_event] JSON (the "JSON Object Format"): open the file in
    [chrome://tracing] or [https://ui.perfetto.dev].  Nodes become
    processes, layers become threads; timestamps are microseconds of
    virtual time. *)
val pp_chrome_trace : Format.formatter -> t -> unit

(** One Chrome-style event object per line. *)
val pp_trace_jsonl : Format.formatter -> t -> unit

(** One JSON object per instrument per line. *)
val pp_metrics_jsonl : Format.formatter -> snapshot -> unit

(** Human-readable metrics table. *)
val pp_metrics : Format.formatter -> snapshot -> unit
