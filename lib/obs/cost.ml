(* Wire-byte taxonomy: every byte that crosses the simulated wire is
   attributed to exactly one protocol component, so per-component O(n)
   growth curves can be measured directly (scaling report, DESIGN.md §11).

   Conservation invariant (checked by the auditor and by bench gate rows):

     sum over components = medium.bytes + datagram.dropped_bytes

   Attribution happens at three layers:
   - lib/carlos/node.ml splits each message's wire size into the active
     message header ([Am_header]), the sender VC ([Vc_entries]), the
     piggyback (split by [Backend_intf.S.piggyback_cost]) and the payload
     (the sender's declared [component], [App_payload] by default);
   - lib/net/sliding_window.ml bills ack frames to [Ack] and head-of-line
     retransmissions to [Retransmit];
   - lib/net/datagram.ml bills the per-frame Eth+IP+UDP header (42 bytes,
     dropped frames included) to [Frame_header] and accumulates the full
     size of dropped frames in the datagram.dropped_bytes counter so the
     equation stays exact under loss. *)

type component =
  | Vc_entries
  | Write_notices
  | Diff_payload
  | Ack
  | Lock_proto
  | Barrier_proto
  | Gc_proto
  | App_payload
  | Am_header
  | Frame_header
  | Retransmit

let all =
  [
    Vc_entries; Write_notices; Diff_payload; Ack; Lock_proto; Barrier_proto;
    Gc_proto; App_payload; Am_header; Frame_header; Retransmit;
  ]

let count = List.length all

let index = function
  | Vc_entries -> 0
  | Write_notices -> 1
  | Diff_payload -> 2
  | Ack -> 3
  | Lock_proto -> 4
  | Barrier_proto -> 5
  | Gc_proto -> 6
  | App_payload -> 7
  | Am_header -> 8
  | Frame_header -> 9
  | Retransmit -> 10

let name = function
  | Vc_entries -> "vc_entries"
  | Write_notices -> "write_notices"
  | Diff_payload -> "diff_payload"
  | Ack -> "ack"
  | Lock_proto -> "lock_proto"
  | Barrier_proto -> "barrier_proto"
  | Gc_proto -> "gc_proto"
  | App_payload -> "app_payload"
  | Am_header -> "am_header"
  | Frame_header -> "frame_header"
  | Retransmit -> "retransmit"

let counter_name c = "cost." ^ name c

type t = { counters : Obs.counter array }

(* Registration is idempotent (Obs registry semantics), so each layer that
   attributes bytes creates its own handle over the same counters. *)
let create obs =
  {
    counters =
      Array.of_list
        (List.map
           (fun c ->
             Obs.counter obs ~node:Obs.global_node ~layer:Obs.Net
               (counter_name c))
           all);
  }

let add t c n = if n <> 0 then Obs.add t.counters.(index c) n

let read obs c =
  Obs.counter_value obs ~node:Obs.global_node ~layer:Obs.Net (counter_name c)

let total obs = List.fold_left (fun acc c -> acc + read obs c) 0 all

let breakdown obs = List.map (fun c -> (c, read obs c)) all

(* Both sides of the conservation equation, from the registry. *)
let wire_total obs =
  Obs.counter_value obs ~node:Obs.global_node ~layer:Obs.Net "medium.bytes"
  + Obs.counter_value obs ~node:Obs.global_node ~layer:Obs.Net
      "datagram.dropped_bytes"

let conserved obs = total obs = wire_total obs

let pp ppf obs =
  List.iter
    (fun (c, n) ->
      if n > 0 then Format.fprintf ppf "  %-14s %10d@." (name c) n)
    (breakdown obs);
  Format.fprintf ppf "  %-14s %10d (wire %d)@." "total" (total obs)
    (wire_total obs)
