(* Typed observability layer: metrics registry + event/span trace with
   Chrome trace_event and JSONL exporters.  See obs.mli for the model. *)

type layer = Sim | Net | Vm | Dsm | Carlos | App

let layer_name = function
  | Sim -> "sim"
  | Net -> "net"
  | Vm -> "vm"
  | Dsm -> "dsm"
  | Carlos -> "carlos"
  | App -> "app"

let layer_index = function
  | Sim -> 0
  | Net -> 1
  | Vm -> 2
  | Dsm -> 3
  | Carlos -> 4
  | App -> 5

let global_node = -1

(* Pseudo-process used by Profile.to_obs for host-time slices. *)
let profile_node = -2

type key = { node : int; layer : layer; name : string }

let compare_key a b =
  match compare a.node b.node with
  | 0 -> (
    match compare (layer_index a.layer) (layer_index b.layer) with
    | 0 -> String.compare a.name b.name
    | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Histograms *)

module Hist = struct
  let bucket_count = 64

  type t = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    buckets : int array;
  }

  let create () =
    {
      count = 0;
      sum = 0.0;
      min = infinity;
      max = neg_infinity;
      buckets = Array.make bucket_count 0;
    }

  (* Power-of-two buckets: an observation v with v = m * 2^e (0.5 <= m < 1)
     lands in bucket e + 40 (clamped), covering ~1e-12 .. ~1e7. *)
  let bucket_of v =
    if v <= 0.0 then 0
    else
      let (_, e) = Float.frexp v in
      Int.max 0 (Int.min (bucket_count - 1) (e + 40))

  let observe h v =
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min then h.min <- v;
    if v > h.max then h.max <- v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1

  let reset h =
    h.count <- 0;
    h.sum <- 0.0;
    h.min <- infinity;
    h.max <- neg_infinity;
    Array.fill h.buckets 0 bucket_count 0

  type snap = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : int array;
  }

  let snap (h : t) =
    {
      count = h.count;
      sum = h.sum;
      min = h.min;
      max = h.max;
      buckets = Array.copy h.buckets;
    }

  let empty =
    {
      count = 0;
      sum = 0.0;
      min = infinity;
      max = neg_infinity;
      buckets = Array.make bucket_count 0;
    }

  let merge a b =
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      buckets = Array.init bucket_count (fun i -> a.buckets.(i) + b.buckets.(i));
    }

  let mean s = if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

  (* Lower/upper bound of bucket [b], clamped to the observed extrema so
     degenerate histograms (all values equal, or a single occupied bucket
     whose edges overshoot) interpolate to exact answers. *)
  let bucket_lo s b = if b = 0 then s.min else Float.max (Float.ldexp 1.0 (b - 41)) s.min

  let bucket_hi s b = Float.min (Float.ldexp 1.0 (b - 40)) s.max

  (* Degenerate snaps have one defined answer: empty (or diffed-to-empty,
     count <= 0) histograms return 0.0 for every p; a NaN p propagates. *)
  let percentile s p =
    if Float.is_nan p then Float.nan
    else if s.count <= 0 then 0.0
    else if p <= 0.0 then s.min
    else if p >= 100.0 then s.max
    else begin
      let rank = p /. 100.0 *. float_of_int s.count in
      let result = ref s.max in
      (try
         let cum = ref 0 in
         for b = 0 to bucket_count - 1 do
           let n = s.buckets.(b) in
           if n > 0 then begin
             let cum' = !cum + n in
             if float_of_int cum' >= rank then begin
               let lo = bucket_lo s b and hi = bucket_hi s b in
               let lo = Float.min lo hi in
               let frac = (rank -. float_of_int !cum) /. float_of_int n in
               result := lo +. ((hi -. lo) *. frac);
               raise Exit
             end;
             cum := cum'
           end
         done
       with Exit -> ());
      !result
    end
end

(* ------------------------------------------------------------------ *)
(* Instruments and registry *)

type counter = { mutable c_v : int }

type gauge = { mutable g_v : float }

type byte_acc = { mutable b_count : int; mutable b_bytes : int }

(* Time series: explicit (virtual-time, value) samples kept in insertion
   order (newest first internally). *)
type series = { mutable s_rev : (float * float) list; mutable s_len : int }

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_bytes of byte_acc
  | I_hist of Hist.t
  | I_series of series

type arg = Str of string | Int of int | F of float

type phase =
  | Instant
  | Complete of float
  | Flow_start of int
  | Flow_step of int
  | Flow_finish of int

type event = {
  ts : float;
  node : int;
  layer : layer;
  name : string;
  phase : phase;
  args : (string * arg) list;
}

type t = {
  tbl : (key, instrument) Hashtbl.t;
  mutable clock : unit -> float;
  mutable on : bool;
  mutable events_rev : event list;
  mutable flow_ids : int;
}

let create ?(clock = fun () -> 0.0) () =
  { tbl = Hashtbl.create 64; clock; on = false; events_rev = []; flow_ids = 0 }

let set_clock t clock = t.clock <- clock

let now t = t.clock ()

let kind_error (key : key) =
  invalid_arg
    (Printf.sprintf "Obs: %s/%s/n%d already registered with another kind"
       (layer_name key.layer) key.name key.node)

let counter t ~node ~layer name =
  let key = { node; layer; name } in
  match Hashtbl.find_opt t.tbl key with
  | Some (I_counter c) -> c
  | Some _ -> kind_error key
  | None ->
    let c = { c_v = 0 } in
    Hashtbl.replace t.tbl key (I_counter c);
    c

let gauge t ~node ~layer name =
  let key = { node; layer; name } in
  match Hashtbl.find_opt t.tbl key with
  | Some (I_gauge g) -> g
  | Some _ -> kind_error key
  | None ->
    let g = { g_v = 0.0 } in
    Hashtbl.replace t.tbl key (I_gauge g);
    g

let byte_acc t ~node ~layer name =
  let key = { node; layer; name } in
  match Hashtbl.find_opt t.tbl key with
  | Some (I_bytes a) -> a
  | Some _ -> kind_error key
  | None ->
    let a = { b_count = 0; b_bytes = 0 } in
    Hashtbl.replace t.tbl key (I_bytes a);
    a

let histogram t ~node ~layer name =
  let key = { node; layer; name } in
  match Hashtbl.find_opt t.tbl key with
  | Some (I_hist h) -> h
  | Some _ -> kind_error key
  | None ->
    let h = Hist.create () in
    Hashtbl.replace t.tbl key (I_hist h);
    h

let series t ~node ~layer name =
  let key = { node; layer; name } in
  match Hashtbl.find_opt t.tbl key with
  | Some (I_series s) -> s
  | Some _ -> kind_error key
  | None ->
    let s = { s_rev = []; s_len = 0 } in
    Hashtbl.replace t.tbl key (I_series s);
    s

let series_observe s ~ts v =
  s.s_rev <- (ts, v) :: s.s_rev;
  s.s_len <- s.s_len + 1

let series_length s = s.s_len

let inc c = c.c_v <- c.c_v + 1

let add c n = c.c_v <- c.c_v + n

let value c = c.c_v

let set_gauge g v = g.g_v <- v

let add_gauge g v = g.g_v <- g.g_v +. v

let gauge_value g = g.g_v

let acc_bytes a n =
  a.b_count <- a.b_count + 1;
  a.b_bytes <- a.b_bytes + n

let acc_count a = a.b_count

let acc_total a = a.b_bytes

(* ------------------------------------------------------------------ *)
(* Queries *)

let counter_value t ~node ~layer name =
  match Hashtbl.find_opt t.tbl { node; layer; name } with
  | Some (I_counter c) -> c.c_v
  | Some _ | None -> 0

let sum_counters t ~layer name =
  Hashtbl.fold
    (fun (key : key) inst acc ->
      match inst with
      | I_counter c when key.layer = layer && String.equal key.name name ->
        acc + c.c_v
      | _ -> acc)
    t.tbl 0

let sum_gauges t ~layer name =
  (* Sum in key order: float addition order must be deterministic. *)
  let vs =
    Hashtbl.fold
      (fun (key : key) inst acc ->
        match inst with
        | I_gauge g when key.layer = layer && String.equal key.name name ->
          (key, g.g_v) :: acc
        | _ -> acc)
      t.tbl []
  in
  List.fold_left
    (fun acc (_, v) -> acc +. v)
    0.0
    (List.sort (fun (a, _) (b, _) -> compare_key a b) vs)

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type value_v =
  | Counter_v of int
  | Gauge_v of float
  | Bytes_v of { count : int; bytes : int }
  | Hist_v of Hist.snap
  | Series_v of (float * float) array

let series_samples (s : series) = Array.of_list (List.rev s.s_rev)

type snapshot = (key * value_v) list (* sorted by compare_key *)

let snapshot t =
  Hashtbl.fold
    (fun (key : key) inst acc ->
      let v =
        match inst with
        | I_counter c -> Counter_v c.c_v
        | I_gauge g -> Gauge_v g.g_v
        | I_bytes a -> Bytes_v { count = a.b_count; bytes = a.b_bytes }
        | I_hist h -> Hist_v (Hist.snap h)
        | I_series s -> Series_v (series_samples s)
      in
      (key, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let sub_value later earlier =
  match (later, earlier) with
  | Counter_v a, Counter_v b -> Counter_v (a - b)
  | Gauge_v a, Gauge_v b -> Gauge_v (a -. b)
  | Bytes_v a, Bytes_v b ->
    Bytes_v { count = a.count - b.count; bytes = a.bytes - b.bytes }
  | Hist_v a, Hist_v b ->
    Hist_v
      {
        Hist.count = a.Hist.count - b.Hist.count;
        sum = a.Hist.sum -. b.Hist.sum;
        min = a.Hist.min;
        max = a.Hist.max;
        buckets =
          Array.init Hist.bucket_count (fun i ->
              a.Hist.buckets.(i) - b.Hist.buckets.(i));
      }
  | Series_v a, Series_v b ->
    (* Samples are append-only, so "what happened since" is the suffix. *)
    let nb = Array.length b in
    let na = Array.length a in
    Series_v (if na >= nb then Array.sub a nb (na - nb) else [||])
  | _ -> invalid_arg "Obs.diff: instrument changed kind between snapshots"

let add_value a b =
  match (a, b) with
  | Counter_v x, Counter_v y -> Counter_v (x + y)
  | Gauge_v x, Gauge_v y -> Gauge_v (x +. y)
  | Bytes_v x, Bytes_v y ->
    Bytes_v { count = x.count + y.count; bytes = x.bytes + y.bytes }
  | Hist_v x, Hist_v y -> Hist_v (Hist.merge x y)
  | Series_v x, Series_v y ->
    let m = Array.append x y in
    (* Stable sort by timestamp: interleave two nodes' samples while
       keeping each node's insertion order within equal timestamps. *)
    Array.stable_sort (fun (ta, _) (tb, _) -> compare ta tb) m;
    Series_v m
  | _ -> invalid_arg "Obs.merge: mismatched instrument kinds"

(* Merge two key-sorted association lists with [combine] on collisions. *)
let rec merge_sorted combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb -> (
    match compare_key ka kb with
    | 0 -> (ka, combine va vb) :: merge_sorted combine ta tb
    | c when c < 0 -> (ka, va) :: merge_sorted combine ta b
    | _ -> (kb, vb) :: merge_sorted combine a tb)

let diff ~earlier later =
  let earlier_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace earlier_tbl k v) earlier;
  List.map
    (fun (k, v) ->
      match Hashtbl.find_opt earlier_tbl k with
      | None -> (k, v)
      | Some e -> (k, sub_value v e))
    later

let merge_snapshots a b = merge_sorted add_value a b

let find (snap : snapshot) ~node ~layer name =
  List.find_map
    (fun ((k : key), v) ->
      if k.node = node && k.layer = layer && String.equal k.name name then
        Some v
      else None)
    snap

let bindings snap = snap

let reset t =
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | I_counter c -> c.c_v <- 0
      | I_gauge g -> g.g_v <- 0.0
      | I_bytes a ->
        a.b_count <- 0;
        a.b_bytes <- 0
      | I_hist h -> Hist.reset h
      | I_series s ->
        s.s_rev <- [];
        s.s_len <- 0)
    t.tbl;
  t.events_rev <- [];
  t.flow_ids <- 0

(* ------------------------------------------------------------------ *)
(* Tracing *)

let set_tracing t b = t.on <- b

let tracing t = t.on

let next_flow_id t =
  t.flow_ids <- t.flow_ids + 1;
  t.flow_ids

let event ?(args = []) t ~node ~layer name =
  if t.on then
    t.events_rev <-
      { ts = t.clock (); node; layer; name; phase = Instant; args }
      :: t.events_rev

let event_at ?(args = []) t ~ts ~node ~layer name =
  if t.on then
    t.events_rev <- { ts; node; layer; name; phase = Instant; args } :: t.events_rev

let complete_at ?(args = []) t ~ts ~duration ~node ~layer name =
  if t.on then
    t.events_rev <-
      { ts; node; layer; name; phase = Complete duration; args }
      :: t.events_rev

let flow ?(args = []) t ~phase ~node ~layer name =
  if t.on then
    t.events_rev <- { ts = t.clock (); node; layer; name; phase; args } :: t.events_rev

let flow_start ?args t ~id = flow ?args t ~phase:(Flow_start id)

let flow_step ?args t ~id = flow ?args t ~phase:(Flow_step id)

let flow_finish ?args t ~id = flow ?args t ~phase:(Flow_finish id)

let span ?(args = []) t ~node ~layer name f =
  if not t.on then f ()
  else begin
    let start = t.clock () in
    let finish () =
      complete_at ~args t ~ts:start
        ~duration:(t.clock () -. start)
        ~node ~layer name
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let events t = List.rev t.events_rev

let clear_events t = t.events_rev <- []

(* ------------------------------------------------------------------ *)
(* Exporters *)

let json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Fixed float rendering so identical runs dump identical bytes; JSON has
   no infinities, so clamp empty-histogram extrema to 0. *)
let json_float b f =
  let f = if Float.is_nan f || f = infinity || f = neg_infinity then 0.0 else f in
  Buffer.add_string b (Printf.sprintf "%.9g" f)

let json_arg b = function
  | Str s -> json_string b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | F f -> json_float b f

let json_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      json_string b k;
      Buffer.add_char b ':';
      json_arg b v)
    args;
  Buffer.add_char b '}'

(* One Chrome trace_event object.  Nodes map to pids (global_node as a
   "cluster" pseudo-process), layers to tids. *)
let event_json b e =
  Buffer.add_string b "{\"name\":";
  json_string b e.name;
  Buffer.add_string b ",\"cat\":";
  json_string b (layer_name e.layer);
  (match e.phase with
  | Instant -> Buffer.add_string b ",\"ph\":\"i\",\"s\":\"t\""
  | Complete d ->
    Buffer.add_string b ",\"ph\":\"X\",\"dur\":";
    json_float b (d *. 1e6)
  | Flow_start id -> Buffer.add_string b (Printf.sprintf ",\"ph\":\"s\",\"id\":%d" id)
  | Flow_step id -> Buffer.add_string b (Printf.sprintf ",\"ph\":\"t\",\"id\":%d" id)
  | Flow_finish id ->
    (* bp:"e" binds the arrow head to the enclosing slice. *)
    Buffer.add_string b (Printf.sprintf ",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d" id));
  Buffer.add_string b ",\"ts\":";
  json_float b (e.ts *. 1e6);
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" e.node
                         (layer_index e.layer));
  if e.args <> [] then begin
    Buffer.add_string b ",\"args\":";
    json_args b e.args
  end;
  Buffer.add_char b '}'

let metadata_json b ~pid ~name =
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":"
       pid);
  json_string b name;
  Buffer.add_string b "}}"

let pp_chrome_trace ppf t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let evs = events t in
  (* Name the processes that appear: nodes and the cluster pseudo-node. *)
  let nodes =
    List.sort_uniq compare (List.map (fun e -> e.node) evs)
  in
  let first = ref true in
  let emit emit_fn =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_char b '\n';
    emit_fn ()
  in
  List.iter
    (fun n ->
      emit (fun () ->
          metadata_json b ~pid:n
            ~name:
              (if n = global_node then "cluster"
               else if n = profile_node then "host-profile"
               else Printf.sprintf "node %d" n)))
    nodes;
  List.iter (fun e -> emit (fun () -> event_json b e)) evs;
  Buffer.add_string b "\n]}\n";
  Format.pp_print_string ppf (Buffer.contents b)

let pp_trace_jsonl ppf t =
  List.iter
    (fun e ->
      let b = Buffer.create 256 in
      event_json b e;
      Format.pp_print_string ppf (Buffer.contents b);
      Format.pp_print_string ppf "\n")
    (events t)

let key_json b (k : key) =
  Buffer.add_string b (Printf.sprintf "{\"node\":%d,\"layer\":" k.node);
  json_string b (layer_name k.layer);
  Buffer.add_string b ",\"name\":";
  json_string b k.name

let pp_metrics_jsonl ppf (snap : snapshot) =
  List.iter
    (fun ((k : key), v) ->
      let b = Buffer.create 128 in
      key_json b k;
      (match v with
      | Counter_v n ->
        Buffer.add_string b (Printf.sprintf ",\"type\":\"counter\",\"value\":%d" n)
      | Gauge_v g ->
        Buffer.add_string b ",\"type\":\"gauge\",\"value\":";
        json_float b g
      | Bytes_v { count; bytes } ->
        Buffer.add_string b
          (Printf.sprintf ",\"type\":\"bytes\",\"count\":%d,\"bytes\":%d" count
             bytes)
      | Hist_v h ->
        Buffer.add_string b
          (Printf.sprintf ",\"type\":\"histogram\",\"count\":%d,\"sum\":"
             h.Hist.count);
        json_float b h.Hist.sum;
        Buffer.add_string b ",\"min\":";
        json_float b h.Hist.min;
        Buffer.add_string b ",\"max\":";
        json_float b h.Hist.max;
        Buffer.add_string b ",\"mean\":";
        json_float b (Hist.mean h)
      | Series_v samples ->
        Buffer.add_string b
          (Printf.sprintf ",\"type\":\"series\",\"count\":%d,\"samples\":["
             (Array.length samples));
        Array.iteri
          (fun i (ts, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '[';
            json_float b ts;
            Buffer.add_char b ',';
            json_float b v;
            Buffer.add_char b ']')
          samples;
        Buffer.add_char b ']');
      Buffer.add_char b '}';
      Format.pp_print_string ppf (Buffer.contents b);
      Format.pp_print_string ppf "\n")
    snap

let pp_metrics ppf (snap : snapshot) =
  List.iter
    (fun ((k : key), v) ->
      let node =
        if k.node = global_node then "  *" else Printf.sprintf "n%2d" k.node
      in
      Format.fprintf ppf "%s %-6s %-28s " node (layer_name k.layer) k.name;
      (match v with
      | Counter_v n -> Format.fprintf ppf "%d" n
      | Gauge_v g -> Format.fprintf ppf "%.6f" g
      | Bytes_v { count; bytes } ->
        Format.fprintf ppf "%d msgs, %d bytes" count bytes
      | Hist_v h ->
        Format.fprintf ppf "n=%d mean=%.6f p50=%.6f p95=%.6f" h.Hist.count
          (Hist.mean h)
          (Hist.percentile h 50.0)
          (Hist.percentile h 95.0)
      | Series_v samples ->
        let n = Array.length samples in
        if n = 0 then Format.fprintf ppf "series n=0"
        else
          let t0, v0 = samples.(0) and t1, v1 = samples.(n - 1) in
          Format.fprintf ppf "series n=%d %.3f:%.0f .. %.3f:%.0f" n t0 v0 t1
            v1);
      Format.fprintf ppf "@.")
    snap
