(** Host-time (wall-clock) profiler for the engine hot path.

    Measures real seconds with [Unix.gettimeofday] around the simulator's
    hottest operations — event execution, heap ops, fiber spawn/resume,
    ivar wakeups, vm fault handling — to give the engine-overhaul work
    (ROADMAP item 2) its baseline.

    The profile is domain-local mutable state, disabled by default (one
    domain-local read and one branch per probe when off), so concurrent
    simulations in separate domains never race on the accumulators.
    Because wall-clock numbers are nondeterministic
    they are never written into the {!Obs} metrics registry; drivers
    export them as a separate [--profile] section ({!pp}, {!pp_jsonl})
    and optionally as Chrome trace slices on the [host-profile]
    pseudo-process ({!to_obs}).

    Categories nest: [Event] encloses the fiber work it runs, and
    [Vm_fault] spans are {e inclusive} of virtual-time suspension (the
    effect handler captures the timing frame inside the continuation), so
    summing categories double-counts — compare each against [Run]. *)

type category =
  | Run  (** one whole [Engine.run] *)
  | Event  (** one scheduled thunk (encloses fiber work it triggers) *)
  | Heap_push  (** [Engine.schedule] heap insertion *)
  | Heap_pop  (** event-queue pop in the run loop *)
  | Fiber_spawn  (** first slice of a new fiber *)
  | Fiber_resume  (** continuation resume after Delay/Suspend *)
  | Ivar_wakeup  (** waking all waiters of a filled ivar *)
  | Vm_fault  (** fault handler, inclusive of suspension *)

val all : category list

val name : category -> string

(** True for categories whose spans overlap other fibers' execution
    (currently [Vm_fault]); their seconds must not be summed. *)
val inclusive : category -> bool

val set_enabled : bool -> unit

val enabled : unit -> bool

(** Zero all counts and times. *)
val reset : unit -> unit

(** [start ()] returns a wall-clock timestamp when enabled, [0.] when
    disabled.  Pair with {!stop}. *)
val start : unit -> float

(** [stop cat t0] adds one observation of [now - t0] seconds to [cat]
    (no-op when disabled). *)
val stop : category -> float -> unit

(** Count-only probe (no timing). *)
val tick : category -> unit

type sample = { category : string; count : int; seconds : float }

val snapshot : unit -> sample list

(** Human-readable table (only categories with nonzero counts). *)
val pp : Format.formatter -> unit -> unit

(** One JSON line per category with ["type":"profile"], appended to
    [--metrics-json] output after the deterministic metrics lines. *)
val pp_jsonl : Format.formatter -> unit -> unit

(** Mirror the aggregate profile into [obs]'s trace buffer as Complete
    slices on the [host-profile] pseudo-process (requires tracing to be
    enabled on [obs]). *)
val to_obs : Obs.t -> unit
