(** Wire-byte taxonomy: attributes every simulated wire byte to one
    protocol component, so the scaling report can plot per-component
    growth curves and the auditor can enforce conservation.

    The conservation invariant — checked per run — is

    {[ Cost.total obs = medium.bytes + datagram.dropped_bytes ]}

    i.e. the component counters jointly account for every byte the
    medium carried plus every byte lost to datagram drops (dropped
    frames are attributed when sent, but never reach the medium). *)

type component =
  | Vc_entries  (** vector-clock / logical-ordering metadata *)
  | Write_notices  (** interval ids + per-interval write-notice lists *)
  | Diff_payload  (** encoded page diffs and page/diff fetch traffic *)
  | Ack  (** sliding-window cumulative ack frames *)
  | Lock_proto  (** lock and semaphore protocol messages *)
  | Barrier_proto  (** barrier protocol messages *)
  | Gc_proto  (** GC rendezvous traffic *)
  | App_payload  (** application-level message bodies (default class) *)
  | Am_header  (** active-message header, 16 bytes per message *)
  | Frame_header  (** Eth+IP+UDP header, 42 bytes per frame *)
  | Retransmit  (** sliding-window head-of-line retransmissions *)

(** All components, in {!index} order. *)
val all : component list

val count : int

val index : component -> int

(** Stable short name, used as the [cost.<name>] counter suffix and as
    the JSON key in bench reports. *)
val name : component -> string

val counter_name : component -> string

(** A handle over the shared per-registry component counters (registered
    idempotently at [Obs.global_node], layer [Net]). *)
type t

val create : Obs.t -> t

(** [add t c n] attributes [n] bytes to component [c].  No-op when
    [n = 0]. *)
val add : t -> component -> int -> unit

(** Current value of one component counter (0 if never registered). *)
val read : Obs.t -> component -> int

(** Sum of all component counters. *)
val total : Obs.t -> int

val breakdown : Obs.t -> (component * int) list

(** Right-hand side of the conservation equation:
    [medium.bytes + datagram.dropped_bytes]. *)
val wire_total : Obs.t -> int

(** [conserved obs] is [total obs = wire_total obs]. *)
val conserved : Obs.t -> bool

val pp : Format.formatter -> Obs.t -> unit
