type kind = Lrc | Central | Seq

let kind_of_string = function
  | "lrc" -> Ok Lrc
  | "central" -> Ok Central
  | "seq" -> Ok Seq
  | s -> Error (Printf.sprintf "unknown backend %S (expected lrc|central|seq)" s)

let kind_to_string = function Lrc -> "lrc" | Central -> "central" | Seq -> "seq"

let all_kinds = [ Lrc; Central; Seq ]

(* Conformance checks: each model must satisfy the backend signature.
   LRC predates it and keeps its historical surface (richer stats record,
   always-piggybacked request clock), so it gets a thin adapter; the two
   new models implement the signature natively. *)

let lrc_request_vc b = Some (Vc.copy (Lrc_backend.vc b))

let lrc_backend_stats b =
  let s = Lrc_backend.stats b in
  {
    Backend_intf.diffs_created = s.diffs_created;
    diffs_applied = s.diffs_applied;
    data_fetches = s.diff_requests + s.interval_fetches + s.page_fetches;
    page_fetches = s.page_fetches;
    bytes_fetched = s.diff_bytes_fetched;
  }

module _ : Backend_intf.S = struct
  include Lrc_backend

  let request_vc = lrc_request_vc

  let backend_stats = lrc_backend_stats
end

module _ : Backend_intf.S = Central_backend
module _ : Backend_intf.S = Seq_backend

type t =
  | Lrc_b of Lrc_backend.t
  | Central_b of Central_backend.t
  | Seq_b of Seq_backend.t

type piggyback =
  | Lrc_pb of Lrc_backend.piggyback
  | Central_pb of Central_backend.piggyback
  | Seq_pb of Seq_backend.piggyback

let kind = function Lrc_b _ -> Lrc | Central_b _ -> Central | Seq_b _ -> Seq

let me = function
  | Lrc_b b -> Lrc_backend.me b
  | Central_b b -> Central_backend.me b
  | Seq_b b -> Seq_backend.me b

let vc = function
  | Lrc_b b -> Lrc_backend.vc b
  | Central_b b -> Central_backend.vc b
  | Seq_b b -> Seq_backend.vc b

let make_piggyback t ~receiver ~nontransitive =
  match t with
  | Lrc_b b -> Lrc_pb (Lrc_backend.make_piggyback b ~receiver ~nontransitive)
  | Central_b b ->
    Central_pb (Central_backend.make_piggyback b ~receiver ~nontransitive)
  | Seq_b b -> Seq_pb (Seq_backend.make_piggyback b ~receiver ~nontransitive)

let wrong_model () =
  invalid_arg "Backend.accept: piggyback from a different consistency model"

let accept t pbs =
  match t with
  | Lrc_b b ->
    Lrc_backend.accept b
      (List.map (function Lrc_pb pb -> pb | _ -> wrong_model ()) pbs)
  | Central_b b ->
    Central_backend.accept b
      (List.map (function Central_pb pb -> pb | _ -> wrong_model ()) pbs)
  | Seq_b b ->
    Seq_backend.accept b
      (List.map (function Seq_pb pb -> pb | _ -> wrong_model ()) pbs)

let piggyback_size_bytes = function
  | Lrc_pb pb -> Lrc_backend.piggyback_size_bytes pb
  | Central_pb pb -> Central_backend.piggyback_size_bytes pb
  | Seq_pb pb -> Seq_backend.piggyback_size_bytes pb

let piggyback_cost = function
  | Lrc_pb pb -> Lrc_backend.piggyback_cost pb
  | Central_pb pb -> Central_backend.piggyback_cost pb
  | Seq_pb pb -> Seq_backend.piggyback_cost pb

let request_vc = function
  | Lrc_b b -> lrc_request_vc b
  | Central_b b -> Central_backend.request_vc b
  | Seq_b b -> Seq_backend.request_vc b

let note_peer_vc t ~peer vc =
  match t with
  | Lrc_b b -> Lrc_backend.note_peer_vc b ~peer vc
  | Central_b b -> Central_backend.note_peer_vc b ~peer vc
  | Seq_b b -> Seq_backend.note_peer_vc b ~peer vc

let metadata_pressure = function
  | Lrc_b b -> Lrc_backend.metadata_pressure b
  | Central_b b -> Central_backend.metadata_pressure b
  | Seq_b b -> Seq_backend.metadata_pressure b

let validate_all = function
  | Lrc_b b -> Lrc_backend.validate_all b
  | Central_b b -> Central_backend.validate_all b
  | Seq_b b -> Seq_backend.validate_all b

let discard_before t snapshot =
  match t with
  | Lrc_b b -> Lrc_backend.discard_before b snapshot
  | Central_b b -> Central_backend.discard_before b snapshot
  | Seq_b b -> Seq_backend.discard_before b snapshot

let backend_stats = function
  | Lrc_b b -> lrc_backend_stats b
  | Central_b b -> Central_backend.backend_stats b
  | Seq_b b -> Seq_backend.backend_stats b
