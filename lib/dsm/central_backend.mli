(** Centralized-coordinator strongly-consistent store.

    The contrast backend at the opposite end of the consistency spectrum
    from {!Lrc_backend}: one {e home} node holds the authoritative copy of
    every coherent page and serializes all updates (the CA design of
    SNIPPETS.md Snippet 1, where node 0 receives every read and write).
    Pages are never replicated writable — a node's local writes are
    private twins until the next synchronization point, when they are
    flushed to the home node as diffs over one blocking RPC.

    Protocol, per node:

    - {b write fault}: twin the page and mark it dirty (the only local
      state a node accumulates);
    - {b release} ({!make_piggyback}): flush every dirty page's diff to
      the home node; the piggyback itself is just an origin marker — all
      ordering lives at home;
    - {b acquire} ({!accept}): flush own dirty pages (a barrier manager
      reaches this point without ever sending a release), then invalidate
      {e every} locally cached page, so every post-acquire read refetches
      the home node's current copy;
    - {b read fault}: fetch the whole page from home (with its version,
      for the auditor's freshness invariant) and install it.

    For data-race-free programs this yields sequential consistency: all
    writes are serialized by home-application order, and no stale copy
    survives an acquire.  The price is exactly what the paper's design
    avoids — every synchronization invalidates wholesale and every working
    -set page costs a full-page round trip to one hot node. *)

type t

exception Protocol_violation of string

(** Consistency information on a RELEASE/RELEASE_NT: only the origin —
    the data already reached home before the message was sent. *)
type piggyback = { origin : int }

type transport = {
  fetch_page : page:int -> Bytes.t * int;
      (** blocking RPC to home; answered by {!serve_page} *)
  flush : Carlos_vm.Diff.t list -> unit;
      (** blocking RPC to home; answered by {!serve_flush} *)
}

(** [create ~nodes ~me ~home ~page_table ~costs ~charge ()] — [home] is
    the coordinator node (conventionally 0).  Installs the fault handlers
    on [page_table].  The home node needs no transport; every other node
    must get one via {!set_transport}. *)
val create :
  ?obs:Carlos_obs.Obs.t ->
  nodes:int ->
  me:int ->
  home:int ->
  page_table:Carlos_vm.Page_table.t ->
  costs:Cost.t ->
  charge:(float -> unit) ->
  unit ->
  t

val set_transport : t -> transport -> unit

val me : t -> int

val home : t -> int

(** {1 Audit hooks} *)

type hooks = {
  on_flush_applied : home:int -> origin:int -> page:int -> version:int -> unit;
      (** the home node applied one flushed diff of [origin] to [page],
          raising it to [version] *)
  on_page_fetched : node:int -> page:int -> version:int -> unit;
      (** [node] installed home's copy of [page] at [version] *)
  on_sync : node:int -> invalidated:int -> unit;
      (** [node] completed an acquire, invalidating [invalidated] cached
          pages *)
}

val no_hooks : hooks

val set_hooks : t -> hooks -> unit

(** {1 Backend interface} (see {!Backend_intf.S}) *)

val vc : t -> Vc.t

val make_piggyback : t -> receiver:int -> nontransitive:bool -> piggyback

val accept : t -> piggyback list -> unit

val piggyback_size_bytes : piggyback -> int

val piggyback_cost : piggyback -> (Carlos_obs.Cost.component * int) list

val request_vc : t -> Vc.t option

val note_peer_vc : t -> peer:int -> Vc.t -> unit

val metadata_pressure : t -> int

val validate_all : t -> unit

val discard_before : t -> Vc.t -> unit

val backend_stats : t -> Backend_intf.stats

(** {1 Serving remote requests (home node, interrupt level)} *)

(** Answer a page fetch with the live authoritative copy and its
    version. *)
val serve_page : t -> page:int -> Bytes.t * int

(** Apply a batch of flushed diffs from [origin] to the authoritative
    copies. *)
val serve_flush : t -> origin:int -> Carlos_vm.Diff.t list -> unit
