(* Centralized-coordinator strongly-consistent store: one home node holds
   the authoritative copy of every page; everyone else caches read-only
   copies that die at the next acquire.  See central_backend.mli. *)

module Page = Carlos_vm.Page
module Page_table = Carlos_vm.Page_table
module Diff = Carlos_vm.Diff
module Obs = Carlos_obs.Obs
module Ivar = Carlos_sim.Resource.Ivar

exception Protocol_violation of string

type piggyback = { origin : int }

type transport = {
  fetch_page : page:int -> Bytes.t * int;
  flush : Carlos_vm.Diff.t list -> unit;
}

type hooks = {
  on_flush_applied : home:int -> origin:int -> page:int -> version:int -> unit;
  on_page_fetched : node:int -> page:int -> version:int -> unit;
  on_sync : node:int -> invalidated:int -> unit;
}

let no_hooks =
  {
    on_flush_applied = (fun ~home:_ ~origin:_ ~page:_ ~version:_ -> ());
    on_page_fetched = (fun ~node:_ ~page:_ ~version:_ -> ());
    on_sync = (fun ~node:_ ~invalidated:_ -> ());
  }

type ins = {
  diffs_created_c : Obs.counter;
  diffs_applied_c : Obs.counter;
  flush_rpcs_c : Obs.counter;
  page_fetches_c : Obs.counter;
  bytes_fetched_c : Obs.counter;
  invalidations_c : Obs.counter;
}

type t = {
  nodes : int;
  me : int;
  home : int;
  page_table : Page_table.t;
  costs : Cost.t;
  charge : float -> unit;
  (* All nodes share one zero clock: this model has no vector time. *)
  zero_vc : Vc.t;
  dirty : bool array;
  (* Home only: authoritative per-page version, bumped once per applied
     flush diff (and per own-write flush). *)
  versions : int array;
  (* Per-page fetch gates: concurrent fibers faulting on one page wait on
     the first fetch instead of issuing duplicates (whose out-of-order
     installs could clobber a twin made in between). *)
  inflight : (int, unit Ivar.t) Hashtbl.t;
  mutable transport : transport option;
  mutable hooks : hooks;
  ins : ins;
}

let create ?obs ~nodes ~me ~home ~page_table ~costs ~charge () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let counter name = Obs.counter obs ~node:me ~layer:Obs.Dsm name in
  let t =
    {
      nodes;
      me;
      home;
      page_table;
      costs;
      charge;
      zero_vc = Vc.zero ~nodes;
      dirty = Array.make (Page_table.pages page_table) false;
      versions = Array.make (Page_table.pages page_table) 0;
      inflight = Hashtbl.create 16;
      transport = None;
      hooks = no_hooks;
      ins =
        {
          diffs_created_c = counter "central.diffs_created";
          diffs_applied_c = counter "central.diffs_applied";
          flush_rpcs_c = counter "central.flush_rpcs";
          page_fetches_c = counter "central.page_fetches";
          bytes_fetched_c = counter "central.bytes_fetched";
          invalidations_c = counter "central.invalidations";
        };
    }
  in
  let rec fetch_if_invalid page =
    let p = Page_table.page t.page_table page in
    if Page.state p = Page.Invalid then
      match Hashtbl.find_opt t.inflight page with
      | Some gate ->
        Ivar.read gate;
        fetch_if_invalid page
      | None ->
        let transport =
          match t.transport with
          | Some tr -> tr
          | None ->
            raise (Protocol_violation "central: transport not installed")
        in
        let gate = Ivar.create () in
        Hashtbl.replace t.inflight page gate;
        let finish () =
          Hashtbl.remove t.inflight page;
          Ivar.fill gate ()
        in
        (try
           let data, version = transport.fetch_page ~page in
           Obs.inc t.ins.page_fetches_c;
           Obs.add t.ins.bytes_fetched_c (Bytes.length data);
           Page.install p data;
           t.hooks.on_page_fetched ~node:t.me ~page ~version;
           t.charge
             ((t.costs.Cost.twin_per_byte
              *. float_of_int (Bytes.length data))
             +. t.costs.Cost.page_protect)
         with e ->
           finish ();
           raise e);
        finish ()
  in
  Page_table.set_read_fault page_table (fun page ->
      if t.me = t.home then
        raise
          (Protocol_violation
             (Printf.sprintf "home node took a read fault on page %d" page));
      t.charge t.costs.Cost.fault_trap;
      fetch_if_invalid page);
  Page_table.set_write_fault page_table (fun page ->
      let p = Page_table.page t.page_table page in
      (* ensure_writable faults Invalid pages readable first, so the page
         is Read_only here.  Twin + dirty before charging: charges yield
         the fiber and a concurrent flush must see a consistent pair. *)
      Page.make_twin p;
      t.dirty.(page) <- true;
      t.charge
        (t.costs.Cost.fault_trap
        +. (t.costs.Cost.twin_per_byte
           *. float_of_int (Bytes.length (Page.data p)))
        +. t.costs.Cost.page_protect));
  t

let set_transport t tr = t.transport <- Some tr

let set_hooks t hooks = t.hooks <- hooks

let me t = t.me

let home t = t.home

let vc t = t.zero_vc

let request_vc _ = None

let note_peer_vc _ ~peer:_ _ = ()

let metadata_pressure _ = 0

let discard_before _ _ = ()

let piggyback_size_bytes (_ : piggyback) = 4

(* The origin id is ordering metadata: bill it as vc_entries so the
   cross-model comparison has the centralized model's "logical clock"
   cost on the same axis as LRC's vector time. *)
let piggyback_cost (_ : piggyback) = [ (Carlos_obs.Cost.Vc_entries, 4) ]

(* ------------------------------------------------------------------ *)
(* Home side (interrupt level, non-blocking except CPU charges) *)

let bump_version t ~origin page =
  t.versions.(page) <- t.versions.(page) + 1;
  t.hooks.on_flush_applied ~home:t.me ~origin ~page
    ~version:t.versions.(page)

let serve_page t ~page =
  if t.me <> t.home then
    raise (Protocol_violation "central: serve_page on a non-home node");
  (* The live frame is the authoritative copy, whether or not the home
     node itself holds an open twin on it. *)
  let p = Page_table.page t.page_table page in
  (Bytes.copy (Page.data p), t.versions.(page))

let serve_flush t ~origin diffs =
  if t.me <> t.home then
    raise (Protocol_violation "central: serve_flush on a non-home node");
  let changed = ref 0 in
  List.iter
    (fun diff ->
      let page = Diff.page diff in
      let p = Page_table.page t.page_table page in
      (* Patch the twin as well when the home node has its own open writes
         on the page, so its next flush does not republish these bytes. *)
      Page.apply_diff_to_twin p diff;
      changed := !changed + Diff.changed_bytes diff;
      Obs.inc t.ins.diffs_applied_c;
      bump_version t ~origin page)
    diffs;
  t.charge
    ((t.costs.Cost.diff_data_per_byte *. float_of_int !changed)
    +. t.costs.Cost.diff_request_fixed)

(* ------------------------------------------------------------------ *)
(* Flushing *)

(* Encode every dirty page's modifications and hand them to home.  The
   dirty set is snapshotted and cleared before any charge: charges yield
   the fiber, and a concurrent writer re-dirtying a page must keep its
   flag for the next flush rather than be lost. *)
let flush_dirty t =
  let pages = ref [] in
  Array.iteri
    (fun page d ->
      if d then begin
        t.dirty.(page) <- false;
        pages := page :: !pages
      end)
    t.dirty;
  let diffs =
    List.filter_map
      (fun page ->
        let p = Page_table.page t.page_table page in
        let encoded = ref [] in
        (* A charge below may yield to a fiber that re-twins the page;
           loop until it is clean at this instant. *)
        while Page.state p = Page.Read_write do
          let diff = Page.encode_diff p ~page_index:page in
          Obs.inc t.ins.diffs_created_c;
          t.charge
            ((t.costs.Cost.diff_scan_per_byte
             *. float_of_int (Bytes.length (Page.data p)))
            +. (t.costs.Cost.diff_data_per_byte
               *. float_of_int (Diff.changed_bytes diff))
            +. t.costs.Cost.page_protect);
          if not (Diff.is_empty diff) then encoded := diff :: !encoded
        done;
        match List.rev !encoded with
        | [] -> None
        | [ d ] -> Some d
        | ds -> Some (Diff.merge ds))
      (List.rev !pages)
  in
  if diffs <> [] then
    if t.me = t.home then
      (* The home node's writes are already in the authoritative frames;
         flushing just retires the twins and advances the versions. *)
      List.iter
        (fun diff ->
          Obs.inc t.ins.diffs_applied_c;
          bump_version t ~origin:t.me (Diff.page diff))
        diffs
    else begin
      let transport =
        match t.transport with
        | Some tr -> tr
        | None -> raise (Protocol_violation "central: transport not installed")
      in
      Obs.inc t.ins.flush_rpcs_c;
      transport.flush diffs
    end

(* ------------------------------------------------------------------ *)
(* Release / acquire *)

let make_piggyback t ~receiver:_ ~nontransitive:_ =
  flush_dirty t;
  { origin = t.me }

let invalidate_cached t =
  if t.me = t.home then 0
  else begin
    let n = ref 0 in
    for page = 0 to Page_table.pages t.page_table - 1 do
      let p = Page_table.page t.page_table page in
      (* flush_dirty just ran, so no page is Read_write unless a
         concurrent fiber re-twinned it mid-charge; such a page carries
         fresh local writes and will flush (and die) at the next sync. *)
      if Page.state p = Page.Read_only then begin
        Page.invalidate p;
        incr n
      end
    done;
    !n
  end

let accept t pbs =
  if pbs <> [] then begin
    (* A barrier manager reaches its own fall without sending a release:
       its writes flush here, before the wholesale invalidation below
       (which requires clean pages anyway). *)
    flush_dirty t;
    let invalidated = invalidate_cached t in
    Obs.add t.ins.invalidations_c invalidated;
    t.hooks.on_sync ~node:t.me ~invalidated;
    if invalidated > 0 then
      t.charge (t.costs.Cost.page_protect *. float_of_int invalidated)
  end

let validate_all t =
  (* Bring every invalid page current (GC rendezvous support; the
     metadata GC never triggers for this model, but the operation is
     still meaningful). *)
  if t.me <> t.home then
    for page = 0 to Page_table.pages t.page_table - 1 do
      Page_table.ensure_readable t.page_table page
    done

let backend_stats t =
  {
    Backend_intf.diffs_created = Obs.value t.ins.diffs_created_c;
    diffs_applied = Obs.value t.ins.diffs_applied_c;
    data_fetches =
      Obs.value t.ins.flush_rpcs_c + Obs.value t.ins.page_fetches_c;
    page_fetches = Obs.value t.ins.page_fetches_c;
    bytes_fetched = Obs.value t.ins.bytes_fetched_c;
  }
