(** The DSM backend signature: what a memory-consistency model must
    provide to plug into the CarlOS message layer.

    One backend instance runs per node.  A backend owns the node's
    consistency metadata and installs itself as the fault handler of the
    node's page table at creation time (fault handling); the message layer
    drives it at synchronization points:

    - {b release}: {!S.make_piggyback} builds the consistency information
      appended to an outgoing RELEASE / RELEASE_NT message (for LRC the
      closed interval descriptions; for the centralized store a flush
      marker; for the sequencer store a global-order horizon);
    - {b acquire / barrier participation}: {!S.accept} performs the
      consistency actions of one or more accepted messages at once — the
      batch form is how a barrier manager accepts the union of stored
      arrivals;
    - {b GC hook}: {!S.metadata_pressure} / {!S.validate_all} /
      {!S.discard_before} let the global metadata collector size, force
      and prune a backend's history (models with no lazy metadata report
      zero pressure and treat the rest as no-ops);
    - {b stats}: {!S.backend_stats} is the model-independent counter
      aggregate the run report is built from.

    The three implementations are {!Lrc_backend} (lazy release
    consistency, the paper's protocol), {!Central_backend} (one home node
    serializes everything — strongly consistent, maximally chatty) and
    {!Seq_backend} (a sequencer stamps every write into one total order
    and replicas apply pushes in stamp order).  {!Backend} packs them
    behind one dispatch type. *)

(** Model-independent protocol counters (each model also keeps richer
    private counters in the observability registry). *)
type stats = {
  diffs_created : int;  (** diffs encoded locally (twin comparisons) *)
  diffs_applied : int;  (** foreign diffs applied to local frames *)
  data_fetches : int;
      (** blocking data round trips: LRC diff requests, central flush /
          page RPCs, sequencer write RPCs *)
  page_fetches : int;  (** whole-page transfers *)
  bytes_fetched : int;  (** payload bytes moved by those fetches *)
}

let zero_stats =
  {
    diffs_created = 0;
    diffs_applied = 0;
    data_fetches = 0;
    page_fetches = 0;
    bytes_fetched = 0;
  }

module type S = sig
  type t

  (** Model-specific consistency information carried by a RELEASE or
      RELEASE_NT message. *)
  type piggyback

  val me : t -> int

  (** The node's vector timestamp.  Models that do not use vector time
      return a constant zero clock (the auditor's clock invariants then
      hold trivially). *)
  val vc : t -> Vc.t

  (** {b Release hook.}  Build the consistency information for a RELEASE
      ([nontransitive:false]) or RELEASE_NT ([nontransitive:true]) to
      [receiver].  Publishes the node's writes as the model requires
      (closing an interval, flushing to the home node, routing diffs
      through the sequencer); may block on the wire. *)
  val make_piggyback : t -> receiver:int -> nontransitive:bool -> piggyback

  (** {b Acquire hook / barrier participation.}  Perform the acquire side
      for a batch of accepted messages (several when a barrier manager
      accepts all stored arrivals at once).  On return the node is
      consistent with every sender as the model defines it.  May block. *)
  val accept : t -> piggyback list -> unit

  (** Wire size of the consistency information. *)
  val piggyback_size_bytes : piggyback -> int

  (** Decomposition of {!piggyback_size_bytes} into cost-taxonomy
      components.  Must sum exactly to the wire size — the conservation
      invariant (see {!Carlos_obs.Cost}) is checked against it. *)
  val piggyback_cost : piggyback -> (Carlos_obs.Cost.component * int) list

  (** The clock to piggyback on an outgoing REQUEST message, or [None]
      when the model has no use for peer timestamps (the message then
      stays small and the receive path skips the clock charge). *)
  val request_vc : t -> Vc.t option

  (** Record knowledge about a peer gained outside accept (REQUEST
      piggybacks, served fetches).  No-op for models without tailoring. *)
  val note_peer_vc : t -> peer:int -> Vc.t -> unit

  (** {1 GC hook} *)

  (** Rough bytes of consistency metadata held.  Models with no lazy
      metadata return 0 and are never collected. *)
  val metadata_pressure : t -> int

  (** Bring every stale local page up to date (blocking). *)
  val validate_all : t -> unit

  (** Discard metadata dominated by [snapshot] after a global
      rendezvous. *)
  val discard_before : t -> Vc.t -> unit

  (** {1 Stats} *)

  val backend_stats : t -> stats
end
