(** Backend dispatch: the three consistency models behind one value type.

    Each model satisfies {!Backend_intf.S} (checked by signature
    constraints in the implementation); this module packs an instance of
    any of them into one [t] so the message layer ({!Carlos.Node},
    {!Carlos.System}) is model-independent.  Piggybacks are tagged with
    their model: mixing models inside one cluster is a configuration
    error and {!accept} rejects a piggyback of a foreign model. *)

(** Which consistency model a cluster runs. *)
type kind =
  | Lrc  (** lazy release consistency — the paper's protocol *)
  | Central  (** centralized-coordinator sequentially-consistent store *)
  | Seq  (** sequencer-stamped totally-ordered store *)

val kind_of_string : string -> (kind, string) result

val kind_to_string : kind -> string

val all_kinds : kind list

type t =
  | Lrc_b of Lrc_backend.t
  | Central_b of Central_backend.t
  | Seq_b of Seq_backend.t

type piggyback =
  | Lrc_pb of Lrc_backend.piggyback
  | Central_pb of Central_backend.piggyback
  | Seq_pb of Seq_backend.piggyback

val kind : t -> kind

val me : t -> int

val vc : t -> Vc.t

val make_piggyback : t -> receiver:int -> nontransitive:bool -> piggyback

(** Raises [Invalid_argument] on a piggyback of a different model than
    the backend. *)
val accept : t -> piggyback list -> unit

val piggyback_size_bytes : piggyback -> int

val piggyback_cost : piggyback -> (Carlos_obs.Cost.component * int) list

val request_vc : t -> Vc.t option

val note_peer_vc : t -> peer:int -> Vc.t -> unit

val metadata_pressure : t -> int

val validate_all : t -> unit

val discard_before : t -> Vc.t -> unit

val backend_stats : t -> Backend_intf.stats
