(* Sequencer-based totally-ordered store: node [sequencer] stamps every
   write batch and CAS into one global order and pushes the stamped
   updates to every replica, which applies them in stamp order.  See
   seq_backend.mli. *)

module Page = Carlos_vm.Page
module Page_table = Carlos_vm.Page_table
module Diff = Carlos_vm.Diff
module Obs = Carlos_obs.Obs
module Ivar = Carlos_sim.Resource.Ivar

exception Protocol_violation of string

type update =
  | Diff_u of Carlos_vm.Diff.t
  | Patch_u of { page : int; offset : int; data : Bytes.t }

type entry = { seq : int; origin : int; update : update }

type piggyback = { origin : int; upto : int }

type transport = {
  sequence : Carlos_vm.Diff.t list -> int;
  cas : page:int -> offset:int -> expected:int -> desired:int -> bool * int;
}

type hooks = {
  on_stamped : seq:int -> origin:int -> unit;
  on_applied : node:int -> seq:int -> origin:int -> unit;
  on_acquire : node:int -> upto:int -> applied:int -> unit;
}

let no_hooks =
  {
    on_stamped = (fun ~seq:_ ~origin:_ -> ());
    on_applied = (fun ~node:_ ~seq:_ ~origin:_ -> ());
    on_acquire = (fun ~node:_ ~upto:_ ~applied:_ -> ());
  }

type ins = {
  diffs_created_c : Obs.counter;
  diffs_applied_c : Obs.counter;
  sequence_rpcs_c : Obs.counter;
  cas_rpcs_c : Obs.counter;
  stamps_c : Obs.counter;
  pushed_entries_c : Obs.counter;
  update_bytes_c : Obs.counter;
}

type t = {
  nodes : int;
  me : int;
  sequencer : int;
  page_table : Page_table.t;
  costs : Cost.t;
  charge : float -> unit;
  (* All nodes share one zero clock: this model has no vector time. *)
  zero_vc : Vc.t;
  dirty : bool array;
  (* Sequencer only: last stamp assigned, plus a cooperative mutex so
     stamp order equals per-destination push order even when the
     dispatcher fiber and local application fibers interleave at charge
     points. *)
  mutable next_seq : int;
  mutable seq_busy : bool;
  seq_queue : unit Ivar.t Queue.t;
  (* Every node: highest stamp applied locally, the causal horizon
     carried on outgoing releases, and acquirers parked until the
     applied stamp reaches their needed horizon. *)
  mutable applied_seq : int;
  mutable horizon : int;
  mutable acq_waiters : (int * unit Ivar.t) list;
  mutable transport : transport option;
  mutable push : (dst:int -> entry list -> unit) option;
  mutable hooks : hooks;
  ins : ins;
}

let create ?obs ~nodes ~me ~sequencer ~page_table ~costs ~charge () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let counter name = Obs.counter obs ~node:me ~layer:Obs.Dsm name in
  let t =
    {
      nodes;
      me;
      sequencer;
      page_table;
      costs;
      charge;
      zero_vc = Vc.zero ~nodes;
      dirty = Array.make (Page_table.pages page_table) false;
      next_seq = 0;
      seq_busy = false;
      seq_queue = Queue.create ();
      applied_seq = 0;
      horizon = 0;
      acq_waiters = [];
      transport = None;
      push = None;
      hooks = no_hooks;
      ins =
        {
          diffs_created_c = counter "seq.diffs_created";
          diffs_applied_c = counter "seq.diffs_applied";
          sequence_rpcs_c = counter "seq.sequence_rpcs";
          cas_rpcs_c = counter "seq.cas_rpcs";
          stamps_c = counter "seq.stamps";
          pushed_entries_c = counter "seq.pushed_entries";
          update_bytes_c = counter "seq.update_bytes";
        };
    }
  in
  Page_table.set_read_fault page_table (fun page ->
      (* Every node holds a full replica that is only ever updated in
         place; no page is ever invalidated in this model. *)
      raise
        (Protocol_violation
           (Printf.sprintf "seq: read fault on page %d (never invalidated)"
              page)));
  Page_table.set_write_fault page_table (fun page ->
      let p = Page_table.page t.page_table page in
      (* Twin + dirty before charging: charges yield the fiber and a
         concurrent flush must see a consistent pair. *)
      Page.make_twin p;
      t.dirty.(page) <- true;
      t.charge
        (t.costs.Cost.fault_trap
        +. (t.costs.Cost.twin_per_byte
           *. float_of_int (Bytes.length (Page.data p)))
        +. t.costs.Cost.page_protect));
  t

let set_transport t tr = t.transport <- Some tr

let set_push t push = t.push <- Some push

let set_hooks t hooks = t.hooks <- hooks

let me t = t.me

let sequencer t = t.sequencer

let applied_seq t = t.applied_seq

let vc t = t.zero_vc

let request_vc _ = None

let note_peer_vc _ ~peer:_ _ = ()

let metadata_pressure _ = 0

let validate_all _ = ()

let discard_before _ _ = ()

let piggyback_size_bytes (_ : piggyback) = 12

(* origin + upto horizon: the sequencer's ordering metadata, on the same
   vc_entries axis as LRC's vector clocks. *)
let piggyback_cost (_ : piggyback) = [ (Carlos_obs.Cost.Vc_entries, 12) ]

let get_transport t =
  match t.transport with
  | Some tr -> tr
  | None -> raise (Protocol_violation "seq: transport not installed")

let get_push t =
  match t.push with
  | Some p -> p
  | None -> raise (Protocol_violation "seq: push function not installed")

(* ------------------------------------------------------------------ *)
(* Sequencer mutex *)

let rec lock_sequencer t =
  if t.seq_busy then begin
    let gate = Ivar.create () in
    Queue.push gate t.seq_queue;
    Ivar.read gate;
    lock_sequencer t
  end
  else t.seq_busy <- true

let unlock_sequencer t =
  t.seq_busy <- false;
  match Queue.take_opt t.seq_queue with
  | Some gate -> Ivar.fill gate ()
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Acquire parking *)

let wake_waiters t =
  let ready, rest =
    List.partition (fun (upto, _) -> upto <= t.applied_seq) t.acq_waiters
  in
  t.acq_waiters <- rest;
  List.iter (fun (_, gate) -> Ivar.fill gate ()) ready

(* ------------------------------------------------------------------ *)
(* Sequencer side (interrupt level or local application fiber) *)

let broadcast t entries =
  if t.nodes > 1 then begin
    let push = get_push t in
    for dst = 0 to t.nodes - 1 do
      if dst <> t.me then begin
        push ~dst entries;
        Obs.add t.ins.pushed_entries_c (List.length entries)
      end
    done
  end

let serve_sequence t ~origin diffs =
  if t.me <> t.sequencer then
    raise (Protocol_violation "seq: serve_sequence on a non-sequencer node");
  if diffs = [] then 0
  else begin
    lock_sequencer t;
    let changed = ref 0 in
    let last = ref 0 in
    let entries =
      List.map
        (fun diff ->
          t.next_seq <- t.next_seq + 1;
          let seq = t.next_seq in
          last := seq;
          Obs.inc t.ins.stamps_c;
          t.hooks.on_stamped ~seq ~origin;
          (* Apply foreign diffs to the authoritative frames (patching any
             open twin too, so the sequencer's own next flush does not
             republish these bytes); the sequencer's own values are
             already in place. *)
          if origin <> t.me then begin
            let p = Page_table.page t.page_table (Diff.page diff) in
            Page.apply_diff_to_twin p diff;
            Obs.inc t.ins.diffs_applied_c;
            Obs.add t.ins.update_bytes_c (Diff.changed_bytes diff);
            changed := !changed + Diff.changed_bytes diff
          end;
          t.applied_seq <- seq;
          t.hooks.on_applied ~node:t.me ~seq ~origin;
          { seq; origin; update = Diff_u diff })
        diffs
    in
    (* Pushes stay inside the mutex: per-destination send order must
       equal stamp order, and sends yield at charge points. *)
    broadcast t entries;
    wake_waiters t;
    t.charge
      ((t.costs.Cost.diff_data_per_byte *. float_of_int !changed)
      +. t.costs.Cost.diff_request_fixed);
    unlock_sequencer t;
    !last
  end

let serve_cas t ~origin ~page ~offset ~expected ~desired =
  if t.me <> t.sequencer then
    raise (Protocol_violation "seq: serve_cas on a non-sequencer node");
  lock_sequencer t;
  let p = Page_table.page t.page_table page in
  let observed = Int64.to_int (Bytes.get_int64_le (Page.data p) offset) in
  let result =
    if observed <> expected then (false, observed)
    else begin
      let data = Bytes.create 8 in
      Bytes.set_int64_le data 0 (Int64.of_int desired);
      Page.patch p ~offset data;
      t.next_seq <- t.next_seq + 1;
      let seq = t.next_seq in
      Obs.inc t.ins.stamps_c;
      t.hooks.on_stamped ~seq ~origin;
      t.applied_seq <- seq;
      t.hooks.on_applied ~node:t.me ~seq ~origin;
      (* Unlike a diff, the patched value was computed here, so the
         origin's replica needs the push too. *)
      broadcast t [ { seq; origin; update = Patch_u { page; offset; data } } ];
      wake_waiters t;
      (true, expected)
    end
  in
  t.charge t.costs.Cost.diff_request_fixed;
  unlock_sequencer t;
  result

(* ------------------------------------------------------------------ *)
(* Replica side (interrupt level) *)

let apply_push t entries =
  if t.me = t.sequencer then
    raise (Protocol_violation "seq: push delivered to the sequencer");
  let bytes = ref 0 in
  List.iter
    (fun { seq; origin; update } ->
      if seq <> t.applied_seq + 1 then
        raise
          (Protocol_violation
             (Printf.sprintf "seq: out-of-order push %d (applied %d)" seq
                t.applied_seq));
      (match update with
      | Diff_u diff ->
        (* Skip the payload of our own diffs: the frames already hold
           those values, and newer unreleased local writes must not be
           reverted to them. *)
        if origin <> t.me then begin
          let p = Page_table.page t.page_table (Diff.page diff) in
          Page.apply_diff_to_twin p diff;
          Obs.inc t.ins.diffs_applied_c;
          Obs.add t.ins.update_bytes_c (Diff.changed_bytes diff);
          bytes := !bytes + Diff.changed_bytes diff
        end
      | Patch_u { page; offset; data } ->
        let p = Page_table.page t.page_table page in
        Page.patch p ~offset data;
        Obs.inc t.ins.diffs_applied_c;
        Obs.add t.ins.update_bytes_c (Bytes.length data);
        bytes := !bytes + Bytes.length data);
      t.applied_seq <- seq;
      t.hooks.on_applied ~node:t.me ~seq ~origin)
    entries;
  wake_waiters t;
  t.charge
    ((t.costs.Cost.diff_data_per_byte *. float_of_int !bytes)
    +. (t.costs.Cost.write_notice_apply
       *. float_of_int (List.length entries)))

(* ------------------------------------------------------------------ *)
(* Flushing *)

(* Encode every dirty page's modifications and route them through the
   sequencer.  Dirty flags are snapshotted and cleared before any charge
   (mutate-before-charge: a concurrent writer re-dirtying a page keeps
   its flag for the next flush). *)
let flush_dirty t =
  let pages = ref [] in
  Array.iteri
    (fun page d ->
      if d then begin
        t.dirty.(page) <- false;
        pages := page :: !pages
      end)
    t.dirty;
  let diffs =
    List.filter_map
      (fun page ->
        let p = Page_table.page t.page_table page in
        let encoded = ref [] in
        (* A charge below may yield to a fiber that re-twins the page;
           loop until it is clean at this instant. *)
        while Page.state p = Page.Read_write do
          let diff = Page.encode_diff p ~page_index:page in
          Obs.inc t.ins.diffs_created_c;
          t.charge
            ((t.costs.Cost.diff_scan_per_byte
             *. float_of_int (Bytes.length (Page.data p)))
            +. (t.costs.Cost.diff_data_per_byte
               *. float_of_int (Diff.changed_bytes diff))
            +. t.costs.Cost.page_protect);
          if not (Diff.is_empty diff) then encoded := diff :: !encoded
        done;
        match List.rev !encoded with
        | [] -> None
        | [ d ] -> Some d
        | ds -> Some (Diff.merge ds))
      (List.rev !pages)
  in
  if diffs <> [] then begin
    let last =
      if t.me = t.sequencer then serve_sequence t ~origin:t.me diffs
      else begin
        Obs.inc t.ins.sequence_rpcs_c;
        (get_transport t).sequence diffs
      end
    in
    (* The sequencer's reply shares a FIFO channel with its pushes to us,
       so every stamp up to [last] is already applied locally here. *)
    if last > t.horizon then t.horizon <- last
  end

(* ------------------------------------------------------------------ *)
(* CAS *)

let cas t ~page ~offset ~expected ~desired =
  (* Flush first so the sequencer judges the CAS against a frame that
     includes our earlier writes. *)
  flush_dirty t;
  let result =
    if t.me = t.sequencer then
      serve_cas t ~origin:t.me ~page ~offset ~expected ~desired
    else begin
      Obs.inc t.ins.cas_rpcs_c;
      (get_transport t).cas ~page ~offset ~expected ~desired
    end
  in
  (* On success our Patch_u arrived before the RPC reply (FIFO), so the
     local applied stamp covers it. *)
  if t.applied_seq > t.horizon then t.horizon <- t.applied_seq;
  result

(* ------------------------------------------------------------------ *)
(* Release / acquire *)

let make_piggyback t ~receiver:_ ~nontransitive:_ =
  flush_dirty t;
  { origin = t.me; upto = t.horizon }

let accept t pbs =
  if pbs <> [] then begin
    (* A barrier manager reaches its own fall without sending a release:
       its writes enter the global order here. *)
    flush_dirty t;
    let upto = List.fold_left (fun acc pb -> max acc pb.upto) 0 pbs in
    if upto > t.horizon then t.horizon <- upto;
    while t.applied_seq < upto do
      let gate = Ivar.create () in
      t.acq_waiters <- (upto, gate) :: t.acq_waiters;
      Ivar.read gate
    done;
    t.hooks.on_acquire ~node:t.me ~upto ~applied:t.applied_seq
  end

let backend_stats t =
  {
    Backend_intf.diffs_created = Obs.value t.ins.diffs_created_c;
    diffs_applied = Obs.value t.ins.diffs_applied_c;
    data_fetches =
      Obs.value t.ins.sequence_rpcs_c + Obs.value t.ins.cas_rpcs_c;
    page_fetches = 0;
    bytes_fetched = Obs.value t.ins.update_bytes_c;
  }

(* ------------------------------------------------------------------ *)
(* Wire sizing *)

let entry_size_bytes { update; _ } =
  16
  +
  match update with
  | Diff_u d -> Diff.size_bytes d
  | Patch_u { data; _ } -> 8 + Bytes.length data

let push_size_bytes entries =
  List.fold_left (fun acc e -> acc + entry_size_bytes e) 8 entries
