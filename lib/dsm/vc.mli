(** Vector timestamps.

    The memory-consistency state of each node is summarized by a vector
    timestamp, each element of which is the index of the most recently seen
    interval from the corresponding node (paper §4.2). *)

type t

val zero : nodes:int -> t

val copy : t -> t

val nodes : t -> int

val get : t -> int -> int

val set : t -> int -> int -> unit

(** Increment own component and return the new value. *)
val tick : t -> me:int -> int

(** Componentwise maximum, returned as a fresh vector. *)
val join : t -> t -> t

(** Update [t] in place to the join of [t] and [other]. *)
val join_in_place : t -> t -> unit

(** [dominates a b] iff every component of [a] is [>=] the corresponding
    component of [b]. *)
val dominates : t -> t -> bool

val equal : t -> t -> bool

(** Sum of components — a linear extension of the dominance partial order,
    used to apply causally ordered diffs in a safe total order. *)
val sum : t -> int

(** Wire bytes per component.  Components are interval indices, which are
    unbounded ints in long runs; two bytes (the paper's historical choice)
    silently under-accounts, so the cost model spends four. *)
val entry_bytes : int

(** Wire size: [entry_bytes] per node. *)
val size_bytes : t -> int

val pp : Format.formatter -> t -> unit
