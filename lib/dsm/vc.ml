type t = int array

let zero ~nodes =
  if nodes <= 0 then invalid_arg "Vc.zero: nodes";
  Array.make nodes 0

let copy = Array.copy

let nodes = Array.length

let get t i = t.(i)

let set t i v = t.(i) <- v

let tick t ~me =
  t.(me) <- t.(me) + 1;
  t.(me)

let join a b =
  if Array.length a <> Array.length b then invalid_arg "Vc.join: size";
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let join_in_place a b =
  if Array.length a <> Array.length b then invalid_arg "Vc.join_in_place: size";
  Array.iteri (fun i v -> if v > a.(i) then a.(i) <- v) b

let dominates a b =
  if Array.length a <> Array.length b then invalid_arg "Vc.dominates: size";
  let ok = ref true in
  Array.iteri (fun i v -> if a.(i) < v then ok := false) b;
  !ok

let equal a b = a = b

let sum t = Array.fold_left ( + ) 0 t

let entry_bytes = 4

let size_bytes t = entry_bytes * Array.length t

let pp ppf t =
  Format.fprintf ppf "<%s>"
    (String.concat "," (Array.to_list (Array.map string_of_int t)))
