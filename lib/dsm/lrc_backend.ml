module Page = Carlos_vm.Page
module Page_table = Carlos_vm.Page_table
module Diff = Carlos_vm.Diff
module Ivar = Carlos_sim.Resource.Ivar
module Engine = Carlos_sim.Engine

exception Protocol_violation of string

type strategy = Invalidate | Update | Hybrid_update

type piggyback = {
  origin : int;
  required_vc : Vc.t;
  intervals : Interval.t list;
  nontransitive : bool;
  attached_diffs : (int * Interval.id * Diff.t list) list;
}

type diff_request = (int * Interval.id list) list

type diff_reply = (int * Interval.id * Diff.t list) list

type page_reply = { data : Bytes.t; covers : Vc.t }

type hooks = {
  on_interval_closed :
    creator:int -> index:int -> vc:Vc.t -> pages:int list -> unit;
  on_write_notice : node:int -> page:int -> creator:int -> index:int -> unit;
  on_page_interval : node:int -> page:int -> creator:int -> index:int -> unit;
  on_page_content : node:int -> page:int -> vc:Vc.t -> unit;
  on_peer_note : node:int -> peer:int -> vc:Vc.t -> unit;
}

let no_hooks =
  {
    on_interval_closed = (fun ~creator:_ ~index:_ ~vc:_ ~pages:_ -> ());
    on_write_notice = (fun ~node:_ ~page:_ ~creator:_ ~index:_ -> ());
    on_page_interval = (fun ~node:_ ~page:_ ~creator:_ ~index:_ -> ());
    on_page_content = (fun ~node:_ ~page:_ ~vc:_ -> ());
    on_peer_note = (fun ~node:_ ~peer:_ ~vc:_ -> ());
  }

type fault = Skip_write_notice | Corrupt_vc_merge

type transport = {
  fetch_diffs : dst:int -> diff_request -> diff_reply;
  fetch_intervals : dst:int -> have:Vc.t -> Interval.t list;
  fetch_page : dst:int -> page:int -> page_reply option;
}

module Obs = Carlos_obs.Obs

type stats = {
  intervals_created : int;
  write_notices_sent : int;
  write_notices_applied : int;
  diffs_created : int;
  diffs_applied : int;
  diff_bytes_fetched : int;
  diff_requests : int;
  page_fetches : int;
  interval_fetches : int;
  twins_created : int;
  diff_cache_hits : int;
  diff_cache_misses : int;
}

(* Registry handles for the protocol's accounting; see {!stats} for the
   aggregate read-back view. *)
type instruments = {
  intervals_created_c : Obs.counter;
  write_notices_sent_c : Obs.counter;
  write_notices_applied_c : Obs.counter;
  diffs_created_c : Obs.counter;
  diffs_applied_c : Obs.counter;
  diff_bytes_fetched_c : Obs.counter;
  diff_requests_c : Obs.counter;
  page_fetches_c : Obs.counter;
  interval_fetches_c : Obs.counter;
  twins_created_c : Obs.counter;
  diff_cache_hits_c : Obs.counter;
  diff_cache_misses_c : Obs.counter;
  diffs_merged_c : Obs.counter;
  diff_size_h : Obs.Hist.t;
}

let make_instruments obs ~node =
  let dsm name = Obs.counter obs ~node ~layer:Obs.Dsm name in
  let vm name = Obs.counter obs ~node ~layer:Obs.Vm name in
  {
    intervals_created_c = dsm "intervals_created";
    write_notices_sent_c = dsm "write_notices_sent";
    write_notices_applied_c = dsm "write_notices_applied";
    diffs_created_c = vm "diffs_created";
    diffs_applied_c = dsm "diffs_applied";
    diff_bytes_fetched_c = dsm "diff_bytes_fetched";
    diff_requests_c = dsm "diff_requests";
    page_fetches_c = dsm "page_fetches";
    interval_fetches_c = dsm "interval_fetches";
    twins_created_c = vm "twins";
    diff_cache_hits_c = dsm "diff_cache_hits";
    diff_cache_misses_c = dsm "diff_cache_misses";
    diffs_merged_c = dsm "diffs_merged";
    diff_size_h = Obs.histogram obs ~node ~layer:Obs.Vm "diff.bytes";
  }

type t = {
  nodes : int;
  me : int;
  page_table : Page_table.t;
  costs : Cost.t;
  strategy : strategy;
  charge : float -> unit;
  vc : Vc.t;
  (* Every interval description this node knows about; invariant: for every
     node [c], contains (c, i) for all 1 <= i <= vc.(c). *)
  log : (int * int, Interval.t) Hashtbl.t;
  (* Diffs held locally (own creations and fetched copies), keyed by
     (page, creator, index).  One flush can cover several closed intervals,
     in which case the same diff is stored (aliased) under each of their
     ids; a key maps to a list because a page can be flushed repeatedly
     within one id's window, and the pieces apply in list order. *)
  diffs : (int * int * int, Diff.t list) Hashtbl.t;
  (* NOTE: with eager encoding at interval close, every write notice ever
     published has its diff in [diffs] at the creator. *)
  (* Pages written in the current (open) interval. *)
  mutable dirty : int list;
  dirty_set : (int, unit) Hashtbl.t;
  (* Diffs encoded mid-interval (a write notice arrived for a locally
     dirty page); they are published under the open interval's id once it
     closes. *)
  orphans : (int, Diff.t list) Hashtbl.t;
  (* For each invalid page, the interval ids whose diffs must be applied. *)
  missing : (int, Interval.id list) Hashtbl.t;
  (* Per page, the least upper bound of the interval timestamps whose
     writes are reflected in the local copy (own closes, applied diffs,
     whole-page installs).  A whole-page install is only sound when the
     server's copy covers at least this much. *)
  page_vc : (int, Vc.t) Hashtbl.t;
  (* Guards against concurrent fetches of the same page by several
     fibers. *)
  inflight : (int, unit Ivar.t) Hashtbl.t;
  (* Batched fetching: coalesce a fault's round-trips into one diff
     request per creator (spanning pages) issued in parallel fibers. *)
  batch_fetch : bool;
  (* Pages with a live local demand — the history that picks which other
     missing pages may ride along in a fault's batch.  Membership decays:
     a write-notice invalidation removes the page, and only a fresh fault
     re-admits it, so prefetching follows demonstrated reuse.  Without the
     decay a page touched once ever (say, another node's grid block that
     node 0 initialised) would be prefetched on every later fault. *)
  accessed : (int, unit) Hashtbl.t;
  (* Creator-side cache of merged diff encodings, keyed by
     (page, creator, lo_index, hi_index).  The member set of a range is
     fully determined by the key (write notices are complete, and a
     fetcher's needed set per creator is upward-closed), so equal keys
     always denote the same merge. *)
  serve_cache : (int * int * int * int, Diff.t) Hashtbl.t;
  serve_cache_enabled : bool;
  (* Conservative knowledge of each peer's vector timestamp, for tailoring
     RELEASE piggybacks (a REQUEST piggybacks its sender's vc). *)
  peer_vc : Vc.t array;
  (* Update/hybrid strategies: per peer, the intervals whose diffs have
     already been shipped eagerly.  Each diff goes to each peer at most
     once; anything else is recovered by demand fetching. *)
  attach_floor : Vc.t array;
  mutable transport : transport option;
  mutable diff_bytes_stored : int;
  obs : Obs.t;
  ins : instruments;
  mutable hooks : hooks;
  (* One-shot armed corruption; see {!inject_fault}. *)
  mutable fault : fault option;
}

let transport t =
  match t.transport with
  | Some tr -> tr
  | None -> raise (Protocol_violation "Lrc: transport not installed")

let find_interval t id =
  match Hashtbl.find_opt t.log (id.Interval.creator, id.Interval.index) with
  | Some i -> i
  | None ->
    raise
      (Protocol_violation
         (Printf.sprintf "interval %d.%d not in log" id.Interval.creator
            id.Interval.index))

(* ------------------------------------------------------------------ *)
(* Local diff bookkeeping *)

(* Per-key diff lists are accumulated newest-first: consing is O(1) where
   appending was O(n), so a page whose log grows across many write-notice
   arrivals builds it in linear total time instead of quadratic.  Readers
   that apply or ship diffs materialize encoding order with [in_order];
   order-insensitive readers (size sums, discards) use the raw list. *)
let in_order ds = List.rev ds

let store_diff t ~page ~(id : Interval.id) diff =
  let key = (page, id.Interval.creator, id.Interval.index) in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.diffs key) in
  Hashtbl.replace t.diffs key (diff :: existing);
  t.diff_bytes_stored <- t.diff_bytes_stored + Diff.size_bytes diff

(* Encode the modifications of a write-enabled page.  The twin always
   snapshots the page as of the last interval close, so the diff contains
   exactly the writes of the open interval. *)
let encode_now t page =
  let p = Page_table.page t.page_table page in
  let page_size = Page_table.page_size t.page_table in
  (* Encode before charging: charging yields the fiber, and a concurrent
     write-notice arrival could flush (re-protect) the page under us. *)
  let diff = Page.encode_diff p ~page_index:page in
  Obs.inc t.ins.diffs_created_c;
  Obs.Hist.observe t.ins.diff_size_h (float_of_int (Diff.size_bytes diff));
  t.charge
    ((t.costs.Cost.diff_scan_per_byte *. float_of_int page_size)
    +. (t.costs.Cost.diff_data_per_byte
       *. float_of_int (Diff.changed_bytes diff))
    +. t.costs.Cost.page_protect);
  diff

(* A write notice arrived for a page the open interval is writing: encode
   the modifications so they survive invalidation, and park the diff until
   the open interval closes and gives it an id. *)
let flush_page t page =
  let p = Page_table.page t.page_table page in
  match Page.state p with
  | Page.Read_only | Page.Invalid -> ()
  | Page.Read_write ->
    let diff = encode_now t page in
    let existing =
      Option.value ~default:[] (Hashtbl.find_opt t.orphans page)
    in
    Hashtbl.replace t.orphans page (diff :: existing)

(* ------------------------------------------------------------------ *)
(* Fault handling *)

let write_fault t page =
  Hashtbl.replace t.accessed page ();
  let p = Page_table.page t.page_table page in
  (* Mutate before charging: charging yields the fiber, and a concurrent
     write-notice arrival could invalidate the page mid-fault. *)
  Page.make_twin p;
  Obs.inc t.ins.twins_created_c;
  if not (Hashtbl.mem t.dirty_set page) then begin
    Hashtbl.replace t.dirty_set page ();
    t.dirty <- page :: t.dirty
  end;
  t.charge
    (t.costs.Cost.fault_trap
    +. (t.costs.Cost.twin_per_byte
       *. float_of_int (Page_table.page_size t.page_table))
    +. t.costs.Cost.page_protect)

(* Record that the local copy of [page] now reflects the writes of
   interval (creator, index).  Only the creator's component may be bumped:
   an interval's full vector clock names history from other creators whose
   writes to this page have NOT necessarily been applied here. *)
let note_page_interval t page ~creator ~index =
  t.hooks.on_page_interval ~node:t.me ~page ~creator ~index;
  match Hashtbl.find_opt t.page_vc page with
  | None ->
    let vc = Vc.zero ~nodes:t.nodes in
    Vc.set vc creator index;
    Hashtbl.replace t.page_vc page vc
  | Some cur -> Vc.set cur creator (max (Vc.get cur creator) index)

(* A whole-page install genuinely carries per-creator coverage. *)
let note_page_content t page vc =
  t.hooks.on_page_content ~node:t.me ~page ~vc;
  match Hashtbl.find_opt t.page_vc page with
  | None -> Hashtbl.replace t.page_vc page (Vc.copy vc)
  | Some cur -> Vc.join_in_place cur vc

let page_content_vc t page ~nodes =
  match Hashtbl.find_opt t.page_vc page with
  | Some vc -> vc
  | None -> Vc.zero ~nodes

(* Try a whole-page fetch from the creator of the causally latest missing
   interval; returns the ids still missing afterwards. *)
let fetch_whole_page t page ids =
  let latest =
    List.fold_left
      (fun acc id ->
        let i = find_interval t id in
        match acc with
        | None -> Some i
        | Some best ->
          if Vc.sum i.Interval.vc > Vc.sum best.Interval.vc then Some i
          else acc)
      None ids
  in
  match latest with
  | None -> ids
  | Some target -> (
    let dst = target.Interval.id.Interval.creator in
    if dst = t.me then ids
    else
      match (transport t).fetch_page ~dst ~page with
      | None -> ids
      | Some { data; covers } ->
        if
          not
            (Vc.dominates covers (page_content_vc t page ~nodes:t.nodes)
            && Vc.dominates covers t.vc)
        then
          (* Installing could lose content this node's copy (or its
             knowledge) already reflects; fall back to per-interval
             diffs.  Requiring the server to dominate the full vector
             clock is conservative but provably cannot clobber newer
             bytes. *)
          ids
        else begin
          Obs.inc t.ins.page_fetches_c;
          let p = Page_table.page t.page_table page in
          Page.install p data;
          Page.invalidate p;
          note_page_content t page covers;
          t.charge
            (t.costs.Cost.twin_per_byte *. float_of_int (Bytes.length data));
          (* Still-unpublished local writes (orphans of the open interval)
             are newer than anything the server can have; restore them. *)
          (match Hashtbl.find_opt t.orphans page with
          | Some ds -> List.iter (fun d -> Page.apply_diff p d) (in_order ds)
          | None -> ());
          (* An interval (c, k) is reflected in (or superseded within) the
             server's copy exactly when the server had seen it, i.e. when
             covers.(c) >= k.  Full vector-clock dominance would be wrong
             here: unrelated components can make an old interval look
             concurrent, and re-applying its diff over the installed copy
             would clobber newer bytes. *)
          List.filter
            (fun (id : Interval.id) ->
              id.Interval.index > Vc.get covers id.Interval.creator)
            ids
        end)

(* The total order in which a page's diffs are applied: causal (sum of
   vector-clock components), ties broken deterministically. *)
let causal_order t ids =
  List.sort
    (fun (a : Interval.id) (b : Interval.id) ->
      let va = (find_interval t a).Interval.vc
      and vb = (find_interval t b).Interval.vc in
      compare
        (Vc.sum va, a.Interval.creator, a.Interval.index)
        (Vc.sum vb, b.Interval.creator, b.Interval.index))
    ids

(* Group a page's causally ordered ids into maximal same-creator runs.
   The ids of one run are adjacent in the apply order — no other interval's
   diff applies between them — so the creator may collapse the run's diffs
   into one merged diff: applied at the run's position it is byte-for-byte
   equivalent to applying them one by one.  (Anything causally between two
   ids of the page's missing set is itself in the missing set: write
   notices travel with complete piggybacks, so the accept that revealed the
   later id also revealed everything before it.) *)
let adjacency_runs ordered =
  let rec group acc = function
    | [] -> List.rev_map List.rev acc
    | (id : Interval.id) :: rest -> (
      match acc with
      | ((last : Interval.id) :: _ as run) :: others
        when last.Interval.creator = id.Interval.creator ->
        group ((id :: run) :: others) rest
      | _ -> group ([ id ] :: acc) rest)
  in
  group [] ordered

(* Fetch the diffs for [targets] (per page, the causally ordered ids whose
   diffs are not held locally) into [have]: one diff request per creator,
   spanning pages, with one request entry per mergeable run.  Distinct
   creators answer independently, so their round trips are overlapped by
   issuing each request from its own forked fiber and joining on ivars. *)
let fetch_missing t ~into:have targets =
  let requests = Hashtbl.create 4 in
  let creators = ref [] in
  List.iter
    (fun (page, ordered) ->
      List.iter
        (fun run ->
          match run with
          | [] -> ()
          | (id : Interval.id) :: _ -> (
            let creator = id.Interval.creator in
            match Hashtbl.find_opt requests creator with
            | None ->
              Hashtbl.replace requests creator [ (page, run) ];
              creators := creator :: !creators
            | Some cur ->
              Hashtbl.replace requests creator ((page, run) :: cur)))
        (adjacency_runs ordered))
    targets;
  let asked = Hashtbl.create 16 in
  Hashtbl.iter
    (fun creator entries ->
      List.iter
        (fun (page, run) ->
          List.iter
            (fun (id : Interval.id) ->
              Hashtbl.replace asked (page, id) creator)
            run)
        entries)
    requests;
  let do_fetch creator =
    let request = List.rev (Hashtbl.find requests creator) in
    Obs.inc t.ins.diff_requests_c;
    let reply = (transport t).fetch_diffs ~dst:creator request in
    (* Bill each physical diff once per reply: a diff aliased under
       several ids crosses the wire once. *)
    let billed = ref [] in
    List.iter
      (fun (page, (id : Interval.id), ds) ->
        if Hashtbl.find_opt asked (page, id) <> Some creator then
          raise (Protocol_violation "diff reply for an unrequested id");
        List.iter
          (fun d ->
            if not (List.memq d !billed) then begin
              billed := d :: !billed;
              Obs.add t.ins.diff_bytes_fetched_c (Diff.size_bytes d)
            end;
            store_diff t ~page ~id d)
          ds;
        Hashtbl.replace have (page, id.Interval.creator, id.Interval.index) ds)
      reply
  in
  match List.rev !creators with
  | [] -> ()
  | [ creator ] -> do_fetch creator
  | many when t.batch_fetch && Engine.in_fiber () ->
    let slots =
      List.map
        (fun creator ->
          let slot = Ivar.create () in
          Engine.fork (fun () ->
              Ivar.fill slot
                (match do_fetch creator with
                | () -> Ok ()
                | exception e -> Error e));
          slot)
        many
    in
    List.iter
      (fun slot ->
        match Ivar.read slot with Ok () -> () | Error e -> raise e)
      slots
  | many ->
    (* Serial fallback: batching disabled, or the protocol is being driven
       directly from a unit test outside any engine fiber. *)
    List.iter do_fetch many

(* Gather diffs for each page of [targets]: serve from the local store
   where possible, fetch the rest from their creators (blocking). *)
let collect_diffs t targets =
  let have = Hashtbl.create 16 in
  let remote =
    List.filter_map
      (fun (page, ids) ->
        let miss =
          List.filter
            (fun (id : Interval.id) ->
              let key = (page, id.Interval.creator, id.Interval.index) in
              match Hashtbl.find_opt t.diffs key with
              | Some ds ->
                Hashtbl.replace have key (in_order ds);
                false
              | None ->
                if id.Interval.creator = t.me then
                  raise (Protocol_violation "own diff missing from store");
                true)
            ids
        in
        if miss = [] then None else Some (page, causal_order t miss))
      targets
  in
  fetch_missing t ~into:have remote;
  have

let apply_diffs t page ids have =
  let ordered = causal_order t ids in
  let p = Page_table.page t.page_table page in
  (* An aliased diff can be listed under several ids; apply each physical
     diff once (applying again would be harmless but wasteful). *)
  let applied = ref [] in
  List.iter
    (fun (id : Interval.id) ->
      match
        Hashtbl.find_opt have (page, id.Interval.creator, id.Interval.index)
      with
      | None -> raise (Protocol_violation "no diff collected for missing id")
      | Some ds ->
        List.iter
          (fun d ->
            if not (List.memq d !applied) then begin
              applied := d :: !applied;
              Page.apply_diff p d;
              Obs.inc t.ins.diffs_applied_c;
              t.charge
                (t.costs.Cost.diff_data_per_byte
                 *. float_of_int (Diff.changed_bytes d))
            end)
          ds;
        note_page_interval t page ~creator:id.Interval.creator
          ~index:id.Interval.index)
    ordered

(* Remove exactly [handled] from the page's missing set; validate the page
   only if nothing new arrived while we were blocked. *)
let finish_page t page ~handled =
  let remaining =
    match Hashtbl.find_opt t.missing page with
    | None -> []
    | Some ids -> List.filter (fun id -> not (List.mem id handled)) ids
  in
  if remaining = [] then begin
    Hashtbl.remove t.missing page;
    let p = Page_table.page t.page_table page in
    if Page.state p = Page.Invalid then begin
      Page.validate p;
      t.charge t.costs.Cost.page_protect
    end
  end
  else Hashtbl.replace t.missing page remaining

let fetch_and_apply t targets =
  let prepared =
    List.map
      (fun (page, ids) ->
        (* Ids the page content already reflects (e.g. a write notice that
           arrived while a whole-page install covering it was in flight)
           must not be re-fetched: their old diffs would clobber newer
           bytes. *)
        let needed =
          let content = page_content_vc t page ~nodes:t.nodes in
          List.filter
            (fun (id : Interval.id) ->
              id.Interval.index > Vc.get content id.Interval.creator)
            ids
        in
        (* Many missing intervals make a whole-page copy cheaper than diffs
           (TreadMarks requests the page outright when it holds no copy; we
           approximate with a count heuristic). *)
        let remaining =
          if List.length needed > 3 then fetch_whole_page t page needed
          else needed
        in
        (page, remaining))
      targets
  in
  let work = List.filter (fun (_, ids) -> ids <> []) prepared in
  (match work with
  | [] -> ()
  | _ ->
    let have = collect_diffs t work in
    List.iter (fun (page, ids) -> apply_diffs t page ids have) work);
  List.iter (fun (page, ids) -> finish_page t page ~handled:ids) targets

(* Fetch-and-apply [targets] under per-page inflight gates, so concurrent
   fibers faulting on the same page block on the ivar instead of issuing a
   duplicate fetch. *)
let fetch_batch t targets =
  let gates =
    List.map
      (fun (page, _) ->
        let gate = Ivar.create () in
        Hashtbl.replace t.inflight page gate;
        (page, gate))
      targets
  in
  let finish () =
    List.iter
      (fun (page, gate) ->
        Hashtbl.remove t.inflight page;
        Ivar.fill gate ())
      gates
  in
  (try fetch_and_apply t targets
   with e ->
     finish ();
     raise e);
  finish ()

(* Bring one invalid page up to date.  Loops because new write notices can
   arrive while we block on the network.  With batched fetching, the other
   missing pages this node has faulted on before ride along in the same
   round: their diffs come back in the same per-creator requests, sparing
   each page its own later round trips. *)
let rec validate_page t page =
  match Hashtbl.find_opt t.inflight page with
  | Some gate ->
    Ivar.read gate;
    validate_page_if_needed t page
  | None -> (
    match Hashtbl.find_opt t.missing page with
    | None | Some [] ->
      Hashtbl.remove t.missing page;
      let p = Page_table.page t.page_table page in
      if Page.state p = Page.Invalid then Page.validate p
    | Some ids ->
      let extra =
        if not t.batch_fetch then []
        else
          Hashtbl.fold
            (fun other other_ids acc ->
              if
                other <> page && other_ids <> []
                && Hashtbl.mem t.accessed other
                && not (Hashtbl.mem t.inflight other)
              then (other, other_ids) :: acc
              else acc)
            t.missing []
          |> List.sort compare
      in
      fetch_batch t ((page, ids) :: extra);
      validate_page_if_needed t page)

and validate_page_if_needed t page =
  let p = Page_table.page t.page_table page in
  if Page.state p = Page.Invalid then validate_page t page

let read_fault t page =
  Hashtbl.replace t.accessed page ();
  t.charge t.costs.Cost.fault_trap;
  validate_page t page

(* ------------------------------------------------------------------ *)

let create ?obs ~nodes ~me ~page_table ~costs ~charge ?(strategy = Invalidate)
    ?(batch_fetch = true) ?(diff_cache = true) () =
  if me < 0 || me >= nodes then invalid_arg "Lrc.create: bad node id";
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let t =
    {
      nodes;
      me;
      page_table;
      costs;
      strategy;
      charge;
      vc = Vc.zero ~nodes;
      log = Hashtbl.create 256;
      diffs = Hashtbl.create 256;
      dirty = [];
      dirty_set = Hashtbl.create 64;
      orphans = Hashtbl.create 16;
      missing = Hashtbl.create 64;
      page_vc = Hashtbl.create 64;
      inflight = Hashtbl.create 8;
      batch_fetch;
      accessed = Hashtbl.create 64;
      serve_cache = Hashtbl.create 64;
      serve_cache_enabled = diff_cache;
      peer_vc = Array.init nodes (fun _ -> Vc.zero ~nodes);
      attach_floor = Array.init nodes (fun _ -> Vc.zero ~nodes);
      transport = None;
      diff_bytes_stored = 0;
      obs;
      ins = make_instruments obs ~node:me;
      hooks = no_hooks;
      fault = None;
    }
  in
  Page_table.set_read_fault page_table (read_fault t);
  Page_table.set_write_fault page_table (write_fault t);
  t

let set_transport t tr = t.transport <- Some tr

let set_hooks t hooks = t.hooks <- hooks

let inject_fault t fault = t.fault <- fault

let strategy t = t.strategy

let me t = t.me

let vc t = t.vc

let stats t =
  {
    intervals_created = Obs.value t.ins.intervals_created_c;
    write_notices_sent = Obs.value t.ins.write_notices_sent_c;
    write_notices_applied = Obs.value t.ins.write_notices_applied_c;
    diffs_created = Obs.value t.ins.diffs_created_c;
    diffs_applied = Obs.value t.ins.diffs_applied_c;
    diff_bytes_fetched = Obs.value t.ins.diff_bytes_fetched_c;
    diff_requests = Obs.value t.ins.diff_requests_c;
    page_fetches = Obs.value t.ins.page_fetches_c;
    interval_fetches = Obs.value t.ins.interval_fetches_c;
    twins_created = Obs.value t.ins.twins_created_c;
    diff_cache_hits = Obs.value t.ins.diff_cache_hits_c;
    diff_cache_misses = Obs.value t.ins.diff_cache_misses_c;
  }

let note_peer_vc t ~peer vc =
  t.hooks.on_peer_note ~node:t.me ~peer ~vc;
  Vc.join_in_place t.peer_vc.(peer) vc

let known_peer_vc t ~peer = t.peer_vc.(peer)

(* Close the open interval, if it wrote anything: assign the next index,
   log the interval with one write notice per dirty page, and encode every
   dirty page's diff eagerly so the page can be re-protected.  Eager
   encoding keeps write notices precise — a page is advertised in exactly
   the intervals that really wrote it, and a diff published under an
   interval id contains exactly that interval's modifications, which the
   causal apply order relies on. *)
let close_interval t =
  match t.dirty with
  | [] -> ()
  | pages ->
    (* Snapshot and clear the dirty list before anything that can yield
       the fiber (CPU charges block): a concurrent release from another
       fiber of this node (e.g. the dispatcher granting a lock) must see
       an empty open interval, not re-publish the same pages. *)
    t.dirty <- [];
    List.iter (fun page -> Hashtbl.remove t.dirty_set page) pages;
    (* Phase 1 — encode every dirty page's diff BEFORE ticking the vector
       clock.  Encoding charges CPU and yields the fiber, and a fetch_page
       request serviced at interrupt level during such a yield uses t.vc to
       claim what the served snapshot covers.  Ticking first would let it
       claim the closing interval while the twin still excludes its writes
       — the receiver would then skip this interval's write notice and keep
       stale bytes forever.  With the un-ticked clock the claim is exact
       for still-writable pages (the twin is served) and merely
       conservative for just-encoded ones (re-applying the diff over its
       own bytes is idempotent). *)
    let encoded =
      List.filter_map
        (fun page ->
          let p = Page_table.page t.page_table page in
          if Page.state p = Page.Read_write then
            Some (page, encode_now t page)
          else None)
        pages
    in
    (* Phase 2 — publish atomically: no charges (hence no yields) between
       the tick and the page-coverage notes, so no observer can see the new
       index without the frames and diff store reflecting it. *)
    let index = Vc.tick t.vc ~me:t.me in
    let interval =
      Interval.make ~creator:t.me ~index ~vc:(Vc.copy t.vc)
        ~write_notices:pages
    in
    Hashtbl.replace t.log (t.me, index) interval;
    t.hooks.on_interval_closed ~creator:t.me ~index ~vc:interval.Interval.vc
      ~pages;
    Obs.inc t.ins.intervals_created_c;
    Obs.add t.ins.write_notices_sent_c (List.length pages);
    let id = { Interval.creator = t.me; index } in
    List.iter
      (fun page ->
        (* Diffs encoded mid-interval by write-notice arrivals... *)
        (match Hashtbl.find_opt t.orphans page with
        | Some ds ->
          List.iter (fun d -> store_diff t ~page ~id d) (in_order ds);
          Hashtbl.remove t.orphans page
        | None -> ());
        (* ...and the final state of the page if it was still writable. *)
        (match List.assoc_opt page encoded with
        | Some d -> store_diff t ~page ~id d
        | None -> ());
        note_page_interval t page ~creator:t.me ~index)
      pages;
    t.charge t.costs.Cost.interval_create

(* Intervals the receiver (whose vc we conservatively know as [have]) is
   missing, optionally restricted to locally created ones. *)
let intervals_after t ~have ~own_only =
  let collect creator acc =
    if own_only && creator <> t.me then acc
    else begin
      let upto = Vc.get t.vc creator in
      let rec loop idx acc =
        if idx > upto then acc
        else
          match Hashtbl.find_opt t.log (creator, idx) with
          | Some i -> loop (idx + 1) (i :: acc)
          | None ->
            raise
              (Protocol_violation
                 (Printf.sprintf "interval log gap at (%d,%d)" creator idx))
      in
      loop (Vc.get have creator + 1) acc
    end
  in
  let rec nodes_loop c acc =
    if c >= t.nodes then acc else nodes_loop (c + 1) (collect c acc)
  in
  Interval.causal_sort (nodes_loop 0 [])

(* Diffs to ship eagerly with the given interval descriptions (update and
   hybrid strategies, paper §4.3).  Only diffs this node actually holds
   can be attached; missing ones fall back to demand fetching at the
   receiver. *)
let attachments_for t ~receiver intervals =
  match t.strategy with
  | Invalidate -> []
  | Update | Hybrid_update ->
    (* Ship each diff to each peer at most once (for a locally addressed
       message that may be forwarded anywhere, once globally). *)
    let floor =
      if receiver = t.me then begin
        let f = Vc.copy t.attach_floor.((t.me + 1) mod t.nodes) in
        for p = 0 to t.nodes - 1 do
          if p <> t.me then
            for c = 0 to t.nodes - 1 do
              if Vc.get t.attach_floor.(p) c < Vc.get f c then
                Vc.set f c (Vc.get t.attach_floor.(p) c)
            done
        done;
        f
      end
      else t.attach_floor.(receiver)
    in
    (* Bound the eager data per message; anything over the budget stays
       demand-fetched (real update protocols bound their eagerness the
       same way). *)
    let budget = ref (16 * 1024) in
    let shipped = ref [] in
    let out =
      List.concat_map
        (fun (i : Interval.t) ->
          let id = i.Interval.id in
          if
            (t.strategy = Hybrid_update && id.Interval.creator <> t.me)
            || id.Interval.index <= Vc.get floor id.Interval.creator
            || !budget <= 0
          then []
          else begin
            let attached =
              List.filter_map
                (fun page ->
                  match
                    Hashtbl.find_opt t.diffs
                      (page, id.Interval.creator, id.Interval.index)
                  with
                  | Some ds ->
                    List.iter
                      (fun d -> budget := !budget - Diff.size_bytes d)
                      ds;
                    Some (page, id, in_order ds)
                  | None -> None)
                i.Interval.write_notices
            in
            if !budget >= 0 then begin
              shipped := id :: !shipped;
              attached
            end
            else begin
              (* Over budget: drop this interval's attachments and stop. *)
              budget := 0;
              []
            end
          end)
        intervals
    in
    let bump peer =
      List.iter
        (fun (id : Interval.id) ->
          if
            Vc.get t.attach_floor.(peer) id.Interval.creator
            < id.Interval.index
          then
            Vc.set t.attach_floor.(peer) id.Interval.creator
              id.Interval.index)
        !shipped
    in
    if receiver = t.me then
      for p = 0 to t.nodes - 1 do
        if p <> t.me then bump p
      done
    else bump receiver;
    out

let make_piggyback t ~receiver ~nontransitive =
 Obs.span t.obs ~node:t.me ~layer:Obs.Dsm "lrc.release"
   ~args:[ ("receiver", Obs.Int receiver) ]
 @@ fun () ->
  close_interval t;
  let intervals =
    if receiver = t.me then begin
      (* A node is always consistent with itself, but a locally addressed
         RELEASE (a manager enqueueing into its own work queue) is often
         stored and forwarded later.  Tailor it for the least-informed
         peer so the forwarded copy usually carries enough; a true gap is
         still recovered through the fetch-from-origin path (§4.3). *)
      if t.nodes = 1 then []
      else begin
        let first_peer = if t.me = 0 then 1 else 0 in
        let floor = Vc.copy t.peer_vc.(first_peer) in
        for p = 0 to t.nodes - 1 do
          if p <> t.me then
            for c = 0 to t.nodes - 1 do
              if Vc.get t.peer_vc.(p) c < Vc.get floor c then
                Vc.set floor c (Vc.get t.peer_vc.(p) c)
            done
        done;
        intervals_after t ~have:floor ~own_only:nontransitive
      end
    end
    else intervals_after t ~have:t.peer_vc.(receiver) ~own_only:nontransitive
  in
  {
    origin = t.me;
    required_vc = Vc.copy t.vc;
    intervals;
    nontransitive;
    attached_diffs = attachments_for t ~receiver intervals;
  }

let piggyback_size_bytes pb =
  (* A physical diff aliased under several attachment entries crosses the
     wire once; each later entry carries only a small back-reference. *)
  let billed = ref [] in
  let diff_bytes d =
    if List.memq d !billed then 4
    else begin
      billed := d :: !billed;
      Diff.size_bytes d
    end
  in
  Vc.size_bytes pb.required_vc + 1
  + List.fold_left (fun acc i -> acc + Interval.size_bytes i) 0 pb.intervals
  + List.fold_left
      (fun acc (_, _, ds) ->
        acc + 8 + List.fold_left (fun a d -> a + diff_bytes d) 0 ds)
      0 pb.attached_diffs

(* Same decomposition, split by taxonomy component (must stay in lockstep
   with [piggyback_size_bytes]; the conservation invariant enforces it):
   vector clocks (the required VC and each interval's VC) are vc_entries,
   interval ids + write-notice lists + the nontransitive flag are
   write_notices, attached diffs (with the same aliasing rule) are
   diff_payload. *)
let piggyback_cost pb =
  let billed = ref [] in
  let diff_bytes d =
    if List.memq d !billed then 4
    else begin
      billed := d :: !billed;
      Diff.size_bytes d
    end
  in
  let vc_bytes =
    Vc.size_bytes pb.required_vc
    + List.fold_left
        (fun acc (i : Interval.t) -> acc + Vc.size_bytes i.Interval.vc)
        0 pb.intervals
  in
  let wn_bytes =
    1
    + List.fold_left
        (fun acc (i : Interval.t) ->
          acc + 4 + (4 * List.length i.Interval.write_notices))
        0 pb.intervals
  in
  let diff_payload =
    List.fold_left
      (fun acc (_, _, ds) ->
        acc + 8 + List.fold_left (fun a d -> a + diff_bytes d) 0 ds)
      0 pb.attached_diffs
  in
  [
    (Carlos_obs.Cost.Vc_entries, vc_bytes);
    (Carlos_obs.Cost.Write_notices, wn_bytes);
    (Carlos_obs.Cost.Diff_payload, diff_payload);
  ]

(* Apply one interval's write notices, preserving local modifications by
   flushing dirty pages to diffs first (the multiple-writer protocol).
   Under the invalidation strategy the named pages become invalid; under
   the update/hybrid strategies a page whose diff travelled with the
   message and whose local copy is current stays valid ("pages to which a
   'complete' set of diffs can be applied remain valid", §4.3). *)
let apply_interval t ~attached interval =
  let creator = interval.Interval.id.Interval.creator in
  let index = interval.Interval.id.Interval.index in
  if creator <> t.me then begin
    List.iter
      (fun page ->
        if t.fault = Some Skip_write_notice then
          (* Armed one-shot corruption: silently drop this write notice
             (no invalidation, no audit hook) — the page keeps serving
             stale bytes, which the auditor must detect. *)
          t.fault <- None
        else begin
        Obs.inc t.ins.write_notices_applied_c;
        t.charge t.costs.Cost.write_notice_apply;
        (* A whole-page install can leave the local copy ahead of the
           vector clock; a write notice for an interval the content
           already reflects must not re-invalidate the page (fetching its
           old diff would clobber newer bytes). *)
        (if
          index > Vc.get (page_content_vc t page ~nodes:t.nodes) creator
        then begin
          let p = Page_table.page t.page_table page in
          let eager = Hashtbl.find_opt attached (page, creator, index) in
          match (eager, Page.state p) with
          | Some ds, (Page.Read_only | Page.Read_write) ->
            (* Update path: the data came with the message and the local
               copy is current, so apply in place and stay valid.
               [flush_page] yields while charging the encode, and the app
               fiber can re-fault the page back to Read_write in that
               window; keep flushing until it quiesces so the diffs land
               on a twinless page (the interrupted write retries,
               hardware-style). *)
            while Page.state p = Page.Read_write do
              flush_page t page
            done;
            List.iter
              (fun d ->
                Page.apply_diff p d;
                Obs.inc t.ins.diffs_applied_c;
                t.charge
                  (t.costs.Cost.diff_data_per_byte
                  *. float_of_int (Diff.changed_bytes d));
                (* Cache the diff: this node can now serve it too. *)
                store_diff t ~page ~id:interval.Interval.id d)
              ds;
            note_page_interval t page ~creator ~index
          | eager, _ ->
            (* Invalidation path (also taken when the local copy already
               has gaps: an eagerly received diff cannot be applied onto
               a stale base, so cache it for the later validation).  Same
               yield hazard as above: a single flush can race the app
               fiber re-faulting the page, and invalidating a Read_write
               page is an error. *)
            while Page.state p = Page.Read_write do
              flush_page t page
            done;
            if Page.state p <> Page.Invalid then begin
              Page.invalidate p;
              (* Decay the prefetch history: the page must fault again to
                 prove it is still wanted before riding along in batches. *)
              Hashtbl.remove t.accessed page;
              t.charge t.costs.Cost.page_protect
            end;
            (match eager with
            | Some ds ->
              List.iter
                (fun d -> store_diff t ~page ~id:interval.Interval.id d)
                ds
            | None -> ());
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt t.missing page)
            in
            if not (List.mem interval.Interval.id cur) then
              Hashtbl.replace t.missing page (interval.Interval.id :: cur)
        end);
        t.hooks.on_write_notice ~node:t.me ~page ~creator ~index
        end)
      interval.Interval.write_notices;
    Vc.set t.vc creator (max (Vc.get t.vc creator) index)
  end

let log_interval t (i : Interval.t) =
  let key = (i.Interval.id.Interval.creator, i.Interval.id.Interval.index) in
  if not (Hashtbl.mem t.log key) then Hashtbl.replace t.log key i

(* Find one interval gap between [t.vc] and [target] that the piggybacks
   did not carry, and the origin to ask for it. *)
let find_gap t ~target piggybacks =
  let result = ref None in
  (try
     for c = 0 to t.nodes - 1 do
       for idx = Vc.get t.vc c + 1 to Vc.get target c do
         if not (Hashtbl.mem t.log (c, idx)) then begin
           let origin =
             List.find_map
               (fun pb ->
                 if Vc.get pb.required_vc c >= idx && pb.origin <> t.me then
                   Some pb.origin
                 else None)
               piggybacks
           in
           (match origin with
           | Some o -> result := Some o
           | None ->
             raise (Protocol_violation "interval gap with no origin to ask"));
           raise Exit
         end
       done
     done
   with Exit -> ());
  !result

let accept t piggybacks =
 Obs.span t.obs ~node:t.me ~layer:Obs.Dsm "lrc.accept"
   ~args:[ ("piggybacks", Obs.Int (List.length piggybacks)) ]
 @@ fun () ->
  (* 0. Index any eagerly shipped diffs (update/hybrid strategies). *)
  let attached = Hashtbl.create 16 in
  List.iter
    (fun pb ->
      List.iter
        (fun (page, (id : Interval.id), ds) ->
          Hashtbl.replace attached
            (page, id.Interval.creator, id.Interval.index)
            ds)
        pb.attached_diffs)
    piggybacks;
  (* 1. Log every interval description carried by the messages. *)
  List.iter (fun pb -> List.iter (log_interval t) pb.intervals) piggybacks;
  (* 2. Union of the timestamps we must reach. *)
  let target = Vc.copy t.vc in
  List.iter (fun pb -> Vc.join_in_place target pb.required_vc) piggybacks;
  (* 3. Fetch any interval descriptions the messages did not carry (the
     RELEASE_NT incomplete-information path, paper §4.3). *)
  let rec ensure_logged () =
    match find_gap t ~target piggybacks with
    | None -> ()
    | Some origin ->
      Obs.inc t.ins.interval_fetches_c;
      let fetched = (transport t).fetch_intervals ~dst:origin ~have:t.vc in
      List.iter (log_interval t) fetched;
      ensure_logged ()
  in
  ensure_logged ();
  (* 4. Apply all newly covered intervals in causal order. *)
  let to_apply = ref [] in
  for c = 0 to t.nodes - 1 do
    if c <> t.me then
      for idx = Vc.get t.vc c + 1 to Vc.get target c do
        match Hashtbl.find_opt t.log (c, idx) with
        | Some i -> to_apply := i :: !to_apply
        | None -> raise (Protocol_violation "gap survived ensure_logged")
      done
  done;
  List.iter (apply_interval t ~attached) (Interval.causal_sort !to_apply);
  Vc.join_in_place t.vc target;
  (if t.fault = Some Corrupt_vc_merge then begin
     (* Armed one-shot corruption: lose one non-local component of the
        just-joined clock — the canonical "botched merge" the auditor's
        monotonicity / acquire-dominance checks must catch. *)
     t.fault <- None;
     let victim = ref (-1) in
     for c = 0 to t.nodes - 1 do
       if
         c <> t.me
         && (!victim < 0 || Vc.get t.vc c > Vc.get t.vc !victim)
       then victim := c
     done;
     if !victim >= 0 && Vc.get t.vc !victim > 0 then
       Vc.set t.vc !victim (Vc.get t.vc !victim - 1)
   end);
  (* 5. Remember what the origins know. *)
  List.iter
    (fun pb ->
      if pb.origin <> t.me then note_peer_vc t ~peer:pb.origin pb.required_vc)
    piggybacks

(* ------------------------------------------------------------------ *)
(* Serving (interrupt level, non-blocking) *)

let serve_cache_cap = 512

let serve_diffs t request =
  t.charge t.costs.Cost.diff_request_fixed;
  let lookup page (id : Interval.id) =
    match
      Hashtbl.find_opt t.diffs (page, id.Interval.creator, id.Interval.index)
    with
    | Some ds -> in_order ds
    | None ->
      raise
        (Protocol_violation
           (Printf.sprintf "diff (page %d, %d.%d) not available" page
              id.Interval.creator id.Interval.index))
  in
  List.concat_map
    (fun (page, ids) ->
      let same_creator =
        match ids with
        | [] | [ _ ] -> false
        | (first : Interval.id) :: rest ->
          List.for_all
            (fun (id : Interval.id) ->
              id.Interval.creator = first.Interval.creator)
            rest
      in
      if not (t.serve_cache_enabled && same_creator) then
        List.map (fun (id : Interval.id) -> (page, id, lookup page id)) ids
      else begin
        (* One request entry is one mergeable run: the fetcher only groups
           ids that are adjacent in its causal apply order, so collapsing
           their diffs into one merged diff — returned under the run's
           first id, with the rest answered empty — is equivalent to
           shipping them separately. *)
        let sorted =
          List.sort
            (fun (a : Interval.id) (b : Interval.id) ->
              compare a.Interval.index b.Interval.index)
            ids
        in
        let first = List.hd sorted in
        let last = List.nth sorted (List.length sorted - 1) in
        let key =
          (page, first.Interval.creator, first.Interval.index,
           last.Interval.index)
        in
        let merged =
          match Hashtbl.find_opt t.serve_cache key with
          | Some d ->
            Obs.inc t.ins.diff_cache_hits_c;
            d
          | None ->
            Obs.inc t.ins.diff_cache_misses_c;
            let pieces = List.concat_map (lookup page) sorted in
            let d = Diff.merge pieces in
            Obs.add t.ins.diffs_merged_c (List.length pieces - 1);
            t.charge
              (t.costs.Cost.diff_data_per_byte
              *. float_of_int (Diff.changed_bytes d));
            if Hashtbl.length t.serve_cache >= serve_cache_cap then
              Hashtbl.reset t.serve_cache;
            Hashtbl.replace t.serve_cache key d;
            d
        in
        (page, first, [ merged ])
        :: List.map (fun id -> (page, id, [])) (List.tl sorted)
      end)
    request

let serve_intervals t ~have = intervals_after t ~have ~own_only:false

let serve_page t ~page =
  let p = Page_table.page t.page_table page in
  match Page.state p with
  | Page.Invalid -> None
  | Page.Read_only | Page.Read_write ->
    (* Serve the content as of the last interval boundary.  A write-enabled
       page's live data would leak unreleased mid-interval writes into the
       receiver's base copy, which byte-granular diffs can never correct
       (a byte that changed and changed back is absent from the final
       diff).  The covering timestamp must include the page's content
       timestamp: after a whole-page install the content can run ahead of
       this node's vector clock, and under-claiming would let the receiver
       apply older diffs on top of newer bytes. *)
    Some
      {
        data = Page.clean_snapshot p;
        covers = Vc.join t.vc (page_content_vc t page ~nodes:t.nodes);
      }

(* ------------------------------------------------------------------ *)
(* Garbage collection support *)

let metadata_pressure t = t.diff_bytes_stored + (32 * Hashtbl.length t.log)

let validate_all t =
  let rec loop () =
    let pending = Hashtbl.fold (fun page _ acc -> page :: acc) t.missing [] in
    match List.sort compare pending with
    | [] -> ()
    | pages ->
      (* One batched round over every missing page (GC forces them all, so
         the demand-history gate does not apply), then re-check: new write
         notices may have arrived while we were blocked. *)
      let fresh =
        List.filter_map
          (fun page ->
            if Hashtbl.mem t.inflight page then None
            else
              match Hashtbl.find_opt t.missing page with
              | None | Some [] -> None
              | Some ids -> Some (page, ids))
          pages
      in
      if t.batch_fetch && fresh <> [] then fetch_batch t fresh;
      List.iter (fun page -> validate_page_if_needed t page) pages;
      loop ()
  in
  loop ()

let discard_before t snapshot =
  (* Discarding is only legal after a global rendezvous in which every node
     reached [snapshot]; record that knowledge so future piggybacks are
     never asked to cover discarded history. *)
  for peer = 0 to t.nodes - 1 do
    note_peer_vc t ~peer snapshot
  done;
  let keep_interval (i : Interval.t) =
    not (Vc.dominates snapshot i.Interval.vc)
  in
  let discarded_keys =
    Hashtbl.fold
      (fun key i acc -> if keep_interval i then acc else key :: acc)
      t.log []
  in
  List.iter (Hashtbl.remove t.log) discarded_keys;
  let diff_keys =
    Hashtbl.fold
      (fun (page, creator, index) ds acc ->
        if index <= Vc.get snapshot creator then
          ((page, creator, index), ds) :: acc
        else acc)
      t.diffs []
  in
  List.iter
    (fun (key, ds) ->
      Hashtbl.remove t.diffs key;
      List.iter
        (fun d ->
          t.diff_bytes_stored <- t.diff_bytes_stored - Diff.size_bytes d)
        ds)
    diff_keys;
  (* Merged encodings may cover just-discarded history; drop them all
     rather than tracking which ranges survive. *)
  Hashtbl.reset t.serve_cache
