(** Sequencer-based totally-ordered store.

    The middle point of the consistency spectrum: one {e sequencer} node
    (conventionally 0) stamps every write batch — and every CAS — with a
    global sequence number and pushes the resulting updates to every
    replica, which applies them strictly in stamp order (the
    sequencer/total-order designs of SNIPPETS.md Snippets 2–3).  Every
    node holds a full, never-invalidated copy of the coherent region;
    there are no page fetches at all.

    Protocol, per node:

    - {b write fault}: twin the page and mark it dirty, exactly as in
      {!Central_backend};
    - {b release} ({!make_piggyback}): encode dirty pages' diffs and send
      them to the sequencer over one blocking RPC; the sequencer stamps
      each diff, applies it to its own frames, and {e pushes} the stamped
      update to every other node.  The piggyback carries the origin and an
      [upto] horizon — the highest stamp this node's causal past depends
      on;
    - {b acquire} ({!accept}): flush own dirty pages (a barrier manager
      reaches its fall without sending a release), then block until the
      local applied stamp reaches the maximum [upto] of the accepted
      piggybacks;
    - {b push} ({!apply_push}): applied at interrupt level in arrival
      order.  Per-pair FIFO delivery from the single sequencer source
      makes arrival order equal stamp order, which the replica enforces
      (stamps must be contiguous).  A replica skips the payload of its
      own diffs — its frames already hold those values, and newer
      unreleased local writes must not be reverted — but still advances
      its applied stamp.

    CAS executes {e at} the sequencer against its authoritative frame and
    is pushed as a single-run patch, which every node including the
    origin applies: read-modify-write gets a total order without any
    lock.

    Because the sequencer's RPC reply and its pushes to the origin share
    one FIFO channel, a node returning from a flush has already applied
    every stamp it produced. *)

type t

exception Protocol_violation of string

type update =
  | Diff_u of Carlos_vm.Diff.t
  | Patch_u of { page : int; offset : int; data : Bytes.t }

(** One stamped update in the global order. *)
type entry = { seq : int; origin : int; update : update }

(** Consistency information on a RELEASE/RELEASE_NT: the sender's causal
    horizon in the global order. *)
type piggyback = { origin : int; upto : int }

type transport = {
  sequence : Carlos_vm.Diff.t list -> int;
      (** blocking RPC to the sequencer; answered by {!serve_sequence};
          returns the last stamp assigned *)
  cas : page:int -> offset:int -> expected:int -> desired:int -> bool * int;
      (** blocking RPC to the sequencer; answered by {!serve_cas};
          returns (success, observed value) *)
}

(** [create ~nodes ~me ~sequencer ~page_table ~costs ~charge ()] installs
    the fault handlers on [page_table].  The sequencer node needs no
    transport; every other node must get one via {!set_transport}.  The
    sequencer must additionally get a push function via {!set_push}. *)
val create :
  ?obs:Carlos_obs.Obs.t ->
  nodes:int ->
  me:int ->
  sequencer:int ->
  page_table:Carlos_vm.Page_table.t ->
  costs:Cost.t ->
  charge:(float -> unit) ->
  unit ->
  t

val set_transport : t -> transport -> unit

(** Sequencer only: how to deliver a batch of stamped entries to one
    replica (a one-way system-lane message in the full system; a direct
    call in unit tests).  Entries are in stamp order and must be
    delivered to {!apply_push} in that order. *)
val set_push : t -> (dst:int -> entry list -> unit) -> unit

val me : t -> int

val sequencer : t -> int

(** Highest stamp applied locally. *)
val applied_seq : t -> int

(** {1 Compare-and-swap}

    Atomically replace the 8-byte little-endian integer at
    [page]/[offset] with [desired] iff it currently reads [expected] at
    the sequencer.  Returns (success, observed value).  On return the
    local frame reflects the outcome. *)
val cas :
  t -> page:int -> offset:int -> expected:int -> desired:int -> bool * int

(** {1 Audit hooks} *)

type hooks = {
  on_stamped : seq:int -> origin:int -> unit;
      (** the sequencer assigned stamp [seq] to an update of [origin] *)
  on_applied : node:int -> seq:int -> origin:int -> unit;
      (** [node] applied (or skipped, for its own diffs) stamp [seq] *)
  on_acquire : node:int -> upto:int -> applied:int -> unit;
      (** [node] completed an acquire needing [upto] with [applied]
          stamps already applied locally *)
}

val no_hooks : hooks

val set_hooks : t -> hooks -> unit

(** {1 Backend interface} (see {!Backend_intf.S}) *)

val vc : t -> Vc.t

val make_piggyback : t -> receiver:int -> nontransitive:bool -> piggyback

val accept : t -> piggyback list -> unit

val piggyback_size_bytes : piggyback -> int

val piggyback_cost : piggyback -> (Carlos_obs.Cost.component * int) list

val request_vc : t -> Vc.t option

val note_peer_vc : t -> peer:int -> Vc.t -> unit

val metadata_pressure : t -> int

val validate_all : t -> unit

val discard_before : t -> Vc.t -> unit

val backend_stats : t -> Backend_intf.stats

(** {1 Serving remote requests (sequencer node, interrupt level)} *)

(** Stamp and broadcast a batch of diffs from [origin]; returns the last
    stamp assigned (0 when [diffs] is empty and no stamp was taken). *)
val serve_sequence : t -> origin:int -> Carlos_vm.Diff.t list -> int

(** Execute a CAS from [origin] against the authoritative frame. *)
val serve_cas :
  t ->
  origin:int ->
  page:int ->
  offset:int ->
  expected:int ->
  desired:int ->
  bool * int

(** {1 Replica side (interrupt level)} *)

(** Apply a batch of pushed entries in stamp order. *)
val apply_push : t -> entry list -> unit

(** {1 Wire sizing} *)

val entry_size_bytes : entry -> int

val push_size_bytes : entry list -> int
