(** Lazy release consistency engine (TreadMarks-style, paper §4.2).

    One [Lrc.t] runs on each node.  It owns the node's vector timestamp,
    interval log, write-notice bookkeeping and diff store, and it installs
    itself as the fault handler of the node's page table.  It is a pure
    protocol state machine: all communication goes through the {!transport}
    callbacks installed by the messaging layer, and all processing time is
    charged through the [charge] callback, so the engine itself is easy to
    test in isolation.

    Key protocol choices, matching the paper:
    - multiple-writer protocol with twins and run-length-encoded diffs;
    - write-notice application invalidates by default, with the paper's
      update and hybrid strategies available (see {!strategy});
    - intervals are closed when a RELEASE message is sent.  (TreadMarks
      also opens a new interval at each acquire; closing lazily at the next
      release publishes the same writes at the same release events and is
      indistinguishable for data-race-free programs, while creating fewer
      intervals.);
    - diffs are encoded eagerly when an interval closes (and the page
      re-protected), rather than on first request as in TreadMarks.  Eager
      encoding keeps write notices precise: a diff published under an
      interval id contains exactly that interval's writes, never stale
      bytes republished under a newer id. *)

type t

exception Protocol_violation of string

(** Coherence strategy (paper §4.3: "If an invalidation-based consistency
    strategy is used, the interval descriptions contain only write
    notices.  If an update or hybrid strategy is used, the message also
    will contain a set of diffs.  Thus far, we have used only the
    invalidation strategy in CarlOS." — this implementation provides all
    three):

    - [Invalidate]: write notices invalidate pages; diffs move on demand.
    - [Update]: RELEASE piggybacks also carry the diffs of every interval
      they describe (when the sender holds them); pages to which a
      complete set of diffs can be applied remain valid.
    - [Hybrid_update]: diffs are attached only for intervals created at
      the sending node; third-party intervals invalidate as usual. *)
type strategy = Invalidate | Update | Hybrid_update

(** Consistency information appended to a RELEASE/RELEASE_NT message, or
    returned by an interval fetch. *)
type piggyback = {
  origin : int; (* node that built the piggyback *)
  required_vc : Vc.t;
      (* minimum timestamp the acceptor must reach (paper §4.3) *)
  intervals : Interval.t list; (* interval descriptions, causally sorted *)
  nontransitive : bool; (* built for a RELEASE_NT message *)
  attached_diffs : (int * Interval.id * Carlos_vm.Diff.t list) list;
      (* update/hybrid strategies: eager data, same shape as a diff
         reply *)
}

(** A diff request: for each page, the interval ids whose modifications are
    needed.  Requests are addressed to the interval creator.  A fetcher may
    list the same page in several entries; the ids of one entry must be
    adjacent in the fetcher's causal apply order for that page (no other
    missing interval of the page sorts between them), which licenses the
    server to merge their diffs — see {!serve_diffs}. *)
type diff_request = (int * Interval.id list) list

(** Per requested id, the diff pieces to apply in list order.  One physical
    diff may be aliased under several ids when a single flush covered
    several intervals, and a server may answer a multi-id request entry
    with one merged diff under the entry's lowest id and empty lists for
    the rest. *)
type diff_reply = (int * Interval.id * Carlos_vm.Diff.t list) list

type page_reply = { data : Bytes.t; covers : Vc.t }

type transport = {
  fetch_diffs : dst:int -> diff_request -> diff_reply;
      (** blocking RPC; the remote side answers with {!serve_diffs} *)
  fetch_intervals : dst:int -> have:Vc.t -> Interval.t list;
      (** blocking RPC; the remote side answers with {!serve_intervals} *)
  fetch_page : dst:int -> page:int -> page_reply option;
      (** blocking RPC; the remote side answers with {!serve_page} *)
}

(** [create ?obs ~nodes ~me ~page_table ~costs ~charge] — [charge dt] must
    consume [dt] seconds of this node's CPU and account it to the
    consistency-overhead bucket.  Protocol accounting registers in [obs]
    (a fresh private registry by default) under the [Dsm]/[Vm] layers for
    node [me]; [accept] and [make_piggyback] additionally record
    [lrc.accept]/[lrc.release] spans when tracing is enabled.

    [batch_fetch] (default true) coalesces a fault's round trips: all
    missing intervals — of the faulting page and of any other missing page
    this node has faulted on before — are gathered with one diff request
    per creator, and requests to distinct creators are issued from
    parallel fibers.  When false, each page fetches serially on demand
    with one request per (page, creator), as the seed protocol did.

    [diff_cache] (default true) enables the creator-side merged-diff
    cache: a multi-id request entry is answered with one merged diff,
    memoized by (page, creator, lo, hi) for repeat fetchers. *)
val create :
  ?obs:Carlos_obs.Obs.t ->
  nodes:int ->
  me:int ->
  page_table:Carlos_vm.Page_table.t ->
  costs:Cost.t ->
  charge:(float -> unit) ->
  ?strategy:strategy ->
  ?batch_fetch:bool ->
  ?diff_cache:bool ->
  unit ->
  t

val strategy : t -> strategy

val set_transport : t -> transport -> unit

(** {1 Audit hooks}

    Synchronous callbacks into an external observer (lib/audit's online
    consistency auditor), fired at the protocol's state transitions.  All
    default to no-ops; installing hooks must not change protocol
    behaviour.  [node] is always the node the transition happened on. *)

type hooks = {
  on_interval_closed :
    creator:int -> index:int -> vc:Vc.t -> pages:int list -> unit;
      (** a new interval was closed at its creator (before any charge) *)
  on_write_notice : node:int -> page:int -> creator:int -> index:int -> unit;
      (** one write notice of interval [(creator, index)] was processed at
          [node] during an accept *)
  on_page_interval : node:int -> page:int -> creator:int -> index:int -> unit;
      (** [node]'s copy of [page] now reflects interval [(creator, index)] *)
  on_page_content : node:int -> page:int -> vc:Vc.t -> unit;
      (** [node] installed a whole-page copy of [page] covering [vc] *)
  on_peer_note : node:int -> peer:int -> vc:Vc.t -> unit;
      (** [node] learned that [peer] has reached at least [vc] *)
}

val no_hooks : hooks

val set_hooks : t -> hooks -> unit

(** {1 Fault injection (negative tests only)}

    [inject_fault t (Some f)] arms a one-shot protocol corruption,
    consumed at the next triggering point: [Skip_write_notice] silently
    drops the processing of one write notice during the next accept;
    [Corrupt_vc_merge] decrements one non-local component of the vector
    clock after the next accept's join.  Used to prove the auditor
    catches real violations; never armed in production code. *)

type fault = Skip_write_notice | Corrupt_vc_merge

val inject_fault : t -> fault option -> unit

val me : t -> int

(** The node's current vector timestamp (live value; do not mutate). *)
val vc : t -> Vc.t

(** {1 Peer knowledge} *)

(** Record that [peer] is known to have reached at least [vc] (from a
    REQUEST piggyback or a served fetch), so future RELEASEs to it can be
    precisely tailored. *)
val note_peer_vc : t -> peer:int -> Vc.t -> unit

val known_peer_vc : t -> peer:int -> Vc.t

(** {1 Release / acquire} *)

(** Build the consistency information for a RELEASE ([nontransitive:false])
    or RELEASE_NT ([nontransitive:true]) message to [receiver].  Closes the
    current interval if it modified any pages.  A non-transitive piggyback
    carries only intervals created locally. *)
val make_piggyback : t -> receiver:int -> nontransitive:bool -> piggyback

(** Perform the acquire side for one or more accepted messages (several
    when a barrier manager accepts all stored arrivals at once, so that the
    union of non-transitive contributions is complete).  Missing interval
    descriptions are fetched from the piggyback origins; write notices are
    applied (invalidating pages); the vector clock advances to cover every
    [required_vc].  May block. *)
val accept : t -> piggyback list -> unit

(** Wire size of the consistency information. *)
val piggyback_size_bytes : piggyback -> int

(** Component decomposition of {!piggyback_size_bytes} (vector clocks /
    write notices / attached diffs); sums exactly to the wire size. *)
val piggyback_cost : piggyback -> (Carlos_obs.Cost.component * int) list

(** {1 Serving remote requests (non-blocking, interrupt level)} *)

(** Answer a diff request from the local store.  When the merged-diff
    cache is enabled, a request entry naming several ids of one creator
    (a mergeable run, see {!diff_request}) is answered with a single
    merged diff under the run's lowest id and empty lists for the rest;
    merged encodings are memoized so repeat fetchers of the same range are
    served without re-merging (counters [diff_cache_hits] /
    [diff_cache_misses]). *)
val serve_diffs : t -> diff_request -> diff_reply

val serve_intervals : t -> have:Vc.t -> Interval.t list

(** [serve_page] answers with the full page copy if the local copy is
    valid, along with the timestamp it covers; [None] if the local copy is
    itself stale. *)
val serve_page : t -> page:int -> page_reply option

(** {1 Garbage collection support (paper §5.2 footnote)} *)

(** Rough bytes of consistency metadata held (stored diffs + interval
    log). *)
val metadata_pressure : t -> int

(** Bring every invalid page up to date (blocking; used by the global GC
    rendezvous). *)
val validate_all : t -> unit

(** Discard interval records and diffs dominated by [snapshot].  Only safe
    after a global rendezvous has made every node consistent with
    [snapshot]. *)
val discard_before : t -> Vc.t -> unit

(** {1 Statistics} *)

(** Immutable read-back of this node's protocol counters (all live in the
    observability registry; this is a convenience aggregate). *)
type stats = {
  intervals_created : int;
  write_notices_sent : int;
  write_notices_applied : int;
  diffs_created : int;
  diffs_applied : int;
  diff_bytes_fetched : int;
  diff_requests : int;
  page_fetches : int;
  interval_fetches : int;
  twins_created : int;
  diff_cache_hits : int; (* merged-diff cache: ranges served memoized *)
  diff_cache_misses : int; (* ...and ranges merged afresh *)
}

val stats : t -> stats
