(* Online consistency auditor: shadow state + invariant checks over the
   hooks fired by Node and Lrc.  See audit.mli for the invariant list. *)

module Obs = Carlos_obs.Obs
module Vc = Carlos_dsm.Vc
module Lrc = Carlos_dsm.Lrc_backend
module Central = Carlos_dsm.Central_backend
module Seq = Carlos_dsm.Seq_backend

type annotation = Release | Release_nt | Request | None_

let annotation_name = function
  | Release -> "RELEASE"
  | Release_nt -> "RELEASE_NT"
  | Request -> "REQUEST"
  | None_ -> "NONE"

type violation = {
  check : string;
  node : int;
  time : float;
  trace_id : int option;
  detail : string;
}

type accepted = {
  acc_trace_id : int;
  acc_annotation : annotation;
  acc_origin : int;
  acc_required_vc : Vc.t option;
}

(* Interval metadata, registered globally at close time (the simulation is
   one process, and an interval is always closed before any other node can
   learn of it). *)
type ivinfo = { iv_vc : Vc.t; iv_pages : int list }

type t = {
  nodes : int;
  obs : Obs.t;
  violations_c : Obs.counter;
  mutable violations_rev : violation list;
  (* Join of every clock observation per node: monotonicity reference. *)
  last_vc : Vc.t array;
  (* knows.(n).(p): mirror of node n's [peer_vc.(p)] (exact, because every
     Lrc mutation of peer_vc routes through note_peer_vc's hook). *)
  knows : Vc.t array array;
  intervals : (int * int, ivinfo) Hashtbl.t; (* (creator, index) *)
  (* Write notices processed: (node, page, creator, index). *)
  handled : (int * int * int * int, unit) Hashtbl.t;
  (* Per (node, page): join of the timestamps of everything applied. *)
  page_seen : (int * int, Vc.t) Hashtbl.t;
  (* Per (node, page, creator): highest interval index applied. *)
  page_applied : (int * int * int, int) Hashtbl.t;
  (* (trace_id, node) pairs where accepting is forbidden. *)
  relay : (int * int, unit) Hashtbl.t;
  (* Central backend: the one home node seen, the version sequence per
     page at home (must advance by exactly one per applied flush), and
     the last version each node fetched per page (must be monotone). *)
  mutable central_home : int option;
  central_version : (int, int) Hashtbl.t; (* page -> home version *)
  central_fetched : (int * int, int) Hashtbl.t; (* (node, page) *)
  (* Seq backend: last stamp issued by the sequencer (must be contiguous)
     and the highest stamp applied per node (must advance by one). *)
  mutable seq_last_stamp : int;
  seq_applied : (int, int) Hashtbl.t; (* node -> applied stamp *)
}

let create ?obs ~nodes () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  {
    nodes;
    obs;
    violations_c =
      Obs.counter obs ~node:Obs.global_node ~layer:Obs.Carlos
        "audit.violations";
    violations_rev = [];
    last_vc = Array.init nodes (fun _ -> Vc.zero ~nodes);
    knows = Array.init nodes (fun _ -> Array.init nodes (fun _ -> Vc.zero ~nodes));
    intervals = Hashtbl.create 256;
    handled = Hashtbl.create 1024;
    page_seen = Hashtbl.create 128;
    page_applied = Hashtbl.create 256;
    relay = Hashtbl.create 16;
    central_home = None;
    central_version = Hashtbl.create 64;
    central_fetched = Hashtbl.create 128;
    seq_last_stamp = 0;
    seq_applied = Hashtbl.create 16;
  }

let violations t = List.rev t.violations_rev

let violation_count t = List.length t.violations_rev

let vc_str vc = Format.asprintf "%a" Vc.pp vc

let violate t ~check ~node ?trace_id detail =
  let v = { check; node; time = Obs.now t.obs; trace_id; detail } in
  t.violations_rev <- v :: t.violations_rev;
  Obs.inc t.violations_c;
  Obs.event t.obs ~node ~layer:Obs.Carlos "audit.violation"
    ~args:
      (("check", Obs.Str check)
      :: (match trace_id with
         | Some id -> [ ("id", Obs.Int id) ]
         | None -> [])
      @ [ ("detail", Obs.Str detail) ])

(* End-of-run wire-byte conservation: the cost-taxonomy component
   counters must jointly account for every byte the medium carried plus
   every byte lost to datagram drops (see Carlos_obs.Cost). *)
let check_conservation t =
  let total = Carlos_obs.Cost.total t.obs in
  let wire = Carlos_obs.Cost.wire_total t.obs in
  if total <> wire then
    violate t ~check:"cost-conservation" ~node:Obs.global_node
      (Printf.sprintf "component bytes %d <> wire bytes %d (delta %d)" total
         wire (total - wire))

let pp_violation ppf v =
  Format.fprintf ppf "[%s] n%d t=%.6f%s: %s" v.check v.node v.time
    (match v.trace_id with
    | Some id -> Printf.sprintf " msg#%d" id
    | None -> "")
    v.detail

let pp_report ppf t =
  match violations t with
  | [] -> Format.fprintf ppf "audit: ok (0 violations)@."
  | vs ->
    Format.fprintf ppf "audit: %d violation%s@." (List.length vs)
      (if List.length vs = 1 then "" else "s");
    List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) vs

(* Every clock observation funnels through here: the clock of a node may
   only ever grow. *)
let observe_vc t ~node ?trace_id ~at vc =
  if not (Vc.dominates vc t.last_vc.(node)) then
    violate t ~check:"vc-monotonic" ~node ?trace_id
      (Printf.sprintf "at %s: clock %s went below previously observed %s" at
         (vc_str vc)
         (vc_str t.last_vc.(node)));
  Vc.join_in_place t.last_vc.(node) vc

(* ------------------------------------------------------------------ *)
(* Message-layer hooks *)

let on_send t ~trace_id ~src ~dst ~annotation ~vc ~required_vc ~nontransitive
    ~intervals ~sender_vc =
  observe_vc t ~node:src ~trace_id ~at:"send" vc;
  (match (annotation, sender_vc) with
  | Request, Some svc ->
    if not (Vc.equal svc vc) then
      violate t ~check:"request-vc-stale" ~node:src ~trace_id
        (Printf.sprintf "REQUEST piggybacks %s but the sender is at %s"
           (vc_str svc) (vc_str vc))
  | _ -> ());
  match required_vc with
  | None -> ()
  | Some rvc when dst = src ->
    (* A locally addressed RELEASE (a manager enqueueing into its own
       queue) is tailored for the least-informed peer, not for [dst];
       exactness does not apply.  The clock rule still does. *)
    ignore rvc
  | Some rvc ->
    let included = Hashtbl.create 16 in
    List.iter (fun ci -> Hashtbl.replace included ci ()) intervals;
    let known = t.knows.(src).(dst) in
    let creators = if nontransitive then [ src ] else List.init t.nodes Fun.id in
    (* No gap: everything between the receiver's known clock and
       required_vc must travel (for RELEASE_NT, only own intervals — the
       rest is recovered by gap detection at the acceptor). *)
    List.iter
      (fun c ->
        for i = Vc.get known c + 1 to Vc.get rvc c do
          if not (Hashtbl.mem included (c, i)) then
            violate t ~check:"request-tailoring" ~node:src ~trace_id
              (Printf.sprintf
                 "piggyback to n%d omits interval %d.%d (receiver known at \
                  %s, required %s)"
                 dst c i (vc_str known) (vc_str rvc))
        done)
      creators;
    (* No excess: nothing the receiver is already known to cover, and a
       non-transitive piggyback only carries the sender's intervals. *)
    List.iter
      (fun (c, i) ->
        if nontransitive && c <> src then
          violate t ~check:"release-nt-foreign-interval" ~node:src ~trace_id
            (Printf.sprintf "RELEASE_NT to n%d carries interval %d.%d" dst c i)
        else if i <= Vc.get known c then
          violate t ~check:"request-tailoring" ~node:src ~trace_id
            (Printf.sprintf
               "piggyback to n%d re-ships interval %d.%d the receiver \
                already covers (known %s)"
               dst c i (vc_str known)))
      intervals

let on_accept t ~node ~vc_before ~vc_after accepted =
  (* [vc_before] is NOT a fresh observation: accepts nest (a charge inside
     Lrc.accept yields to the interrupt fiber, which can run a complete
     inner accept on the same node), so the outer batch's before-clock is
     legitimately older than the mirror by the time this reports.  The
     batch-internal after ⊒ before check and the after-observation below
     keep monotonicity airtight. *)
  if not (Vc.dominates vc_after vc_before) then
    violate t ~check:"vc-monotonic" ~node
      ?trace_id:
        (match accepted with [] -> None | a :: _ -> Some a.acc_trace_id)
      (Printf.sprintf "accept moved the clock from %s to %s"
         (vc_str vc_before) (vc_str vc_after));
  let batch_tid =
    (* Attribute batch-wide findings to the first synchronizing message. *)
    match List.find_opt (fun a -> a.acc_required_vc <> None) accepted with
    | Some a -> Some a.acc_trace_id
    | None -> (
      match accepted with [] -> None | a :: _ -> Some a.acc_trace_id)
  in
  List.iter
    (fun a ->
      if Hashtbl.mem t.relay (a.acc_trace_id, node) then
        violate t ~check:"relay-consistent" ~node ~trace_id:a.acc_trace_id
          (Printf.sprintf
             "declared relay accepted a %s from n%d (never-becomes-consistent \
              violated)"
             (annotation_name a.acc_annotation)
             a.acc_origin);
      match a.acc_required_vc with
      | None -> ()
      | Some rvc ->
        if not (Vc.dominates vc_after rvc) then
          violate t
            ~check:
              (match a.acc_annotation with
              | Release_nt -> "release-nt-required-vc"
              | _ -> "acquire-dominance")
            ~node ~trace_id:a.acc_trace_id
            (Printf.sprintf
               "clock after accept %s does not dominate required %s (from n%d)"
               (vc_str vc_after) (vc_str rvc) a.acc_origin))
    accepted;
  (* Write-notice completeness over the newly covered interval range. *)
  for c = 0 to t.nodes - 1 do
    if c <> node then
      for i = Vc.get vc_before c + 1 to Vc.get vc_after c do
        match Hashtbl.find_opt t.intervals (c, i) with
        | None ->
          violate t ~check:"write-notice-lost" ~node ?trace_id:batch_tid
            (Printf.sprintf "accept covered unknown interval %d.%d" c i)
        | Some info ->
          List.iter
            (fun page ->
              if not (Hashtbl.mem t.handled (node, page, c, i)) then
                violate t ~check:"write-notice-lost" ~node ?trace_id:batch_tid
                  (Printf.sprintf
                     "interval %d.%d covered but its write notice for page \
                      %d was never processed here"
                     c i page))
            info.iv_pages
      done
  done;
  observe_vc t ~node ?trace_id:batch_tid ~at:"accept(after)" vc_after

let check_disposition t ~what ~trace_id ~node ~vc_before ~vc_after =
  observe_vc t ~node ~trace_id ~at:what vc_before;
  if not (Vc.equal vc_before vc_after) then
    violate t ~check:"disposition-vc-changed" ~node ~trace_id
      (Printf.sprintf "%s changed the clock from %s to %s" what
         (vc_str vc_before) (vc_str vc_after))

let on_forward t ~trace_id ~node ~dst:_ ~vc_before ~vc_after =
  (* Forwarding fulfils a relay obligation: the message moves on without
     this node becoming consistent.  Clearing the expectation also covers
     a manager that forwards an item to itself-as-dequeuer, which then
     legitimately accepts it in that role. *)
  Hashtbl.remove t.relay (trace_id, node);
  check_disposition t ~what:"forward" ~trace_id ~node ~vc_before ~vc_after

let on_store t ~trace_id ~node ~vc_before ~vc_after =
  check_disposition t ~what:"store" ~trace_id ~node ~vc_before ~vc_after

let expect_relay t ~trace_id ~node = Hashtbl.replace t.relay (trace_id, node) ()

(* ------------------------------------------------------------------ *)
(* LRC hooks *)

let applied_max t ~node ~page ~creator =
  Option.value ~default:0 (Hashtbl.find_opt t.page_applied (node, page, creator))

let note_applied t ~node ~page vc =
  (match Hashtbl.find_opt t.page_seen (node, page) with
  | Some seen -> Vc.join_in_place seen vc
  | None -> Hashtbl.replace t.page_seen (node, page) (Vc.copy vc));
  for c = 0 to t.nodes - 1 do
    let v = Vc.get vc c in
    if v > applied_max t ~node ~page ~creator:c then
      Hashtbl.replace t.page_applied (node, page, c) v
  done

let on_page_interval t ~node ~page ~creator ~index =
  if index > applied_max t ~node ~page ~creator then begin
    (match Hashtbl.find_opt t.page_seen (node, page) with
    | Some seen when Vc.get seen creator >= index ->
      (* Something already applied to this page causally follows the
         interval being applied now: its old bytes would clobber newer
         ones. *)
      violate t ~check:"page-causal-order" ~node
        (Printf.sprintf
           "interval %d.%d applied to page %d after content covering %s"
           creator index page (vc_str seen))
    | _ -> ());
    match Hashtbl.find_opt t.intervals (creator, index) with
    | Some info -> note_applied t ~node ~page info.iv_vc
    | None ->
      (* Own open-interval bookkeeping closes before registering?  No:
         close registers first.  An unknown id here is itself a bug. *)
      violate t ~check:"page-causal-order" ~node
        (Printf.sprintf "page %d claims unknown interval %d.%d" page creator
           index);
      Hashtbl.replace t.page_applied (node, page, creator) index
  end

let lrc_hooks t =
  {
    Lrc.on_interval_closed =
      (fun ~creator ~index ~vc ~pages ->
        Hashtbl.replace t.intervals (creator, index)
          { iv_vc = Vc.copy vc; iv_pages = pages });
    on_write_notice =
      (fun ~node ~page ~creator ~index ->
        Hashtbl.replace t.handled (node, page, creator, index) ());
    on_page_interval =
      (fun ~node ~page ~creator ~index ->
        on_page_interval t ~node ~page ~creator ~index);
    on_page_content =
      (fun ~node ~page ~vc -> note_applied t ~node ~page vc);
    on_peer_note =
      (fun ~node ~peer ~vc -> Vc.join_in_place t.knows.(node).(peer) vc);
  }

(* ------------------------------------------------------------------ *)
(* Central-backend hooks *)

let central_hooks t =
  {
    Central.on_flush_applied =
      (fun ~home ~origin ~page ~version ->
        (match t.central_home with
        | None -> t.central_home <- Some home
        | Some h when h <> home ->
          violate t ~check:"central-single-home" ~node:home
            (Printf.sprintf
               "flush applied at n%d but n%d already acted as home" home h)
        | Some _ -> ());
        let prev =
          Option.value ~default:0 (Hashtbl.find_opt t.central_version page)
        in
        if version <> prev + 1 then
          violate t ~check:"central-version-gap" ~node:home
            (Printf.sprintf
               "page %d jumped from version %d to %d (flush from n%d)" page
               prev version origin);
        Hashtbl.replace t.central_version page (max version prev));
    on_page_fetched =
      (fun ~node ~page ~version ->
        let home_version =
          Option.value ~default:0 (Hashtbl.find_opt t.central_version page)
        in
        if version > home_version then
          violate t ~check:"central-version-gap" ~node
            (Printf.sprintf
               "fetched page %d at version %d the home never reached (%d)"
               page version home_version);
        (match Hashtbl.find_opt t.central_fetched (node, page) with
        | Some prev when version < prev ->
          violate t ~check:"central-fetch-stale" ~node
            (Printf.sprintf
               "page %d fetched at version %d after already seeing %d" page
               version prev)
        | _ -> ());
        Hashtbl.replace t.central_fetched (node, page) version);
    on_sync = (fun ~node:_ ~invalidated:_ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Seq-backend hooks *)

let seq_hooks t =
  {
    Seq.on_stamped =
      (fun ~seq ~origin ->
        if seq <> t.seq_last_stamp + 1 then
          violate t ~check:"seq-stamp-contiguous" ~node:origin
            (Printf.sprintf "stamp %d issued after %d (from n%d)" seq
               t.seq_last_stamp origin);
        t.seq_last_stamp <- max seq t.seq_last_stamp);
    on_applied =
      (fun ~node ~seq ~origin ->
        if seq > t.seq_last_stamp then
          violate t ~check:"seq-apply-order" ~node
            (Printf.sprintf "applied stamp %d the sequencer never issued" seq);
        let prev =
          Option.value ~default:0 (Hashtbl.find_opt t.seq_applied node)
        in
        if seq <> prev + 1 then
          violate t ~check:"seq-apply-order" ~node
            (Printf.sprintf "applied stamp %d after %d (from n%d)" seq prev
               origin);
        Hashtbl.replace t.seq_applied node (max seq prev));
    on_acquire =
      (fun ~node ~upto ~applied ->
        if applied < upto then
          violate t ~check:"seq-acquire-coverage" ~node
            (Printf.sprintf
               "acquire completed needing stamp %d with only %d applied" upto
               applied));
  }
