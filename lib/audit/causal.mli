(** Offline analysis of a captured trace.

    Consumes the event stream of an {!Carlos_obs.Obs} registry recorded by
    an instrumented run ([Node] emits ["send"]/["deliver"]/["accept"]
    events carrying the message trace id; the synchronization protocols
    emit ["lock.handoff"]/["lock.acquired"], ["barrier.arrive"]/
    ["barrier.fall"] and ["wq.enqueue"]/["wq.dequeue"]) and derives:

    - the {b critical path}: a backward walk through the causal DAG from
      the last event of the run — at each step, the latest delivery on
      the current node is matched to its send (same trace id) and the
      walk jumps to the sender — splitting the end-to-end span into
      per-node local compute and wire transit, with hop counts per
      annotation;
    - a {b per-lock} breakdown: acquisitions, wait-time statistics and
      the handoff chain (how often each manager/tail edge granted);
    - {b barrier skew}: per episode, the spread between the first and
      last arrival, aggregated per barrier. *)

module Obs = Carlos_obs.Obs

type hop = {
  hop_id : int;  (** message trace id *)
  hop_annot : string;
  hop_src : int;
  hop_dst : int;
  hop_send_ts : float;
  hop_deliver_ts : float;
}

type critical_path = {
  cp_start : float;
  cp_end : float;
  cp_hops : hop list;  (** in causal (forward) order *)
  cp_local : (int * float) list;  (** per node, compute time on the path *)
  cp_wire : float;  (** total transit time on the path *)
  cp_annot_hops : (string * int) list;  (** hop count per annotation *)
}

type lock_report = {
  lk_name : string;
  lk_acquisitions : int;
  lk_wait_total : float;
  lk_wait_max : float;
  lk_handoffs : ((int * int) * int) list;
      (** ((granter, grantee), count), most frequent first *)
}

type barrier_report = {
  br_name : string;
  br_episodes : int;
  br_skew_mean : float;
  br_skew_max : float;  (** spread between first and last arrival *)
}

type t = {
  path : critical_path option;  (** [None] when the trace has no deliveries *)
  locks : lock_report list;  (** sorted by name *)
  barriers : barrier_report list;  (** sorted by name *)
}

val analyse : Obs.t -> t

val pp : Format.formatter -> t -> unit
