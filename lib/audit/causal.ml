module Obs = Carlos_obs.Obs

type hop = {
  hop_id : int;
  hop_annot : string;
  hop_src : int;
  hop_dst : int;
  hop_send_ts : float;
  hop_deliver_ts : float;
}

type critical_path = {
  cp_start : float;
  cp_end : float;
  cp_hops : hop list;
  cp_local : (int * float) list;
  cp_wire : float;
  cp_annot_hops : (string * int) list;
}

type lock_report = {
  lk_name : string;
  lk_acquisitions : int;
  lk_wait_total : float;
  lk_wait_max : float;
  lk_handoffs : ((int * int) * int) list;
}

type barrier_report = {
  br_name : string;
  br_episodes : int;
  br_skew_mean : float;
  br_skew_max : float;
}

type t = {
  path : critical_path option;
  locks : lock_report list;
  barriers : barrier_report list;
}

let arg_int e name =
  List.find_map
    (function n, Obs.Int i when n = name -> Some i | _ -> None)
    e.Obs.args

let arg_float e name =
  List.find_map
    (function
      | n, Obs.F f when n = name -> Some f
      | n, Obs.Int i when n = name -> Some (float_of_int i)
      | _ -> None)
    e.Obs.args

let arg_str e name =
  List.find_map
    (function n, Obs.Str s when n = name -> Some s | _ -> None)
    e.Obs.args

(* ------------------------------------------------------------------ *)
(* Critical path *)

let critical_path events =
  (* Per-node deliveries (ts ascending) and per-id sends (ts ascending;
     forwarding re-sends share the id, so keep all hops). *)
  let delivers : (int, Obs.event list ref) Hashtbl.t = Hashtbl.create 16 in
  let sends : (int, Obs.event list ref) Hashtbl.t = Hashtbl.create 256 in
  let last_ev = ref None in
  List.iter
    (fun (e : Obs.event) ->
      (* Seed the backward walk from the last event attributed to a real
         node: global-node bookkeeping (a timer-driven delayed-ack flush,
         say) can outlast the application's final message and has no
         delivery chain behind it. *)
      (if e.Obs.node >= 0 then
         match !last_ev with
         | Some (l : Obs.event) when l.ts >= e.ts -> ()
         | _ -> last_ev := Some e);
      let push tbl k =
        match Hashtbl.find_opt tbl k with
        | Some r -> r := e :: !r
        | None -> Hashtbl.add tbl k (ref [ e ])
      in
      match e.name with
      | "deliver" -> push delivers e.node
      | "send" -> (
        match arg_int e "id" with Some id -> push sends id | None -> ())
      | _ -> ())
    events;
  match !last_ev with
  | None -> None
  | Some last ->
    (* Lists were built newest-first: exactly the order the backward walk
       scans them in. *)
    let find_latest l pred ts =
      match Hashtbl.find_opt l pred with
      | None -> None
      | Some r -> List.find_opt (fun (e : Obs.event) -> e.ts <= ts) !r
    in
    let cp_end = last.Obs.ts in
    let hops = ref [] in
    let local : (int, float) Hashtbl.t = Hashtbl.create 8 in
    let add_local node dt =
      Hashtbl.replace local node
        (dt +. Option.value ~default:0. (Hashtbl.find_opt local node))
    in
    let wire = ref 0. in
    let cur_node = ref last.Obs.node and cur_ts = ref last.Obs.ts in
    let continue = ref true in
    while !continue do
      match find_latest delivers !cur_node !cur_ts with
      | None ->
        (* Head of the chain: local compute from time 0. *)
        add_local !cur_node !cur_ts;
        continue := false
      | Some d -> (
        let id = Option.value ~default:(-1) (arg_int d "id") in
        match
          find_latest sends id
            (d.Obs.ts -. 1e-12 (* strictly before delivery *))
        with
        | None ->
          add_local !cur_node !cur_ts;
          continue := false
        | Some s ->
          add_local !cur_node (!cur_ts -. d.Obs.ts);
          wire := !wire +. (d.Obs.ts -. s.Obs.ts);
          hops :=
            {
              hop_id = id;
              hop_annot = Option.value ~default:"?" (arg_str d "annot");
              hop_src = s.Obs.node;
              hop_dst = d.Obs.node;
              hop_send_ts = s.Obs.ts;
              hop_deliver_ts = d.Obs.ts;
            }
            :: !hops;
          cur_node := s.Obs.node;
          cur_ts := s.Obs.ts)
    done;
    let cp_hops = !hops in
    let annots = Hashtbl.create 8 in
    List.iter
      (fun h ->
        Hashtbl.replace annots h.hop_annot
          (1 + Option.value ~default:0 (Hashtbl.find_opt annots h.hop_annot)))
      cp_hops;
    Some
      {
        cp_start = 0.;
        cp_end;
        cp_hops;
        cp_local =
          List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) local []);
        cp_wire = !wire;
        cp_annot_hops =
          List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) annots []);
      }

(* ------------------------------------------------------------------ *)
(* Locks *)

let lock_reports events =
  let acc : (string, (int ref * float ref * float ref) * ((int * int), int) Hashtbl.t) Hashtbl.t
      =
    Hashtbl.create 8
  in
  let get name =
    match Hashtbl.find_opt acc name with
    | Some v -> v
    | None ->
      let v = ((ref 0, ref 0., ref 0.), Hashtbl.create 8) in
      Hashtbl.add acc name v;
      v
  in
  List.iter
    (fun (e : Obs.event) ->
      match e.name with
      | "lock.acquired" -> (
        match arg_str e "name" with
        | None -> ()
        | Some name ->
          let (n, tot, mx), _ = get name in
          incr n;
          let w = Option.value ~default:0. (arg_float e "wait") in
          tot := !tot +. w;
          if w > !mx then mx := w)
      | "lock.handoff" -> (
        match (arg_str e "name", arg_int e "to") with
        | Some name, Some dst ->
          let _, edges = get name in
          let k = (e.node, dst) in
          Hashtbl.replace edges k
            (1 + Option.value ~default:0 (Hashtbl.find_opt edges k))
        | _ -> ())
      | _ -> ())
    events;
  Hashtbl.fold
    (fun name ((n, tot, mx), edges) l ->
      {
        lk_name = name;
        lk_acquisitions = !n;
        lk_wait_total = !tot;
        lk_wait_max = !mx;
        lk_handoffs =
          List.sort
            (fun (e1, c1) (e2, c2) -> compare (-c1, e1) (-c2, e2))
            (Hashtbl.fold (fun k v l -> (k, v) :: l) edges []);
      }
      :: l)
    acc []
  |> List.sort (fun a b -> compare a.lk_name b.lk_name)

(* ------------------------------------------------------------------ *)
(* Barriers *)

let barrier_reports events =
  (* (name, episode) -> (min arrive ts, max arrive ts) *)
  let eps : (string * int, float * float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Obs.event) ->
      if e.name = "barrier.arrive" then
        match (arg_str e "name", arg_int e "episode") with
        | Some name, Some ep ->
          let k = (name, ep) in
          let lo, hi =
            Option.value ~default:(e.ts, e.ts) (Hashtbl.find_opt eps k)
          in
          Hashtbl.replace eps k (Float.min lo e.ts, Float.max hi e.ts)
        | _ -> ())
    events;
  let per_name : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 8
  in
  Hashtbl.iter
    (fun (name, _) (lo, hi) ->
      let n, tot, mx =
        match Hashtbl.find_opt per_name name with
        | Some v -> v
        | None ->
          let v = (ref 0, ref 0., ref 0.) in
          Hashtbl.add per_name name v;
          v
      in
      let skew = hi -. lo in
      incr n;
      tot := !tot +. skew;
      if skew > !mx then mx := skew)
    eps;
  Hashtbl.fold
    (fun name (n, tot, mx) l ->
      {
        br_name = name;
        br_episodes = !n;
        br_skew_mean = (if !n = 0 then 0. else !tot /. float_of_int !n);
        br_skew_max = !mx;
      }
      :: l)
    per_name []
  |> List.sort (fun a b -> compare a.br_name b.br_name)

let analyse obs =
  let events = Obs.events obs in
  {
    path = critical_path events;
    locks = lock_reports events;
    barriers = barrier_reports events;
  }

(* ------------------------------------------------------------------ *)

let pp_ms ppf s = Format.fprintf ppf "%.3f ms" (s *. 1e3)

let pp ppf t =
  (match t.path with
  | None -> Format.fprintf ppf "critical path: no deliveries in trace@."
  | Some p ->
    Format.fprintf ppf "critical path: %a end-to-end, %d hops, wire %a@."
      pp_ms (p.cp_end -. p.cp_start)
      (List.length p.cp_hops)
      pp_ms p.cp_wire;
    List.iter
      (fun (a, n) -> Format.fprintf ppf "  hops %-10s %d@." a n)
      p.cp_annot_hops;
    List.iter
      (fun (node, dt) ->
        Format.fprintf ppf "  local n%-8d %a@." node pp_ms dt)
      p.cp_local;
    let shown = min 12 (List.length p.cp_hops) in
    if shown > 0 then begin
      Format.fprintf ppf "  last %d hops (causal order):@." shown;
      let tail =
        let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l) in
        drop (List.length p.cp_hops - shown) p.cp_hops
      in
      List.iter
        (fun h ->
          Format.fprintf ppf "    msg#%-5d %-10s n%d -> n%d at %a@." h.hop_id
            h.hop_annot h.hop_src h.hop_dst pp_ms h.hop_send_ts)
        tail
    end);
  List.iter
    (fun l ->
      Format.fprintf ppf
        "lock %-12s %d acquisitions, wait total %a mean %a max %a@."
        l.lk_name l.lk_acquisitions pp_ms l.lk_wait_total pp_ms
        (if l.lk_acquisitions = 0 then 0.
         else l.lk_wait_total /. float_of_int l.lk_acquisitions)
        pp_ms l.lk_wait_max;
      List.iter
        (fun ((src, dst), n) ->
          Format.fprintf ppf "  handoff n%d -> n%d: %d@." src dst n)
        l.lk_handoffs)
    t.locks;
  List.iter
    (fun b ->
      Format.fprintf ppf
        "barrier %-10s %d episodes, skew mean %a max %a@." b.br_name
        b.br_episodes pp_ms b.br_skew_mean pp_ms b.br_skew_max)
    t.barriers
