(** Online consistency auditor.

    One [Audit.t] observes a whole simulated cluster through synchronous
    hooks fired by the message layer ({!on_send}, {!on_forward},
    {!on_store}, {!on_accept}) and by the LRC engine ({!lrc_hooks}).  It
    maintains shadow state — last observed vector clock per node, a mirror
    of each node's peer knowledge, the global interval registry, which
    write notices each node has processed, and per-page application
    history — and checks the paper's invariants as the run unfolds:

    - {b vc-monotonic}: a node's vector clock never goes backwards
      (observed at every send, accept and disposition);
    - {b acquire-dominance}: after accepting a RELEASE, the receiver's
      clock dominates the piggybacked [required_vc] — the sender's clock
      at send time, i.e. the paper's visibility guarantee (§2.1);
    - {b release-nt-required-vc}: the same rule for RELEASE_NT, whose
      gap-detection path (fetching interval descriptions the
      non-transitive piggyback omitted) must still reach [required_vc];
    - {b request-tailoring}: a RELEASE piggyback carries {e exactly} the
      intervals the receiver is not known to have — no gaps below
      [required_vc], nothing the receiver already covered (the precise
      tailoring a REQUEST's piggybacked timestamp enables, §4.3);
    - {b release-nt-foreign-interval}: a non-transitive piggyback only
      carries intervals created by its sender;
    - {b request-vc-stale}: a REQUEST carries the sender's current clock;
    - {b write-notice-lost}: every interval an accept newly covered had
      all its write notices processed at the accepting node;
    - {b page-causal-order}: writes (diffs / installs) are applied to
      each page in causal order — never an interval that some
      already-applied interval causally follows;
    - {b relay-consistent}: a node declared a pure relay for a message
      (the work-queue manager, §2.2) accepted it — "never becomes
      consistent" violated;
    - {b disposition-vc-changed}: a store or forward changed the node's
      vector clock (they must not touch the consistency machinery).

    Violations are recorded (with the offending message's trace id when
    one exists) and also emitted as [audit.violation] trace events and
    counted in the [audit.violations] counter of the registry. *)

module Obs = Carlos_obs.Obs
module Vc = Carlos_dsm.Vc

(** Mirror of [Carlos.Annotation.t]; duplicated here so lib/audit sits
    below lib/carlos in the dependency order. *)
type annotation = Release | Release_nt | Request | None_

val annotation_name : annotation -> string

type violation = {
  check : string;  (** short invariant name, e.g. ["vc-monotonic"] *)
  node : int;  (** node the violation was detected on *)
  time : float;  (** virtual time of detection *)
  trace_id : int option;  (** offending message, when one is implicated *)
  detail : string;
}

type t

(** [create ~obs ~nodes ()] — violations are timestamped by [obs]'s clock
    and mirrored into it as events/counters. *)
val create : ?obs:Obs.t -> nodes:int -> unit -> t

val violations : t -> violation list
(** Oldest first. *)

val violation_count : t -> int

val pp_violation : Format.formatter -> violation -> unit

(** Multi-line report: a summary line, then one line per violation.
    Prints ["audit: ok (0 violations)"] when clean. *)
val pp_report : Format.formatter -> t -> unit

(** End-of-run wire-byte conservation check: records a
    ["cost-conservation"] violation unless the {!Carlos_obs.Cost}
    component counters sum exactly to
    [medium.bytes + datagram.dropped_bytes].  Called by [System.run]
    after the engine drains. *)
val check_conservation : t -> unit

(** {1 Message-layer hooks (called by [Carlos.Node])} *)

(** First transmission of a message (not forwarding hops).  [vc] is the
    sender's live clock; [required_vc]/[nontransitive]/[intervals] come
    from the RELEASE piggyback ([intervals] as [(creator, index)] pairs),
    [sender_vc] from a REQUEST. *)
val on_send :
  t ->
  trace_id:int ->
  src:int ->
  dst:int ->
  annotation:annotation ->
  vc:Vc.t ->
  required_vc:Vc.t option ->
  nontransitive:bool ->
  intervals:(int * int) list ->
  sender_vc:Vc.t option ->
  unit

(** One message of a batch accept.  [vc_before]/[vc_after] bracket the
    whole batch's consistency actions. *)
type accepted = {
  acc_trace_id : int;
  acc_annotation : annotation;
  acc_origin : int;
  acc_required_vc : Vc.t option;
}

val on_accept :
  t -> node:int -> vc_before:Vc.t -> vc_after:Vc.t -> accepted list -> unit

val on_forward :
  t ->
  trace_id:int ->
  node:int ->
  dst:int ->
  vc_before:Vc.t ->
  vc_after:Vc.t ->
  unit

val on_store :
  t -> trace_id:int -> node:int -> vc_before:Vc.t -> vc_after:Vc.t -> unit

(** Declare that [node] must act as a pure relay for message [trace_id]:
    accepting it there is a violation (the work-queue manager's
    never-becomes-consistent property). *)
val expect_relay : t -> trace_id:int -> node:int -> unit

(** {1 LRC hooks}

    The hook record to install with [Lrc.set_hooks] on every node's
    engine (shared: the callbacks carry the node id). *)
val lrc_hooks : t -> Carlos_dsm.Lrc_backend.hooks

(** {1 Central-backend hooks}

    Model-specific invariants for {!Carlos_dsm.Central_backend}:

    - {b central-single-home}: exactly one node ever applies flushes;
    - {b central-version-gap}: the home version of each page advances by
      exactly one per applied flush, and no node fetches a version the
      home never reached;
    - {b central-fetch-stale}: the version a node fetches for a page
      never goes backwards. *)
val central_hooks : t -> Carlos_dsm.Central_backend.hooks

(** {1 Seq-backend hooks}

    Model-specific invariants for {!Carlos_dsm.Seq_backend}:

    - {b seq-stamp-contiguous}: the sequencer issues stamps 1, 2, 3, …
      with no gap or repeat;
    - {b seq-apply-order}: every node applies stamps in exactly that
      order, and never a stamp the sequencer did not issue;
    - {b seq-acquire-coverage}: an acquire only completes once the local
      applied stamp covers the accepted horizon. *)
val seq_hooks : t -> Carlos_dsm.Seq_backend.hooks
