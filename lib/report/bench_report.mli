(** Structured view of a BENCH_PR*.json snapshot, plus the comparison
    and curve-fitting logic behind [bench_diff] and the scaling report.

    A snapshot is an object with a ["runs"] array (the 4-node gate
    matrix) and optionally a ["scaling"] array (the node-count sweep);
    both hold rows of the same shape.  A row is identified by the
    5-tuple (app, variant, backend, config, nodes); every other numeric
    field — including the nested ["components"] object, flattened to
    [components.<name>] — becomes a named metric. *)

type key = {
  app : string;
  variant : string;
  backend : string;
  config : string;
  nodes : int;
}

type row = {
  key : key;
  ok : bool;
  metrics : (string * float) list;  (** sorted by metric name *)
}

val pp_key : Format.formatter -> key -> unit

val rows_of_json : Json.t -> row list
(** All rows of the snapshot: ["runs"] then ["scaling"]. *)

val load : string -> row list
(** [rows_of_json] of [Json.parse_file]. *)

val metric : row -> string -> float option

val selected : (string * string) list -> row -> bool
(** [selected only row] — [row] matches every [ATTR = VALUE] pair of
    [only] (see {!compare}'s [only]). *)

(** {1 Comparison} *)

type delta = {
  d_key : key;
  d_metric : string;
  d_old : float;
  d_new : float;
  d_pct : float;
      (** (new - old) / old * 100; [infinity] when old = 0 and new > 0 *)
}

type comparison = {
  compared : int;  (** rows present in both snapshots *)
  regressions : delta list;  (** increases beyond tolerance *)
  improvements : delta list;  (** decreases beyond tolerance *)
  missing : key list;  (** selected rows of OLD absent from NEW *)
  added : key list;  (** selected rows of NEW absent from OLD *)
}

(** [compare ~fields ~tolerance_pct ~only old new] matches rows by key
    and compares each named field.  [only] filters both sides first:
    every (attr, value) pair must match the key, where attr is one of
    "app", "variant", "backend", "config", "nodes".  A field missing
    from one side of a matched row counts as a regression (reported
    with the other side's value and [nan] for the missing one).
    Increases within [tolerance_pct] percent are ignored; decreases
    beyond it are improvements, never failures. *)
val compare :
  fields:string list ->
  tolerance_pct:float ->
  only:(string * string) list ->
  row list ->
  row list ->
  comparison

val pp_delta : Format.formatter -> delta -> unit

(** {1 Curve fitting} *)

(** [fit_exponent points] is the least-squares slope of [log y] against
    [log x] — the growth exponent b of the model [y = a * x^b] — over
    the points with [x > 0] and [y > 0].  [None] when fewer than two
    distinct [x] survive. *)
val fit_exponent : (float * float) list -> float option
