(* Snapshot rows, comparison and log-log fitting; see bench_report.mli. *)

type key = {
  app : string;
  variant : string;
  backend : string;
  config : string;
  nodes : int;
}

type row = { key : key; ok : bool; metrics : (string * float) list }

let pp_key ppf k =
  Format.fprintf ppf "%s/%s@%s/%s n=%d" k.app k.variant k.backend k.config
    k.nodes

let str field j = Option.value ~default:"" (Json.to_string_opt (Json.member field j))

let row_of_json j =
  let key =
    {
      app = str "app" j;
      variant = str "variant" j;
      backend = str "backend" j;
      config = str "config" j;
      nodes = Option.value ~default:0 (Json.to_int_opt (Json.member "nodes" j));
    }
  in
  let ok = Option.value ~default:true (Json.to_bool_opt (Json.member "ok" j)) in
  let metrics =
    match j with
    | Json.Obj fields ->
      List.concat_map
        (fun (name, v) ->
          match v with
          | Json.Num f when name <> "nodes" -> [ (name, f) ]
          | Json.Obj nested ->
            List.filter_map
              (fun (name', v') ->
                match v' with
                | Json.Num f -> Some (name ^ "." ^ name', f)
                | _ -> None)
              nested
          | _ -> [])
        fields
    | _ -> []
  in
  { key; ok; metrics = List.sort Stdlib.compare metrics }

let rows_of_json j =
  List.map row_of_json
    (Json.to_list (Json.member "runs" j)
    @ Json.to_list (Json.member "scaling" j))

let load file = rows_of_json (Json.parse_file file)

let metric row name = List.assoc_opt name row.metrics

(* ------------------------------------------------------------------ *)

type delta = {
  d_key : key;
  d_metric : string;
  d_old : float;
  d_new : float;
  d_pct : float;
}

type comparison = {
  compared : int;
  regressions : delta list;
  improvements : delta list;
  missing : key list;
  added : key list;
}

let key_attr k = function
  | "app" -> k.app
  | "variant" -> k.variant
  | "backend" -> k.backend
  | "config" -> k.config
  | "nodes" -> string_of_int k.nodes
  | attr -> invalid_arg ("bench_report: unknown row attribute " ^ attr)

let selected only row =
  List.for_all (fun (attr, v) -> key_attr row.key attr = v) only

let pct_change ~old_v ~new_v =
  if old_v = 0.0 then if new_v = 0.0 then 0.0 else infinity
  else (new_v -. old_v) /. old_v *. 100.0

let compare ~fields ~tolerance_pct ~only old_rows new_rows =
  let old_rows = List.filter (selected only) old_rows in
  let new_rows = List.filter (selected only) new_rows in
  let find rows k = List.find_opt (fun r -> r.key = k) rows in
  let compared = ref 0 in
  let regressions = ref [] and improvements = ref [] in
  let missing = ref [] in
  List.iter
    (fun o ->
      match find new_rows o.key with
      | None -> missing := o.key :: !missing
      | Some n ->
        incr compared;
        List.iter
          (fun field ->
            let delta d_old d_new =
              {
                d_key = o.key;
                d_metric = field;
                d_old;
                d_new;
                d_pct = pct_change ~old_v:d_old ~new_v:d_new;
              }
            in
            match (metric o field, metric n field) with
            | None, None -> ()
            | Some ov, None -> regressions := delta ov nan :: !regressions
            | None, Some nv -> regressions := delta nan nv :: !regressions
            | Some ov, Some nv ->
              let d = delta ov nv in
              if d.d_pct > tolerance_pct then
                regressions := d :: !regressions
              else if d.d_pct < -.tolerance_pct then
                improvements := d :: !improvements)
          fields)
    old_rows;
  let added =
    List.filter_map
      (fun n -> if find old_rows n.key = None then Some n.key else None)
      new_rows
  in
  {
    compared = !compared;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    missing = List.rev !missing;
    added;
  }

let pp_delta ppf d =
  Format.fprintf ppf "%a %s: %.9g -> %.9g (%+.2f%%)" pp_key d.d_key d.d_metric
    d.d_old d.d_new d.d_pct

(* ------------------------------------------------------------------ *)

let fit_exponent points =
  let pts =
    List.filter_map
      (fun (x, y) ->
        if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
      points
  in
  let xs = List.sort_uniq Stdlib.compare (List.map fst pts) in
  if List.length xs < 2 then None
  else
    let n = float_of_int (List.length pts) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    let denom = (n *. sxx) -. (sx *. sx) in
    if denom = 0.0 then None else Some (((n *. sxy) -. (sx *. sy)) /. denom)
