(** Minimal JSON reader for the bench snapshots.

    Hand-rolled (the toolchain ships no JSON library) and deliberately
    small: it parses exactly the subset the bench writer emits — objects,
    arrays, double-quoted strings with the standard escapes, numbers,
    booleans and null.  Numbers are all read as [float] (the snapshots
    only contain counts and seconds). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised with a [line:col: message] description. *)

val parse : string -> t

val parse_file : string -> t
(** Reads and parses a whole file.  Raises [Parse_error] or
    [Sys_error]. *)

(** {1 Accessors} *)

val member : string -> t -> t
(** Field of an object; [Null] when absent or not an object. *)

val to_list : t -> t list
(** Elements of an array; [[]] for anything else. *)

val to_float_opt : t -> float option

val to_int_opt : t -> int option

val to_string_opt : t -> string option

val to_bool_opt : t -> bool option
