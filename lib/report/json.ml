(* Minimal recursive-descent JSON reader; see json.mli. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min st.pos (String.length st.src) - 1 do
    if st.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  raise (Parse_error (Printf.sprintf "%d:%d: %s" !line !col msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %C, got %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, got end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then
            fail st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail st "bad \\u escape"
          in
          st.pos <- st.pos + 4;
          (* ASCII subset only; anything wider degrades to '?'. *)
          if code < 128 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?'
        | c -> fail st (Printf.sprintf "bad escape \\%C" c));
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let tok = String.sub st.src start (st.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Num f
  | None -> fail st (Printf.sprintf "bad number %S" tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else
      let rec fields acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail st "expected ',' or '}'"
      in
      fields []
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elems (v :: acc)
        | Some ']' ->
          advance st;
          Arr (List.rev (v :: acc))
        | _ -> fail st "expected ',' or ']'"
      in
      elems []
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some c -> fail st (Printf.sprintf "trailing %C after value" c));
  v

let parse_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function Arr l -> l | _ -> []

let to_float_opt = function Num f -> Some f | _ -> None

let to_int_opt = function Num f -> Some (int_of_float f) | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
