(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5), plus the §5.4 annotation-cost study, the
   TreadMarks-vs-CarlOS comparison, and a Bechamel micro-suite (one
   Test.make per table) measuring the real cost of each reproduced
   workload on the host.

   Usage:
     bench/main.exe [table1] [table2] [table3] [fig2] [sec54] [tmcmp] [micro]
   With no argument, everything except [micro] runs. *)

module System = Carlos.System
module Backend = Carlos_dsm.Backend
module Cost = Carlos_dsm.Cost
module Tsp = Carlos_apps.Tsp
module Qsort = Carlos_apps.Qsort
module Water = Carlos_apps.Water
module Grid = Carlos_apps.Grid
module Harness = Carlos_apps.Harness

let ppf = Format.std_formatter

let section title = Format.fprintf ppf "@.=== %s ===@." title

let paper_note rows = Format.fprintf ppf "  paper: %s@." rows

(* ------------------------------------------------------------------ *)
(* Table 1: TSP *)

let run_tsp ?(costs = Cost.default) variant nodes =
  let cfg = { (System.default_config ~nodes) with System.costs = costs } in
  let sys = System.create cfg in
  Tsp.run sys variant Tsp.default_params

let table1 () =
  section "Table 1: TSP on CarlOS (lock vs message-passing work queue)";
  let reference = Tsp.solve_reference Tsp.default_params in
  Harness.pp_header ppf ();
  List.iter
    (fun variant ->
      let base = ref 1.0 in
      List.iter
        (fun nodes ->
          let r = run_tsp variant nodes in
          if nodes = 1 then base := r.Tsp.report.System.wall;
          Harness.pp_row ppf
            (Harness.row
               ~label:("TSP/" ^ Tsp.variant_name variant)
               ~nodes ~base:!base ~ok:(r.Tsp.best = reference) r.Tsp.report))
        [ 1; 2; 3; 4 ])
    [ Tsp.Lock; Tsp.Hybrid ];
  paper_note
    "lock  52.3/39.7/31.8s (1.64/2.16/2.69), 5838/8626/10403 msgs; hybrid \
     44.9/31.0/22.0s (1.91/2.76/3.89), 1204/1916/2198 msgs"

(* ------------------------------------------------------------------ *)
(* Table 2: Quicksort *)

let run_qsort variant nodes =
  let sys = System.create (Qsort.config ~nodes Qsort.default_params) in
  Qsort.run sys variant Qsort.default_params

let table2 () =
  section "Table 2: Quicksort on CarlOS (lock vs message queue variants)";
  Harness.pp_header ppf ();
  let base = ref 1.0 in
  List.iter
    (fun (variant, node_counts) ->
      List.iter
        (fun nodes ->
          let r = run_qsort variant nodes in
          if variant = Qsort.Lock && nodes = 1 then
            base := r.Qsort.report.System.wall;
          Harness.pp_row ppf
            (Harness.row
               ~label:("QS/" ^ Qsort.variant_name variant)
               ~nodes ~base:!base ~ok:r.Qsort.sorted r.Qsort.report))
        node_counts)
    [
      (Qsort.Lock, [ 1; 2; 3; 4 ]);
      (Qsort.Hybrid1, [ 2; 3; 4 ]);
      (Qsort.Hybrid2, [ 4 ]);
      (Qsort.Hybrid_nf, [ 4 ]);
    ];
  paper_note
    "lock 19.6/18.6/17.3s (1.36/1.44/1.54); hybrid-1 17.5/13.9/11.8s \
     (1.53/1.93/2.27); hybrid-2@4 14.2s (1.89); no-forwarding ~ hybrid-2"

(* ------------------------------------------------------------------ *)
(* Table 3: Water *)

let run_water ?(costs = Cost.default) variant nodes =
  let cfg = { (System.default_config ~nodes) with System.costs = costs } in
  let sys = System.create cfg in
  Water.run sys variant Water.default_params

let table3 () =
  section "Table 3: Water on CarlOS (molecule locks vs shipped updates)";
  Harness.pp_header ppf ();
  List.iter
    (fun variant ->
      let base = ref 1.0 in
      List.iter
        (fun nodes ->
          let r = run_water variant nodes in
          if nodes = 1 then base := r.Water.report.System.wall;
          Harness.pp_row ppf
            (Harness.row
               ~label:("Water/" ^ Water.variant_name variant)
               ~nodes ~base:!base ~ok:r.Water.energy_ok r.Water.report))
        [ 1; 2; 3; 4 ])
    [ Water.Lock; Water.Hybrid ];
  paper_note
    "lock 23.3/19.4/17.3s (1.34/1.61/1.81), 6920/11348/15423 msgs; hybrid \
     18.4/14.4/12.1s (1.70/2.20/2.58), 2546/4155/5634 msgs"

(* ------------------------------------------------------------------ *)
(* Figure 2: execution breakdown on four nodes *)

let fig2 () =
  section
    "Figure 2: execution breakdown on 4 nodes (per-node averages, seconds)";
  let runs =
    [
      ("TSP/lock", (run_tsp Tsp.Lock 4).Tsp.report);
      ("TSP/hybrid", (run_tsp Tsp.Hybrid 4).Tsp.report);
      ("QS/lock", (run_qsort Qsort.Lock 4).Qsort.report);
      ("QS/hybrid", (run_qsort Qsort.Hybrid1 4).Qsort.report);
      ("Water/lock", (run_water Water.Lock 4).Water.report);
      ("Water/hybrid", (run_water Water.Hybrid 4).Water.report);
    ]
  in
  Harness.pp_breakdown ppf runs;
  paper_note
    "totals 31.8/22.0, 17.3/11.8, 17.3/12.1 s; idle dominates the \
     overheads, all three overhead components shrink in the hybrids"

(* ------------------------------------------------------------------ *)
(* Section 5.4: the choice of annotations *)

let sec54 () =
  section "Section 5.4: annotation-cost study";
  let c = Cost.default in
  Format.fprintf ppf
    "  model costs: REQUEST over NONE = %.0f us/end; RELEASE fixed extra = \
     %.0f us; write-notice apply = %.0f us@."
    (c.Cost.vc_piggyback *. 1e6)
    (c.Cost.release_fixed *. 1e6)
    (c.Cost.write_notice_apply *. 1e6);
  paper_note
    "REQUEST vs NONE 5-15 us; RELEASE ~30 us + write notices at 42-141 us";
  Harness.pp_header ppf ();
  let tsp_h = run_tsp Tsp.Hybrid 4 in
  let tsp_r = run_tsp Tsp.Hybrid_all_release 4 in
  let qs_h = run_qsort Qsort.Hybrid1 4 in
  let qs_r = run_qsort Qsort.Hybrid2 4 in
  let w_h = run_water Water.Hybrid 4 in
  let w_r = run_water Water.Hybrid_all_release 4 in
  let reference = Tsp.solve_reference Tsp.default_params in
  let pct a b = 100.0 *. (b -. a) /. a in
  Harness.pp_row ppf
    (Harness.row ~label:"TSP/hybrid" ~nodes:4
       ~base:tsp_h.Tsp.report.System.wall
       ~ok:(tsp_h.Tsp.best = reference) tsp_h.Tsp.report);
  Harness.pp_row ppf
    (Harness.row ~label:"TSP/all-RELEASE" ~nodes:4
       ~base:tsp_h.Tsp.report.System.wall
       ~ok:(tsp_r.Tsp.best = reference) tsp_r.Tsp.report);
  Harness.pp_row ppf
    (Harness.row ~label:"QS/hybrid-1" ~nodes:4
       ~base:qs_h.Qsort.report.System.wall ~ok:qs_h.Qsort.sorted
       qs_h.Qsort.report);
  Harness.pp_row ppf
    (Harness.row ~label:"QS/all-RELEASE(H2)" ~nodes:4
       ~base:qs_h.Qsort.report.System.wall ~ok:qs_r.Qsort.sorted
       qs_r.Qsort.report);
  Harness.pp_row ppf
    (Harness.row ~label:"Water/hybrid" ~nodes:4
       ~base:w_h.Water.report.System.wall ~ok:w_h.Water.energy_ok
       w_h.Water.report);
  Harness.pp_row ppf
    (Harness.row ~label:"Water/all-RELEASE" ~nodes:4
       ~base:w_h.Water.report.System.wall ~ok:w_r.Water.energy_ok
       w_r.Water.report);
  Format.fprintf ppf
    "  all-RELEASE penalty: TSP %+.1f%%, QS %+.1f%%, Water %+.1f%%@."
    (pct tsp_h.Tsp.report.System.wall tsp_r.Tsp.report.System.wall)
    (pct qs_h.Qsort.report.System.wall qs_r.Qsort.report.System.wall)
    (pct w_h.Water.report.System.wall w_r.Water.report.System.wall);
  paper_note "penalties: TSP +2.4%, Water +1.4%, QS significant";
  (* The same ablation on a modern low-latency interconnect (paper §6:
     "in other contexts, such as more modern networks ... the choice of
     annotations will become more important"). *)
  let tsp_h' = run_tsp ~costs:Cost.fast_network Tsp.Hybrid 4 in
  let tsp_r' = run_tsp ~costs:Cost.fast_network Tsp.Hybrid_all_release 4 in
  let w_h' = run_water ~costs:Cost.fast_network Water.Hybrid 4 in
  let w_r' = run_water ~costs:Cost.fast_network Water.Hybrid_all_release 4 in
  Format.fprintf ppf
    "  fast-network all-RELEASE penalty: TSP %+.1f%%, Water %+.1f%% (vs \
     %+.1f%%, %+.1f%% on Ethernet)@."
    (pct tsp_h'.Tsp.report.System.wall tsp_r'.Tsp.report.System.wall)
    (pct w_h'.Water.report.System.wall w_r'.Water.report.System.wall)
    (pct tsp_h.Tsp.report.System.wall tsp_r.Tsp.report.System.wall)
    (pct w_h.Water.report.System.wall w_r.Water.report.System.wall)

(* ------------------------------------------------------------------ *)
(* TreadMarks vs CarlOS (paper §5: 5-6% for TSP and QS, none for Water) *)

let tmcmp () =
  section "TreadMarks vs CarlOS (lock versions, 4 nodes)";
  let pct a b = 100.0 *. (b -. a) /. a in
  let tsp_tm = run_tsp ~costs:Cost.treadmarks Tsp.Lock 4 in
  let tsp_c = run_tsp Tsp.Lock 4 in
  let qs_tm =
    let p = Qsort.default_params in
    let cfg =
      { (Qsort.config ~nodes:4 p) with System.costs = Cost.treadmarks }
    in
    Qsort.run (System.create cfg) Qsort.Lock p
  in
  let qs_c = run_qsort Qsort.Lock 4 in
  let w_tm = run_water ~costs:Cost.treadmarks Water.Lock 4 in
  let w_c = run_water Water.Lock 4 in
  Format.fprintf ppf "  TSP   : TreadMarks %.1fs, CarlOS %.1fs (%+.1f%%)@."
    tsp_tm.Tsp.report.System.wall tsp_c.Tsp.report.System.wall
    (pct tsp_tm.Tsp.report.System.wall tsp_c.Tsp.report.System.wall);
  Format.fprintf ppf "  QS    : TreadMarks %.1fs, CarlOS %.1fs (%+.1f%%)@."
    qs_tm.Qsort.report.System.wall qs_c.Qsort.report.System.wall
    (pct qs_tm.Qsort.report.System.wall qs_c.Qsort.report.System.wall);
  Format.fprintf ppf "  Water : TreadMarks %.1fs, CarlOS %.1fs (%+.1f%%)@."
    w_tm.Water.report.System.wall w_c.Water.report.System.wall
    (pct w_tm.Water.report.System.wall w_c.Water.report.System.wall);
  paper_note "TSP and Quicksort ~5-6% slower on CarlOS; Water equal"

(* ------------------------------------------------------------------ *)
(* Coherence-strategy ablation: the paper implemented only invalidation
   ("Thus far, we have used only the invalidation strategy in CarlOS")
   but designed the messages to carry diffs for update and hybrid
   strategies (§4.3); §3 argues update coherence makes the
   notify-with-RELEASE pattern eager.  This ablation measures all three
   on Water, where position pages are re-read by every node each step. *)

let strategies () =
  section "Ablation: coherence strategy (Water, 4 nodes)";
  Harness.pp_header ppf ();
  List.iter
    (fun (name, strategy) ->
      List.iter
        (fun (vname, variant) ->
          let cfg =
            { (System.default_config ~nodes:4) with
              System.strategy
            }
          in
          let sys = System.create cfg in
          let r = Water.run sys variant Water.default_params in
          Harness.pp_row ppf
            (Harness.row
               ~label:(Printf.sprintf "Water/%s/%s" vname name)
               ~nodes:4 ~base:r.Water.report.System.wall
               ~ok:r.Water.energy_ok r.Water.report))
        [ ("lock", Water.Lock); ("hybrid", Water.Hybrid) ])
    [
      ("invalidate", Carlos_dsm.Lrc_backend.Invalidate);
      ("update", Carlos_dsm.Lrc_backend.Update);
      ("hybrid-upd", Carlos_dsm.Lrc_backend.Hybrid_update);
    ];
  Format.fprintf ppf
    "  expectation: update ships data eagerly with each RELEASE — fewer      faults and diff requests, larger messages (paper §3, §4.3)@."

(* ------------------------------------------------------------------ *)
(* Network ablation: §4 plans a high-performance ATM upgrade and §5.4
   argues vector timestamps and annotation costs matter more there ("the
   vector timestamp ... is a large part of an ATM frame").  Re-run the
   4-node experiments on an ATM-class fabric (155 Mbit/s, 10 us latency,
   lean host costs). *)

let atm () =
  section "Ablation: ATM-class network (155 Mbit/s, 10 us, 4 nodes)";
  let atm_cfg ~nodes =
    {
      (System.default_config ~nodes) with
      System.bandwidth = 19.4e6;
      latency = 10e-6;
      costs = Cost.fast_network;
    }
  in
  Harness.pp_header ppf ();
  let tsp v =
    let r = Tsp.run (System.create (atm_cfg ~nodes:4)) v Tsp.default_params in
    Harness.pp_row ppf
      (Harness.row
         ~label:("TSP/" ^ Tsp.variant_name v)
         ~nodes:4 ~base:r.Tsp.report.System.wall
         ~ok:(r.Tsp.best = Tsp.solve_reference Tsp.default_params)
         r.Tsp.report);
    r.Tsp.report.System.wall
  in
  let water v =
    let r =
      Water.run (System.create (atm_cfg ~nodes:4)) v Water.default_params
    in
    Harness.pp_row ppf
      (Harness.row
         ~label:("Water/" ^ Water.variant_name v)
         ~nodes:4 ~base:r.Water.report.System.wall ~ok:r.Water.energy_ok
         r.Water.report);
    r.Water.report.System.wall
  in
  let tl = tsp Tsp.Lock and th = tsp Tsp.Hybrid in
  let wl = water Water.Lock and wh = water Water.Hybrid in
  Format.fprintf ppf
    "  lock-vs-hybrid gap on ATM: TSP %.1f%%, Water %.1f%% -- on a fast \
     fabric the hybrid's advantage nearly vanishes: its benefit came from \
     avoiding expensive messaging (the paper's par.6 Amdahl's-law point)@."
    (100.0 *. (tl -. th) /. tl)
    (100.0 *. (wl -. wh) /. wl)

(* ------------------------------------------------------------------ *)
(* The §3 motif: an iterative finite-difference solver where "it is
   easier to use a shared-memory style of communication combined with a
   notification message marked RELEASE".  Global barriers vs
   neighbour-only notifications, under invalidate and update coherence. *)

let grid () =
  section "Paper §3 motif: grid relaxation (96x96 Jacobi, 4 nodes)";
  Harness.pp_header ppf ();
  List.iter
    (fun (sname, strategy) ->
      List.iter
        (fun variant ->
          let sys = System.create (Grid.config ~nodes:4 ~strategy Grid.default_params) in
          let r = Grid.run sys variant Grid.default_params in
          Harness.pp_row ppf
            (Harness.row
               ~label:
                 (Printf.sprintf "Grid/%s/%s" (Grid.variant_name variant)
                    sname)
               ~nodes:4 ~base:r.Grid.report.System.wall ~ok:r.Grid.exact
               r.Grid.report))
        [ Grid.Barrier; Grid.Hybrid ])
    [
      ("invalidate", Carlos_dsm.Lrc_backend.Invalidate);
      ("update", Carlos_dsm.Lrc_backend.Update);
    ];
  Format.fprintf ppf
    "  neighbour notifications replace global barriers; under the update      strategy the boundary rows travel with the RELEASE (par.3)@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite: host cost of regenerating each table at reduced
   scale (one Test.make per table/figure). *)

let micro () =
  section "Bechamel micro-suite (host time per reduced-scale experiment)";
  let open Bechamel in
  let tiny_tsp () =
    let p = { Tsp.default_params with Tsp.cities = 10; prefix_depth = 2 } in
    ignore
      (Tsp.run (System.create (System.default_config ~nodes:2)) Tsp.Hybrid p)
  in
  let tiny_qsort () =
    let p = { Qsort.default_params with Qsort.elements = 16 * 1024 } in
    ignore
      (Qsort.run (System.create (Qsort.config ~nodes:2 p)) Qsort.Hybrid1 p)
  in
  let tiny_water () =
    let p = { Water.default_params with Water.molecules = 64; steps = 1 } in
    ignore
      (Water.run
         (System.create (System.default_config ~nodes:2))
         Water.Hybrid p)
  in
  let tiny_fig2 () =
    let p = { Water.default_params with Water.molecules = 48; steps = 1 } in
    ignore
      (Water.run (System.create (System.default_config ~nodes:4)) Water.Lock p)
  in
  let tests =
    [
      Test.make ~name:"table1-tsp" (Staged.stage tiny_tsp);
      Test.make ~name:"table2-qsort" (Staged.stage tiny_qsort);
      Test.make ~name:"table3-water" (Staged.stage tiny_water);
      Test.make ~name:"fig2-breakdown" (Staged.stage tiny_fig2);
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Format.fprintf ppf "  %-24s %10.3f ms/run@." name (est /. 1e6)
          | Some _ | None ->
            Format.fprintf ppf "  %-24s (no estimate)@." name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Machine-readable snapshot ([-o FILE], default BENCH_PR6.json):
   per-app wall clock, message and wire totals for the 4-node
   backend x app x variant matrix, generated from the three lists below
   rather than copy-pasted rows.  The LRC backend additionally runs in
   both protocol configs — "legacy" (per-frame acks, serial unbatched
   fetching) and "batched" — to stay comparable with BENCH_PR3.json; the
   other backends have no unbatched arm.  Format documented in
   EXPERIMENTS.md. *)

let output_file = ref "BENCH_PR6.json"

type json_app = {
  ja_name : string;
  ja_config : int -> System.config; (* nodes *)
  ja_variants : (string * (System.t -> System.report * bool)) list;
}

let bench_json () =
  let module Obs = Carlos_obs.Obs in
  let nodes = 4 in
  let runs = ref [] in
  let failed = ref [] in
  let measure ~app ~variant ~backend ~mode f =
    let host0 = Sys.time () in
    let sys, report, ok = f () in
    if not ok then
      failed :=
        Printf.sprintf "%s/%s/%s/%s" app variant backend mode :: !failed;
    let host = Sys.time () -. host0 in
    let c name =
      Obs.counter_value (System.obs sys) ~node:Obs.global_node ~layer:Obs.Net
        name
    in
    runs :=
      Printf.sprintf
        {|    { "app": %S, "variant": %S, "backend": %S, "config": %S, "nodes": %d, "wall_s": %.6f, "messages": %d, "bytes": %d, "frames": %d, "wire_bytes": %d, "acks": %d, "acks_coalesced": %d, "diff_requests": %d, "ok": %b, "host_s": %.3f }|}
        app variant backend mode nodes report.System.wall
        report.System.messages report.System.message_bytes (c "medium.frames")
        (c "medium.bytes") (c "sw.acks") (c "sw.acks_coalesced")
        report.System.diff_requests ok host
      :: !runs
  in
  let reference = Tsp.solve_reference Tsp.default_params in
  let apps =
    [
      {
        ja_name = "tsp";
        ja_config = (fun nodes -> System.default_config ~nodes);
        ja_variants =
          List.map
            (fun (name, variant) ->
              ( name,
                fun sys ->
                  let r = Tsp.run sys variant Tsp.default_params in
                  (r.Tsp.report, r.Tsp.best = reference) ))
            [ ("lock", Tsp.Lock); ("hybrid", Tsp.Hybrid) ];
      };
      {
        ja_name = "qsort";
        ja_config = (fun nodes -> Qsort.config ~nodes Qsort.default_params);
        ja_variants =
          List.map
            (fun (name, variant) ->
              ( name,
                fun sys ->
                  let r = Qsort.run sys variant Qsort.default_params in
                  (r.Qsort.report, r.Qsort.sorted) ))
            [ ("lock", Qsort.Lock); ("hybrid", Qsort.Hybrid1) ];
      };
      {
        ja_name = "water";
        ja_config = (fun nodes -> System.default_config ~nodes);
        ja_variants =
          List.map
            (fun (name, variant) ->
              ( name,
                fun sys ->
                  let r = Water.run sys variant Water.default_params in
                  (r.Water.report, r.Water.energy_ok) ))
            [ ("lock", Water.Lock); ("hybrid", Water.Hybrid) ];
      };
      {
        ja_name = "grid";
        ja_config = (fun nodes -> Grid.config ~nodes Grid.default_params);
        ja_variants =
          List.map
            (fun (name, variant) ->
              ( name,
                fun sys ->
                  let r = Grid.run sys variant Grid.default_params in
                  (r.Grid.report, r.Grid.exact) ))
            [ ("lock", Grid.Barrier); ("hybrid", Grid.Hybrid) ];
      };
    ]
  in
  List.iter
    (fun backend ->
      let modes =
        match backend with
        | Backend.Lrc ->
          [ ("legacy", System.legacy_config); ("batched", Fun.id) ]
        | Backend.Central | Backend.Seq -> [ ("batched", Fun.id) ]
      in
      List.iter
        (fun (mode, tweak) ->
          List.iter
            (fun ja ->
              List.iter
                (fun (vname, run) ->
                  measure ~app:ja.ja_name ~variant:vname
                    ~backend:(Backend.kind_to_string backend) ~mode (fun () ->
                      let cfg =
                        { (tweak (ja.ja_config nodes)) with System.backend }
                      in
                      let sys = System.create cfg in
                      let report, ok = run sys in
                      (sys, report, ok)))
                ja.ja_variants)
            apps)
        modes)
    Backend.all_kinds;
  let oc = open_out !output_file in
  Printf.fprintf oc "{\n  \"nodes\": %d,\n  \"runs\": [\n%s\n  ]\n}\n" nodes
    (String.concat ",\n" (List.rev !runs));
  close_out oc;
  Format.fprintf ppf "wrote %s (%d runs)@." !output_file (List.length !runs);
  if !failed <> [] then begin
    Format.fprintf ppf "FAILED app-level checks: %s@."
      (String.concat ", " (List.rev !failed));
    Format.pp_print_flush ppf ();
    exit 1
  end

(* ------------------------------------------------------------------ *)

let () =
  let all =
    [ table1; table2; table3; fig2; sec54; tmcmp; strategies; atm; grid ]
  in
  let named =
    [
      ("table1", table1);
      ("table2", table2);
      ("table3", table3);
      ("fig2", fig2);
      ("sec54", sec54);
      ("tmcmp", tmcmp);
      ("strategies", strategies);
      ("atm", atm);
      ("grid", grid);
      ("micro", micro);
      ("json", bench_json);
    ]
  in
  (* Pull "-o FILE" (snapshot destination for the json bench) out of the
     argument list before dispatching bench names. *)
  let rec strip_output = function
    | "-o" :: file :: rest ->
      output_file := file;
      strip_output rest
    | [ "-o" ] ->
      Format.fprintf ppf "-o requires a file argument@.";
      Format.pp_print_flush ppf ();
      exit 2
    | arg :: rest -> arg :: strip_output rest
    | [] -> []
  in
  let args = strip_output (List.tl (Array.to_list Sys.argv)) in
  (match args with
  | [] -> List.iter (fun f -> f ()) all
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name named with
        | Some f -> f ()
        | None ->
          Format.fprintf ppf "unknown bench %s (have: %s)@." name
            (String.concat ", " (List.map fst named)))
      names);
  Format.pp_print_flush ppf ()
