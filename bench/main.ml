(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5), plus the §5.4 annotation-cost study, the
   TreadMarks-vs-CarlOS comparison, and a Bechamel micro-suite (one
   Test.make per table) measuring the real cost of each reproduced
   workload on the host.

   Usage:
     bench/main.exe [-j N] [-o FILE] [-n LIST] [table1] [table2] [table3]
                    [fig2] [sec54] [tmcmp] [micro] [json] [scaling] ...
   With no argument, everything except [micro] runs.  [-j N] fans the
   snapshot benches' rows across N domains (default
   [Domain.recommended_domain_count ()]); the output is identical for
   every N. *)

module System = Carlos.System
module Backend = Carlos_dsm.Backend
module Cost = Carlos_dsm.Cost
module Tsp = Carlos_apps.Tsp
module Qsort = Carlos_apps.Qsort
module Water = Carlos_apps.Water
module Grid = Carlos_apps.Grid
module Harness = Carlos_apps.Harness

let ppf = Format.std_formatter

let section title = Format.fprintf ppf "@.=== %s ===@." title

let paper_note rows = Format.fprintf ppf "  paper: %s@." rows

(* ------------------------------------------------------------------ *)
(* Table 1: TSP *)

let run_tsp ?(costs = Cost.default) variant nodes =
  let cfg = { (System.default_config ~nodes) with System.costs = costs } in
  let sys = System.create cfg in
  Tsp.run sys variant Tsp.default_params

let table1 () =
  section "Table 1: TSP on CarlOS (lock vs message-passing work queue)";
  let reference = Tsp.solve_reference Tsp.default_params in
  Harness.pp_header ppf ();
  List.iter
    (fun variant ->
      let base = ref 1.0 in
      List.iter
        (fun nodes ->
          let r = run_tsp variant nodes in
          if nodes = 1 then base := r.Tsp.report.System.wall;
          Harness.pp_row ppf
            (Harness.row
               ~label:("TSP/" ^ Tsp.variant_name variant)
               ~nodes ~base:!base ~ok:(r.Tsp.best = reference) r.Tsp.report))
        [ 1; 2; 3; 4 ])
    [ Tsp.Lock; Tsp.Hybrid ];
  paper_note
    "lock  52.3/39.7/31.8s (1.64/2.16/2.69), 5838/8626/10403 msgs; hybrid \
     44.9/31.0/22.0s (1.91/2.76/3.89), 1204/1916/2198 msgs"

(* ------------------------------------------------------------------ *)
(* Table 2: Quicksort *)

let run_qsort variant nodes =
  let sys = System.create (Qsort.config ~nodes Qsort.default_params) in
  Qsort.run sys variant Qsort.default_params

let table2 () =
  section "Table 2: Quicksort on CarlOS (lock vs message queue variants)";
  Harness.pp_header ppf ();
  let base = ref 1.0 in
  List.iter
    (fun (variant, node_counts) ->
      List.iter
        (fun nodes ->
          let r = run_qsort variant nodes in
          if variant = Qsort.Lock && nodes = 1 then
            base := r.Qsort.report.System.wall;
          Harness.pp_row ppf
            (Harness.row
               ~label:("QS/" ^ Qsort.variant_name variant)
               ~nodes ~base:!base ~ok:r.Qsort.sorted r.Qsort.report))
        node_counts)
    [
      (Qsort.Lock, [ 1; 2; 3; 4 ]);
      (Qsort.Hybrid1, [ 2; 3; 4 ]);
      (Qsort.Hybrid2, [ 4 ]);
      (Qsort.Hybrid_nf, [ 4 ]);
    ];
  paper_note
    "lock 19.6/18.6/17.3s (1.36/1.44/1.54); hybrid-1 17.5/13.9/11.8s \
     (1.53/1.93/2.27); hybrid-2@4 14.2s (1.89); no-forwarding ~ hybrid-2"

(* ------------------------------------------------------------------ *)
(* Table 3: Water *)

let run_water ?(costs = Cost.default) variant nodes =
  let cfg = { (System.default_config ~nodes) with System.costs = costs } in
  let sys = System.create cfg in
  Water.run sys variant Water.default_params

let table3 () =
  section "Table 3: Water on CarlOS (molecule locks vs shipped updates)";
  Harness.pp_header ppf ();
  List.iter
    (fun variant ->
      let base = ref 1.0 in
      List.iter
        (fun nodes ->
          let r = run_water variant nodes in
          if nodes = 1 then base := r.Water.report.System.wall;
          Harness.pp_row ppf
            (Harness.row
               ~label:("Water/" ^ Water.variant_name variant)
               ~nodes ~base:!base ~ok:r.Water.energy_ok r.Water.report))
        [ 1; 2; 3; 4 ])
    [ Water.Lock; Water.Hybrid ];
  paper_note
    "lock 23.3/19.4/17.3s (1.34/1.61/1.81), 6920/11348/15423 msgs; hybrid \
     18.4/14.4/12.1s (1.70/2.20/2.58), 2546/4155/5634 msgs"

(* ------------------------------------------------------------------ *)
(* Figure 2: execution breakdown on four nodes *)

let fig2 () =
  section
    "Figure 2: execution breakdown on 4 nodes (per-node averages, seconds)";
  let runs =
    [
      ("TSP/lock", (run_tsp Tsp.Lock 4).Tsp.report);
      ("TSP/hybrid", (run_tsp Tsp.Hybrid 4).Tsp.report);
      ("QS/lock", (run_qsort Qsort.Lock 4).Qsort.report);
      ("QS/hybrid", (run_qsort Qsort.Hybrid1 4).Qsort.report);
      ("Water/lock", (run_water Water.Lock 4).Water.report);
      ("Water/hybrid", (run_water Water.Hybrid 4).Water.report);
    ]
  in
  Harness.pp_breakdown ppf runs;
  paper_note
    "totals 31.8/22.0, 17.3/11.8, 17.3/12.1 s; idle dominates the \
     overheads, all three overhead components shrink in the hybrids"

(* ------------------------------------------------------------------ *)
(* Section 5.4: the choice of annotations *)

let sec54 () =
  section "Section 5.4: annotation-cost study";
  let c = Cost.default in
  Format.fprintf ppf
    "  model costs: REQUEST over NONE = %.0f us/end; RELEASE fixed extra = \
     %.0f us; write-notice apply = %.0f us@."
    (c.Cost.vc_piggyback *. 1e6)
    (c.Cost.release_fixed *. 1e6)
    (c.Cost.write_notice_apply *. 1e6);
  paper_note
    "REQUEST vs NONE 5-15 us; RELEASE ~30 us + write notices at 42-141 us";
  Harness.pp_header ppf ();
  let tsp_h = run_tsp Tsp.Hybrid 4 in
  let tsp_r = run_tsp Tsp.Hybrid_all_release 4 in
  let qs_h = run_qsort Qsort.Hybrid1 4 in
  let qs_r = run_qsort Qsort.Hybrid2 4 in
  let w_h = run_water Water.Hybrid 4 in
  let w_r = run_water Water.Hybrid_all_release 4 in
  let reference = Tsp.solve_reference Tsp.default_params in
  let pct a b = 100.0 *. (b -. a) /. a in
  Harness.pp_row ppf
    (Harness.row ~label:"TSP/hybrid" ~nodes:4
       ~base:tsp_h.Tsp.report.System.wall
       ~ok:(tsp_h.Tsp.best = reference) tsp_h.Tsp.report);
  Harness.pp_row ppf
    (Harness.row ~label:"TSP/all-RELEASE" ~nodes:4
       ~base:tsp_h.Tsp.report.System.wall
       ~ok:(tsp_r.Tsp.best = reference) tsp_r.Tsp.report);
  Harness.pp_row ppf
    (Harness.row ~label:"QS/hybrid-1" ~nodes:4
       ~base:qs_h.Qsort.report.System.wall ~ok:qs_h.Qsort.sorted
       qs_h.Qsort.report);
  Harness.pp_row ppf
    (Harness.row ~label:"QS/all-RELEASE(H2)" ~nodes:4
       ~base:qs_h.Qsort.report.System.wall ~ok:qs_r.Qsort.sorted
       qs_r.Qsort.report);
  Harness.pp_row ppf
    (Harness.row ~label:"Water/hybrid" ~nodes:4
       ~base:w_h.Water.report.System.wall ~ok:w_h.Water.energy_ok
       w_h.Water.report);
  Harness.pp_row ppf
    (Harness.row ~label:"Water/all-RELEASE" ~nodes:4
       ~base:w_h.Water.report.System.wall ~ok:w_r.Water.energy_ok
       w_r.Water.report);
  Format.fprintf ppf
    "  all-RELEASE penalty: TSP %+.1f%%, QS %+.1f%%, Water %+.1f%%@."
    (pct tsp_h.Tsp.report.System.wall tsp_r.Tsp.report.System.wall)
    (pct qs_h.Qsort.report.System.wall qs_r.Qsort.report.System.wall)
    (pct w_h.Water.report.System.wall w_r.Water.report.System.wall);
  paper_note "penalties: TSP +2.4%, Water +1.4%, QS significant";
  (* The same ablation on a modern low-latency interconnect (paper §6:
     "in other contexts, such as more modern networks ... the choice of
     annotations will become more important"). *)
  let tsp_h' = run_tsp ~costs:Cost.fast_network Tsp.Hybrid 4 in
  let tsp_r' = run_tsp ~costs:Cost.fast_network Tsp.Hybrid_all_release 4 in
  let w_h' = run_water ~costs:Cost.fast_network Water.Hybrid 4 in
  let w_r' = run_water ~costs:Cost.fast_network Water.Hybrid_all_release 4 in
  Format.fprintf ppf
    "  fast-network all-RELEASE penalty: TSP %+.1f%%, Water %+.1f%% (vs \
     %+.1f%%, %+.1f%% on Ethernet)@."
    (pct tsp_h'.Tsp.report.System.wall tsp_r'.Tsp.report.System.wall)
    (pct w_h'.Water.report.System.wall w_r'.Water.report.System.wall)
    (pct tsp_h.Tsp.report.System.wall tsp_r.Tsp.report.System.wall)
    (pct w_h.Water.report.System.wall w_r.Water.report.System.wall)

(* ------------------------------------------------------------------ *)
(* TreadMarks vs CarlOS (paper §5: 5-6% for TSP and QS, none for Water) *)

let tmcmp () =
  section "TreadMarks vs CarlOS (lock versions, 4 nodes)";
  let pct a b = 100.0 *. (b -. a) /. a in
  let tsp_tm = run_tsp ~costs:Cost.treadmarks Tsp.Lock 4 in
  let tsp_c = run_tsp Tsp.Lock 4 in
  let qs_tm =
    let p = Qsort.default_params in
    let cfg =
      { (Qsort.config ~nodes:4 p) with System.costs = Cost.treadmarks }
    in
    Qsort.run (System.create cfg) Qsort.Lock p
  in
  let qs_c = run_qsort Qsort.Lock 4 in
  let w_tm = run_water ~costs:Cost.treadmarks Water.Lock 4 in
  let w_c = run_water Water.Lock 4 in
  Format.fprintf ppf "  TSP   : TreadMarks %.1fs, CarlOS %.1fs (%+.1f%%)@."
    tsp_tm.Tsp.report.System.wall tsp_c.Tsp.report.System.wall
    (pct tsp_tm.Tsp.report.System.wall tsp_c.Tsp.report.System.wall);
  Format.fprintf ppf "  QS    : TreadMarks %.1fs, CarlOS %.1fs (%+.1f%%)@."
    qs_tm.Qsort.report.System.wall qs_c.Qsort.report.System.wall
    (pct qs_tm.Qsort.report.System.wall qs_c.Qsort.report.System.wall);
  Format.fprintf ppf "  Water : TreadMarks %.1fs, CarlOS %.1fs (%+.1f%%)@."
    w_tm.Water.report.System.wall w_c.Water.report.System.wall
    (pct w_tm.Water.report.System.wall w_c.Water.report.System.wall);
  paper_note "TSP and Quicksort ~5-6% slower on CarlOS; Water equal"

(* ------------------------------------------------------------------ *)
(* Coherence-strategy ablation: the paper implemented only invalidation
   ("Thus far, we have used only the invalidation strategy in CarlOS")
   but designed the messages to carry diffs for update and hybrid
   strategies (§4.3); §3 argues update coherence makes the
   notify-with-RELEASE pattern eager.  This ablation measures all three
   on Water, where position pages are re-read by every node each step. *)

let strategies () =
  section "Ablation: coherence strategy (Water, 4 nodes)";
  Harness.pp_header ppf ();
  List.iter
    (fun (name, strategy) ->
      List.iter
        (fun (vname, variant) ->
          let cfg =
            { (System.default_config ~nodes:4) with
              System.strategy
            }
          in
          let sys = System.create cfg in
          let r = Water.run sys variant Water.default_params in
          Harness.pp_row ppf
            (Harness.row
               ~label:(Printf.sprintf "Water/%s/%s" vname name)
               ~nodes:4 ~base:r.Water.report.System.wall
               ~ok:r.Water.energy_ok r.Water.report))
        [ ("lock", Water.Lock); ("hybrid", Water.Hybrid) ])
    [
      ("invalidate", Carlos_dsm.Lrc_backend.Invalidate);
      ("update", Carlos_dsm.Lrc_backend.Update);
      ("hybrid-upd", Carlos_dsm.Lrc_backend.Hybrid_update);
    ];
  Format.fprintf ppf
    "  expectation: update ships data eagerly with each RELEASE — fewer      faults and diff requests, larger messages (paper §3, §4.3)@."

(* ------------------------------------------------------------------ *)
(* Network ablation: §4 plans a high-performance ATM upgrade and §5.4
   argues vector timestamps and annotation costs matter more there ("the
   vector timestamp ... is a large part of an ATM frame").  Re-run the
   4-node experiments on an ATM-class fabric (155 Mbit/s, 10 us latency,
   lean host costs). *)

let atm () =
  section "Ablation: ATM-class network (155 Mbit/s, 10 us, 4 nodes)";
  let atm_cfg ~nodes =
    {
      (System.default_config ~nodes) with
      System.bandwidth = 19.4e6;
      latency = 10e-6;
      costs = Cost.fast_network;
    }
  in
  Harness.pp_header ppf ();
  let tsp v =
    let r = Tsp.run (System.create (atm_cfg ~nodes:4)) v Tsp.default_params in
    Harness.pp_row ppf
      (Harness.row
         ~label:("TSP/" ^ Tsp.variant_name v)
         ~nodes:4 ~base:r.Tsp.report.System.wall
         ~ok:(r.Tsp.best = Tsp.solve_reference Tsp.default_params)
         r.Tsp.report);
    r.Tsp.report.System.wall
  in
  let water v =
    let r =
      Water.run (System.create (atm_cfg ~nodes:4)) v Water.default_params
    in
    Harness.pp_row ppf
      (Harness.row
         ~label:("Water/" ^ Water.variant_name v)
         ~nodes:4 ~base:r.Water.report.System.wall ~ok:r.Water.energy_ok
         r.Water.report);
    r.Water.report.System.wall
  in
  let tl = tsp Tsp.Lock and th = tsp Tsp.Hybrid in
  let wl = water Water.Lock and wh = water Water.Hybrid in
  Format.fprintf ppf
    "  lock-vs-hybrid gap on ATM: TSP %.1f%%, Water %.1f%% -- on a fast \
     fabric the hybrid's advantage nearly vanishes: its benefit came from \
     avoiding expensive messaging (the paper's par.6 Amdahl's-law point)@."
    (100.0 *. (tl -. th) /. tl)
    (100.0 *. (wl -. wh) /. wl)

(* ------------------------------------------------------------------ *)
(* The §3 motif: an iterative finite-difference solver where "it is
   easier to use a shared-memory style of communication combined with a
   notification message marked RELEASE".  Global barriers vs
   neighbour-only notifications, under invalidate and update coherence. *)

let grid () =
  section "Paper §3 motif: grid relaxation (96x96 Jacobi, 4 nodes)";
  Harness.pp_header ppf ();
  List.iter
    (fun (sname, strategy) ->
      List.iter
        (fun variant ->
          let sys = System.create (Grid.config ~nodes:4 ~strategy Grid.default_params) in
          let r = Grid.run sys variant Grid.default_params in
          Harness.pp_row ppf
            (Harness.row
               ~label:
                 (Printf.sprintf "Grid/%s/%s" (Grid.variant_name variant)
                    sname)
               ~nodes:4 ~base:r.Grid.report.System.wall ~ok:r.Grid.exact
               r.Grid.report))
        [ Grid.Barrier; Grid.Hybrid ])
    [
      ("invalidate", Carlos_dsm.Lrc_backend.Invalidate);
      ("update", Carlos_dsm.Lrc_backend.Update);
    ];
  Format.fprintf ppf
    "  neighbour notifications replace global barriers; under the update      strategy the boundary rows travel with the RELEASE (par.3)@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite: host cost of regenerating each table at reduced
   scale (one Test.make per table/figure). *)

let micro () =
  section "Bechamel micro-suite (host time per reduced-scale experiment)";
  let open Bechamel in
  let tiny_tsp () =
    let p = { Tsp.default_params with Tsp.cities = 10; prefix_depth = 2 } in
    ignore
      (Tsp.run (System.create (System.default_config ~nodes:2)) Tsp.Hybrid p)
  in
  let tiny_qsort () =
    let p = { Qsort.default_params with Qsort.elements = 16 * 1024 } in
    ignore
      (Qsort.run (System.create (Qsort.config ~nodes:2 p)) Qsort.Hybrid1 p)
  in
  let tiny_water () =
    let p = { Water.default_params with Water.molecules = 64; steps = 1 } in
    ignore
      (Water.run
         (System.create (System.default_config ~nodes:2))
         Water.Hybrid p)
  in
  let tiny_fig2 () =
    let p = { Water.default_params with Water.molecules = 48; steps = 1 } in
    ignore
      (Water.run (System.create (System.default_config ~nodes:4)) Water.Lock p)
  in
  (* Hot-path probe cost: a disabled-profiler span must cost a branch,
     not a syscall or an allocation — this pair of rows is the
     regression micro-bench for the zero-cost-when-off guarantee. *)
  let profile_spans enabled () =
    let module Profile = Carlos_obs.Profile in
    Profile.set_enabled enabled;
    for _ = 1 to 1000 do
      let t0 = Profile.start () in
      Profile.stop Profile.Event t0
    done;
    Profile.set_enabled false;
    Profile.reset ()
  in
  let tests =
    [
      Test.make ~name:"profile-span-x1000-disabled"
        (Staged.stage (profile_spans false));
      Test.make ~name:"profile-span-x1000-enabled"
        (Staged.stage (profile_spans true));
      Test.make ~name:"table1-tsp" (Staged.stage tiny_tsp);
      Test.make ~name:"table2-qsort" (Staged.stage tiny_qsort);
      Test.make ~name:"table3-water" (Staged.stage tiny_water);
      Test.make ~name:"fig2-breakdown" (Staged.stage tiny_fig2);
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Format.fprintf ppf "  %-24s %10.3f ms/run@." name (est /. 1e6)
          | Some _ | None ->
            Format.fprintf ppf "  %-24s (no estimate)@." name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Machine-readable snapshot ([-o FILE], default BENCH_PR10.json):
   per-app wall clock, message/wire totals and the per-component
   wire-byte breakdown ({!Carlos_obs.Cost}) for the 4-node
   backend x app x variant matrix ([json]), plus a node-count sweep at
   reduced application scale with fitted per-component growth exponents
   ([scaling]).  The LRC backend additionally runs the gate matrix in
   both protocol configs — "legacy" (per-frame acks, serial unbatched
   fetching, fixed-rto retransmission) and "batched" — to stay
   comparable with BENCH_PR3.json; the other backends have no unbatched
   arm.  Every measured run is checked for wire-byte conservation
   (components must sum exactly to medium.bytes +
   datagram.dropped_bytes), and the LRC gate matrix additionally against
   the retransmit gate: on every (app, variant) row, batched wire bytes
   must not exceed legacy wire bytes and batched retransmit bytes must
   stay under 1% of the row's wire bytes (the [retransmit] bench runs
   just this check, without writing a snapshot).  Both snapshot benches
   accumulate into the same file, written once after all requested
   benches ran.  Format documented in EXPERIMENTS.md; compare snapshots
   with bin/bench_diff.exe. *)

module Obs = Carlos_obs.Obs
module Wire_cost = Carlos_obs.Cost
module Bench_report = Carlos_report.Bench_report

let output_file = ref "BENCH_PR10.json"

(* ------------------------------------------------------------------ *)
(* Parallel runner: fans independent bench rows across domains ([-j N],
   default [Domain.recommended_domain_count ()]).  Each row is a
   complete, deterministic simulation whose mutable state is per-run or
   domain-local (engine binding, profiler accumulators, twin pools), so
   rows may execute in any order on any domain; results are indexed by
   submission order and merged deterministically, making the snapshot
   byte-identical for every [-j]. *)
module Parallel_runner = struct
  let jobs = ref (Domain.recommended_domain_count ())

  let run (tasks : (unit -> 'a) array) : 'a array =
    let n = Array.length tasks in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (tasks.(i) ());
          loop ()
        end
      in
      loop ()
    in
    let k = max 1 (min !jobs n) in
    if k = 1 then worker ()
    else begin
      let others = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join others
    end;
    Array.map (function Some r -> r | None -> assert false) results
end

let scaling_nodes = ref [ 4; 8; 16; 32 ]

let json_runs = ref [] (* formatted row strings, newest first *)

let scaling_rows = ref []

(* (app, backend, nodes, (metric, value) list) per scaling row, for the
   growth-exponent fits. *)
let scaling_samples = ref []

let snapshot_failed = ref []

(* One measured row, produced (possibly on a worker domain) without
   touching shared state; committed into the snapshot accumulators
   serially, in submission order, by {!commit_row}. *)
type row_result = {
  rr_row : string; (* formatted JSON row *)
  rr_metrics : (string * float) list;
  rr_failures : string list; (* oldest first *)
}

(* Run one configuration and format its row.  [host_ms] is wall-clock
   host time for the row ([host_s] stays CPU time for continuity);
   both are nondeterministic and must never be gated on. *)
let measure ~nodes ~app ~variant ~backend ~mode f =
  let cpu0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  let sys, report, ok = f () in
  let host_ms = (Unix.gettimeofday () -. wall0) *. 1000.0 in
  let host = Sys.time () -. cpu0 in
  let name = Printf.sprintf "%s/%s/%s/%s/n%d" app variant backend mode nodes in
  let failures = ref [] in
  if not ok then failures := [ name ];
  let obs = System.obs sys in
  let c cname = Obs.counter_value obs ~node:Obs.global_node ~layer:Obs.Net cname in
  if not (Wire_cost.conserved obs) then
    failures :=
      !failures
      @ [
          Printf.sprintf "%s: cost conservation (components %d <> wire %d)"
            name (Wire_cost.total obs) (Wire_cost.wire_total obs);
        ];
  let components = Wire_cost.breakdown obs in
  let components_json =
    String.concat ", "
      (List.map
         (fun (comp, v) -> Printf.sprintf "%S: %d" (Wire_cost.name comp) v)
         components)
  in
  let row =
    Printf.sprintf
      {|    { "app": %S, "variant": %S, "backend": %S, "config": %S, "nodes": %d, "wall_s": %.6f, "messages": %d, "bytes": %d, "frames": %d, "wire_bytes": %d, "acks": %d, "acks_coalesced": %d, "diff_requests": %d, "components": { %s }, "ok": %b, "host_s": %.3f, "host_ms": %.3f }|}
      app variant backend mode nodes report.System.wall report.System.messages
      report.System.message_bytes (c "medium.frames") (c "medium.bytes")
      (c "sw.acks") (c "sw.acks_coalesced") report.System.diff_requests
      components_json ok host host_ms
  in
  let metrics =
    ("messages", float_of_int report.System.messages)
    :: ("wire_bytes", float_of_int (c "medium.bytes"))
    :: ("wall_s", report.System.wall)
    :: ("host_ms", host_ms)
    :: List.map
         (fun (comp, v) ->
           ("components." ^ Wire_cost.name comp, float_of_int v))
         components
  in
  { rr_row = row; rr_metrics = metrics; rr_failures = !failures }

let commit_row dest rr =
  dest := rr.rr_row :: !dest;
  List.iter (fun f -> snapshot_failed := f :: !snapshot_failed) rr.rr_failures

type json_app = {
  ja_name : string;
  ja_config : int -> System.config; (* nodes *)
  ja_variants : (string * (System.t -> System.report * bool)) list;
}

let gate_apps () =
  let reference = Tsp.solve_reference Tsp.default_params in
  [
    {
      ja_name = "tsp";
      ja_config = (fun nodes -> System.default_config ~nodes);
      ja_variants =
        List.map
          (fun (name, variant) ->
            ( name,
              fun sys ->
                let r = Tsp.run sys variant Tsp.default_params in
                (r.Tsp.report, r.Tsp.best = reference) ))
          [ ("lock", Tsp.Lock); ("hybrid", Tsp.Hybrid) ];
    };
    {
      ja_name = "qsort";
      ja_config = (fun nodes -> Qsort.config ~nodes Qsort.default_params);
      ja_variants =
        List.map
          (fun (name, variant) ->
            ( name,
              fun sys ->
                let r = Qsort.run sys variant Qsort.default_params in
                (r.Qsort.report, r.Qsort.sorted) ))
          [ ("lock", Qsort.Lock); ("hybrid", Qsort.Hybrid1) ];
    };
    {
      ja_name = "water";
      ja_config = (fun nodes -> System.default_config ~nodes);
      ja_variants =
        List.map
          (fun (name, variant) ->
            ( name,
              fun sys ->
                let r = Water.run sys variant Water.default_params in
                (r.Water.report, r.Water.energy_ok) ))
          [ ("lock", Water.Lock); ("hybrid", Water.Hybrid) ];
    };
    {
      ja_name = "grid";
      ja_config = (fun nodes -> Grid.config ~nodes Grid.default_params);
      ja_variants =
        List.map
          (fun (name, variant) ->
            ( name,
              fun sys ->
                let r = Grid.run sys variant Grid.default_params in
                (r.Grid.report, r.Grid.exact) ))
          [ ("lock", Grid.Barrier); ("hybrid", Grid.Hybrid) ];
    };
  ]

(* The LRC gate matrix is run both with and without batching so the two
   arms can be diffed; the other backends have no unbatched arm. *)
let lrc_modes = [ ("legacy", System.legacy_config); ("batched", Fun.id) ]

(* Run the 4-node gate matrix for [backend] in every mode, fanning the
   rows across domains, then appending them to [dest] in submission
   order; returns [((app, variant, mode), metrics)] per row. *)
let run_gate_matrix ~dest ~backend ~modes apps =
  let nodes = 4 in
  let jobs =
    List.concat_map
      (fun (mode, tweak) ->
        List.concat_map
          (fun ja ->
            List.map
              (fun (vname, run) ->
                ( (ja.ja_name, vname, mode),
                  fun () ->
                    measure ~nodes ~app:ja.ja_name ~variant:vname
                      ~backend:(Backend.kind_to_string backend) ~mode
                      (fun () ->
                        let cfg =
                          { (tweak (ja.ja_config nodes)) with System.backend }
                        in
                        let sys = System.create cfg in
                        let report, ok = run sys in
                        (sys, report, ok)) ))
              ja.ja_variants)
          apps)
      modes
  in
  let results = Parallel_runner.run (Array.of_list (List.map snd jobs)) in
  List.mapi
    (fun i (key, _) ->
      let rr = results.(i) in
      commit_row dest rr;
      (key, rr.rr_metrics))
    jobs

(* The retransmit gate: on every 4-node LRC (app, variant) row, batched
   must spend no more wire bytes than legacy, and batched retransmit
   bytes must stay below 1% of the row's wire bytes.  A violation is a
   snapshot failure (exit 1), same as a cost-conservation break. *)
let check_retransmit_gate rows =
  let metric name ms =
    Option.value ~default:0.0 (List.assoc_opt name ms)
  in
  let keys =
    List.sort_uniq Stdlib.compare
      (List.map (fun ((app, v, _), _) -> (app, v)) rows)
  in
  section "Retransmit gate: batched vs legacy wire bytes (4-node LRC)";
  Format.fprintf ppf "  %-14s %13s %13s %12s %8s@." "app/variant"
    "legacy wire" "batched wire" "retransmit" "pct";
  List.iter
    (fun (app, v) ->
      match
        ( List.assoc_opt (app, v, "legacy") rows,
          List.assoc_opt (app, v, "batched") rows )
      with
      | Some lm, Some bm ->
        let lw = metric "wire_bytes" lm in
        let bw = metric "wire_bytes" bm in
        let br = metric "components.retransmit" bm in
        let pct = if bw > 0.0 then 100.0 *. br /. bw else 0.0 in
        let ok = bw <= lw && pct < 1.0 in
        Format.fprintf ppf "  %-14s %13.0f %13.0f %12.0f %7.3f%%%s@."
          (app ^ "/" ^ v) lw bw br pct
          (if ok then "" else "  GATE FAIL");
        if bw > lw then
          snapshot_failed :=
            Printf.sprintf
              "%s/%s: batched wire bytes %.0f > legacy %.0f" app v bw lw
            :: !snapshot_failed;
        if pct >= 1.0 then
          snapshot_failed :=
            Printf.sprintf
              "%s/%s: retransmit bytes %.0f are %.2f%% of wire bytes \
               (gate: < 1%%)"
              app v br pct
            :: !snapshot_failed
      | _ ->
        snapshot_failed :=
          Printf.sprintf "%s/%s: retransmit gate row missing an arm" app v
          :: !snapshot_failed)
    keys

let bench_json () =
  let apps = gate_apps () in
  let lrc_rows = ref [] in
  List.iter
    (fun backend ->
      let modes =
        match backend with
        | Backend.Lrc -> lrc_modes
        | Backend.Central | Backend.Seq -> [ ("batched", Fun.id) ]
      in
      let rows = run_gate_matrix ~dest:json_runs ~backend ~modes apps in
      if backend = Backend.Lrc then lrc_rows := rows)
    Backend.all_kinds;
  Format.fprintf ppf "json: %d gate rows measured@." (List.length !json_runs);
  check_retransmit_gate !lrc_rows

(* Standalone smoke target ([make bench-retransmit]): run just the LRC
   gate matrix and apply the retransmit gate, without writing rows into
   the snapshot file. *)
let bench_retransmit () =
  let dest = ref [] in
  let rows =
    run_gate_matrix ~dest ~backend:Backend.Lrc ~modes:lrc_modes (gate_apps ())
  in
  check_retransmit_gate rows

(* ------------------------------------------------------------------ *)
(* Scaling sweep: grid and tsp at reduced scale on every backend across
   [!scaling_nodes] (default 4/8/16/32, override with [-n LIST]).  Each
   row lands in the snapshot's "scaling" array with the same shape as
   the gate rows; per-(app, backend) growth exponents of every byte
   component are fitted on log-log and written to "fits". *)

let bench_scaling () =
  section "Scaling sweep: per-component wire bytes vs node count";
  let grid_p = { Grid.default_params with Grid.size = 48; iterations = 8 } in
  let tsp_p = { Tsp.default_params with Tsp.cities = 12; prefix_depth = 3 } in
  let tsp_ref = Tsp.solve_reference tsp_p in
  let apps =
    [
      ( "grid",
        "lock",
        (fun nodes -> Grid.config ~nodes grid_p),
        fun sys ->
          let r = Grid.run sys Grid.Barrier grid_p in
          (r.Grid.report, r.Grid.exact) );
      ( "tsp",
        "lock",
        (fun nodes -> System.default_config ~nodes),
        fun sys ->
          let r = Tsp.run sys Tsp.Lock tsp_p in
          (r.Tsp.report, r.Tsp.best = tsp_ref) );
    ]
  in
  let jobs =
    List.concat_map
      (fun (app, vname, config, run) ->
        List.concat_map
          (fun backend ->
            let bname = Backend.kind_to_string backend in
            List.map
              (fun nodes ->
                ( (app, bname, nodes),
                  fun () ->
                    measure ~nodes ~app ~variant:vname ~backend:bname
                      ~mode:"scaling" (fun () ->
                        let cfg = { (config nodes) with System.backend } in
                        let sys = System.create cfg in
                        let report, ok = run sys in
                        (sys, report, ok)) ))
              !scaling_nodes)
          Backend.all_kinds)
      apps
  in
  let results = Parallel_runner.run (Array.of_list (List.map snd jobs)) in
  List.iteri
    (fun i ((app, bname, nodes), _) ->
      let rr = results.(i) in
      commit_row scaling_rows rr;
      scaling_samples :=
        (app, bname, nodes, rr.rr_metrics) :: !scaling_samples;
      Format.fprintf ppf "  %-5s@%-8s n=%-3d %10.0f wire bytes@." app bname
        nodes
        (Option.value ~default:0.0
           (List.assoc_opt "wire_bytes" rr.rr_metrics)))
    jobs

(* Fit y = a * n^b per (app, backend, metric) over the sweep; rendered
   into the snapshot's "fits" array. *)
let fits_json () =
  let groups =
    List.sort_uniq Stdlib.compare
      (List.map (fun (app, b, _, _) -> (app, b)) !scaling_samples)
  in
  let fit_metrics =
    [ "messages"; "wire_bytes" ]
    @ List.map (fun c -> "components." ^ Wire_cost.name c) Wire_cost.all
  in
  List.concat_map
    (fun (app, b) ->
      List.filter_map
        (fun metric ->
          let points =
            List.filter_map
              (fun (app', b', nodes, metrics) ->
                if app' = app && b' = b then
                  Option.map
                    (fun v -> (float_of_int nodes, v))
                    (List.assoc_opt metric metrics)
                else None)
              !scaling_samples
          in
          Option.map
            (fun e ->
              Printf.sprintf
                {|    { "app": %S, "backend": %S, "metric": %S, "exponent": %.4f }|}
                app b metric e)
            (Bench_report.fit_exponent points))
        fit_metrics)
    groups

(* Write the combined snapshot once, after every requested bench ran. *)
let write_snapshot () =
  if !json_runs <> [] || !scaling_rows <> [] then begin
    let arr rows =
      match rows with
      | [] -> "[]"
      | _ -> "[\n" ^ String.concat ",\n" (List.rev rows) ^ "\n  ]"
    in
    let oc = open_out !output_file in
    Printf.fprintf oc
      "{\n\
      \  \"nodes\": 4,\n\
      \  \"runs\": %s,\n\
      \  \"scaling\": %s,\n\
      \  \"fits\": %s\n\
       }\n"
      (arr !json_runs) (arr !scaling_rows) (arr (fits_json ()));
    close_out oc;
    Format.fprintf ppf "wrote %s (%d gate rows, %d scaling rows)@."
      !output_file (List.length !json_runs)
      (List.length !scaling_rows)
  end;
  if !snapshot_failed <> [] then begin
    Format.fprintf ppf "FAILED checks: %s@."
      (String.concat ", " (List.rev !snapshot_failed));
    Format.pp_print_flush ppf ();
    exit 1
  end

(* ------------------------------------------------------------------ *)

let () =
  let all =
    [ table1; table2; table3; fig2; sec54; tmcmp; strategies; atm; grid ]
  in
  let named =
    [
      ("table1", table1);
      ("table2", table2);
      ("table3", table3);
      ("fig2", fig2);
      ("sec54", sec54);
      ("tmcmp", tmcmp);
      ("strategies", strategies);
      ("atm", atm);
      ("grid", grid);
      ("micro", micro);
      ("json", bench_json);
      ("scaling", bench_scaling);
      ("retransmit", bench_retransmit);
    ]
  in
  (* Pull "-o FILE" (snapshot destination) and "-n LIST" (scaling node
     counts, e.g. "-n 4,8,16,32") out of the argument list before
     dispatching bench names. *)
  let rec strip_flags = function
    | "-o" :: file :: rest ->
      output_file := file;
      strip_flags rest
    | "-j" :: n :: rest ->
      (match int_of_string_opt n with
      | Some k when k >= 1 -> Parallel_runner.jobs := k
      | _ ->
        Format.fprintf ppf "-j requires a positive worker count@.";
        Format.pp_print_flush ppf ();
        exit 2);
      strip_flags rest
    | "-n" :: list :: rest ->
      (match
         List.map int_of_string_opt (String.split_on_char ',' list)
       with
      | counts when List.for_all Option.is_some counts && counts <> [] ->
        scaling_nodes := List.map Option.get counts
      | _ ->
        Format.fprintf ppf "-n requires a comma-separated node-count list@.";
        Format.pp_print_flush ppf ();
        exit 2);
      strip_flags rest
    | [ ("-o" | "-n" | "-j") ] ->
      Format.fprintf ppf "-o, -n and -j require an argument@.";
      Format.pp_print_flush ppf ();
      exit 2
    | arg :: rest -> arg :: strip_flags rest
    | [] -> []
  in
  let args = strip_flags (List.tl (Array.to_list Sys.argv)) in
  (match args with
  | [] -> List.iter (fun f -> f ()) all
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name named with
        | Some f -> f ()
        | None ->
          Format.fprintf ppf "unknown bench %s (have: %s)@." name
            (String.concat ", " (List.map fst named)))
      names);
  write_snapshot ();
  Format.pp_print_flush ppf ()
